"""Tests for correlation and success-rate analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.correlation import correlation_report, pearson, spearman
from repro.analysis.success import pooled_success_rate, success_summary
from repro.core.predictor import Observation, SmtPredictor


class TestPearson:
    def test_perfect_linear(self):
        x = [1, 2, 3, 4]
        assert pearson(x, [2, 4, 6, 8]) == pytest.approx(1.0)
        assert pearson(x, [8, 6, 4, 2]) == pytest.approx(-1.0)

    def test_constant_series_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson([1, 2, 3], [1, 2])


class TestSpearman:
    def test_monotonic_nonlinear_is_one(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [1.0, 8.0, 27.0, 64.0]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_ties_handled(self):
        assert abs(spearman([1, 1, 2, 3], [1, 1, 2, 3]) - 1.0) < 1e-9

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=4,
                    max_size=20, unique=True))
    @settings(max_examples=30)
    def test_bounded(self, x):
        rng = np.random.default_rng(0)
        y = rng.normal(size=len(x)).tolist()
        assert -1.0 - 1e-9 <= spearman(x, y) <= 1.0 + 1e-9

    def test_report_contains_both(self):
        report = correlation_report({"s": ([1, 2, 3, 4], [2, 4, 6, 8])})
        assert report["s"]["pearson"] == pytest.approx(1.0)
        assert report["s"]["spearman"] == pytest.approx(1.0)


class TestSuccessSummary:
    def make_obs(self):
        return [
            Observation("winner_low", 0.02, 1.5),    # correct left
            Observation("loser_low", 0.03, 0.9),     # left miss
            Observation("loser_high", 0.2, 0.5),     # correct right
            Observation("winner_high", 0.3, 1.2),    # right miss
        ]

    def test_classification_of_misses(self):
        p = SmtPredictor(threshold=0.07, high_level=4, low_level=1)
        summary = success_summary(p, self.make_obs())
        assert summary.left_misses == ("loser_low",)
        assert summary.right_misses == ("winner_high",)
        assert summary.success_rate == 0.5

    def test_empty_raises(self):
        p = SmtPredictor(threshold=0.07, high_level=4, low_level=1)
        with pytest.raises(ValueError):
            success_summary(p, [])

    def test_pooled_rate(self):
        p = SmtPredictor(threshold=0.07, high_level=4, low_level=1)
        s1 = success_summary(p, self.make_obs())
        s2 = success_summary(p, [Observation("x", 0.01, 2.0)])
        assert pooled_success_rate([s1, s2]) == pytest.approx(3 / 5)

    def test_pooled_empty_raises(self):
        with pytest.raises(ValueError):
            pooled_success_rate([])
