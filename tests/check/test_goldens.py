"""The goldens pillar: snapshots, fingerprints, tolerance-aware diffs."""

import json

import pytest

from repro.check.goldens import (
    diff_values,
    figure_names,
    golden_path,
    load_golden,
    model_fingerprint,
    run_golden_checks,
    update_goldens,
)

FIGS = ["fig16", "fig17"]


class TestDiffValues:
    def test_equal_structures_have_no_diffs(self):
        value = {"a": 1.0, "b": [1, 2, {"c": True}], "d": "x"}
        assert diff_values(value, json.loads(json.dumps(value))) == []

    def test_within_tolerance_is_equal(self):
        assert diff_values({"x": 1.0}, {"x": 1.0 + 1e-9}) == []

    def test_relative_drift_is_reported_with_path(self):
        problems = diff_values({"a": {"b": 100.0}}, {"a": {"b": 101.0}})
        assert len(problems) == 1
        assert problems[0].startswith("a.b:")

    def test_bools_compare_exactly_not_numerically(self):
        # bool is an int subclass; True must not match 1.0-within-tol.
        assert diff_values(True, 1.0)
        assert diff_values({"flag": False}, {"flag": True})

    def test_missing_and_extra_keys(self):
        problems = diff_values({"a": 1, "b": 2}, {"b": 2, "c": 3})
        assert any("a" in p and "missing" in p for p in problems)
        assert any("c" in p and "not in golden" in p for p in problems)

    def test_length_mismatch(self):
        problems = diff_values([1, 2, 3], [1, 2])
        assert "length 3 != 2" in problems[0]


class TestFingerprint:
    def test_stable_within_process(self):
        assert model_fingerprint() == model_fingerprint()
        assert len(model_fingerprint()) == 16

    def test_repeat_calls_hit_the_memo(self, monkeypatch):
        import repro.check.goldens as goldens
        from repro.sim import runcache

        calls = {"n": 0}
        real = runcache._arch_fp_json

        def counting(arch):
            calls["n"] += 1
            return real(arch)

        monkeypatch.setattr(runcache, "_arch_fp_json", counting)
        goldens._FINGERPRINT_CACHE.clear()
        first = model_fingerprint()
        after_first = calls["n"]
        assert after_first > 0  # the miss really rebuilt the arch parts
        assert model_fingerprint() == first
        assert calls["n"] == after_first  # the hit rebuilt nothing

    def test_constant_change_invalidates_the_memo(self, monkeypatch):
        from repro.sim import runcache

        baseline = model_fingerprint()
        # A changed model constant produces a different constants JSON;
        # the memo must miss and yield a different fingerprint.
        monkeypatch.setattr(
            runcache, "_CONSTANTS_FP_JSON", '{"tampered": true}'
        )
        tampered = model_fingerprint()
        assert tampered != baseline
        assert len(tampered) == 16
        # And repeat calls under the tampered constants stay memoized.
        assert model_fingerprint() == tampered


class TestGoldenLifecycle:
    def test_update_writes_stamped_files(self, golden_dir):
        for fig in FIGS:
            golden = load_golden(fig, golden_dir)
            assert golden is not None
            assert golden["figure"] == fig
            assert golden["fingerprint"] == model_fingerprint()
            assert golden["summary"]

    def test_fresh_goldens_pass(self, golden_dir):
        report = run_golden_checks(FIGS, directory=golden_dir)
        assert report.ok, [v.render() for v in report.violations]
        assert report.subjects == len(FIGS)
        assert report.stats["fingerprint"] == model_fingerprint()

    def test_missing_golden_points_at_update_flow(self, tmp_path):
        report = run_golden_checks(["fig16"], directory=tmp_path)
        assert not report.ok
        (violation,) = report.violations
        assert violation.check == "golden_present"
        assert "--update-goldens" in violation.message

    def test_semantic_drift_is_distinguished_from_staleness(
        self, golden_dir, tmp_path
    ):
        # Same fingerprint, different numbers: a real regression.
        path = golden_path("fig16", golden_dir)
        tampered_dir = tmp_path / "drift"
        tampered_dir.mkdir()
        payload = json.loads(path.read_text())
        payload["summary"]["min_impurity"] = (
            payload["summary"]["min_impurity"] + 0.25
        )
        (tampered_dir / "fig16.json").write_text(json.dumps(payload))
        report = run_golden_checks(["fig16"], directory=tampered_dir)
        assert not report.ok
        (violation,) = report.violations
        assert violation.check == "golden_match"
        assert "semantic drift" in violation.message
        assert violation.details["n_diffs"] >= 1
        assert any("min_impurity" in d for d in violation.details["diffs"])

    def test_stale_fingerprint_with_matching_values(self, golden_dir, tmp_path):
        path = golden_path("fig17", golden_dir)
        stale_dir = tmp_path / "stale"
        stale_dir.mkdir()
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 16
        (stale_dir / "fig17.json").write_text(json.dumps(payload))
        report = run_golden_checks(["fig17"], directory=stale_dir)
        assert not report.ok
        (violation,) = report.violations
        assert violation.check == "golden_fingerprint"
        assert "--update-goldens" in violation.message
        assert violation.details["current_fingerprint"] == model_fingerprint()

    def test_stale_fingerprint_with_drift_hints_regeneration(
        self, golden_dir, tmp_path
    ):
        path = golden_path("fig16", golden_dir)
        both_dir = tmp_path / "both"
        both_dir.mkdir()
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 16
        payload["summary"]["min_impurity"] = (
            payload["summary"]["min_impurity"] + 0.25
        )
        (both_dir / "fig16.json").write_text(json.dumps(payload))
        report = run_golden_checks(["fig16"], directory=both_dir)
        (violation,) = report.violations
        assert violation.check == "golden_match"
        assert "fingerprint changed" in violation.message

    def test_unknown_figure_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figures"):
            update_goldens(["fig99"], directory=tmp_path)


class TestShippedGoldens:
    def test_every_figure_has_a_committed_golden(self):
        # The repo ships a golden per figure, stamped with the current
        # model fingerprint (run `repro check --update-goldens` after
        # intentional model changes).
        for fig in figure_names():
            golden = load_golden(fig)
            assert golden is not None, f"tests/goldens/{fig}.json missing"
            assert golden["fingerprint"] == model_fingerprint(), fig
