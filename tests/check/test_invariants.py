"""The invariants pillar: registry mechanics and violation detection."""

import dataclasses

import pytest

from repro.check.invariants import (
    EXACT_TOL,
    NOISE_SIGMA,
    REGISTRY,
    InvariantContext,
    check_catalog_invariants,
    invariant,
    invariants_for,
)
from repro.experiments.runner import CatalogRuns


class TestRegistry:
    def test_both_scopes_are_populated(self):
        assert len(invariants_for("run")) >= 8
        assert len(invariants_for("chip")) >= 4
        assert len(REGISTRY) == (
            len(invariants_for("run")) + len(invariants_for("chip"))
        )

    def test_every_invariant_has_a_description(self):
        for inv in REGISTRY.values():
            assert inv.description, inv.name

    def test_duplicate_name_is_rejected(self):
        existing = next(iter(REGISTRY))
        with pytest.raises(ValueError, match="duplicate"):
            @invariant(existing, "run", "clashes with an existing law")
            def _clash(result, ctx):
                return ()

    def test_unknown_scope_is_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            @invariant("never_registered", "socket", "bad scope")
            def _bad(result, ctx):
                return ()
        assert "never_registered" not in REGISTRY

    def test_open_registration_and_evaluation(self):
        @invariant("test_tmp_law", "run", "temporary law for this test")
        def _tmp(result, ctx):
            yield ("always fires", {"marker": 1.0})

        try:
            assert REGISTRY["test_tmp_law"].scope == "run"
            problems = list(REGISTRY["test_tmp_law"].fn(None, None))
            assert problems == [("always fires", {"marker": 1.0})]
        finally:
            del REGISTRY["test_tmp_law"]


class TestContext:
    def test_noise_slack_is_sigma_scaled(self):
        ctx = InvariantContext(noise_rel=0.01)
        assert ctx.noise_slack == pytest.approx(NOISE_SIGMA * 0.01)

    def test_zero_noise_floors_at_exact_tol(self):
        assert InvariantContext(noise_rel=0.0).noise_slack == EXACT_TOL


class TestCatalogInvariants:
    def test_shipped_catalog_is_clean(self, small_catalog):
        report = check_catalog_invariants(small_catalog, chip_samples=2)
        assert report.ok, [v.render() for v in report.violations]
        assert report.pillar == "invariants"
        # 9 runs x every run law, plus 2 sampled workloads x 3 levels
        # of chip laws.
        assert report.subjects == 9 + 2 * 3
        assert report.checks_run == (
            9 * len(invariants_for("run")) + 6 * len(invariants_for("chip"))
        )
        assert report.stats["registered"] == len(REGISTRY)

    def test_broken_time_accounting_is_detected(self, small_catalog):
        name = small_catalog.names()[0]
        level = small_catalog.levels()[0]
        good = small_catalog.runs[name][level]
        bad = dataclasses.replace(
            good,
            times=dataclasses.replace(
                good.times, serial_time_s=good.times.serial_time_s
                + 0.5 * good.times.wall_time_s,
            ),
        )
        runs = {n: dict(by) for n, by in small_catalog.runs.items()}
        runs[name][level] = bad
        tampered = CatalogRuns(system=small_catalog.system, runs=runs,
                               seed=small_catalog.seed)
        report = check_catalog_invariants(tampered, chip_samples=1)
        assert not report.ok
        broken = [v for v in report.violations
                  if v.check == "times_additive"]
        assert broken, [v.render() for v in report.violations]
        assert f"{name}@SMT{level}" in broken[0].subject

    def test_negative_counter_is_detected(self, small_catalog):
        name = small_catalog.names()[0]
        level = small_catalog.levels()[0]
        good = small_catalog.runs[name][level]
        events = dict(good.events)
        events["INSTRUCTIONS"] = -1.0
        bad = dataclasses.replace(good, events=events)
        runs = {n: dict(by) for n, by in small_catalog.runs.items()}
        runs[name][level] = bad
        tampered = CatalogRuns(system=small_catalog.system, runs=runs,
                               seed=small_catalog.seed)
        report = check_catalog_invariants(tampered, chip_samples=1)
        assert not report.ok
        assert any(v.check == "counters_nonnegative"
                   for v in report.violations)
