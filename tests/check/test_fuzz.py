"""The fuzz pillar: the protocol fuzzer against a live server.

The tier-1 smoke keeps the case count small; the 5000-case acceptance
configuration is marked ``fuzz`` and runs in the dedicated CI job
(``pytest -m fuzz``).
"""

import pytest

from repro.check.fuzz import KNOWN_ERROR_CODES, run_fuzz_checks
from repro.serve import ServeConfig

MALFORMED = ("garbage", "truncated_json", "bad_schema", "oversized_line",
             "partial_frame")


def assert_clean(report):
    assert report.ok, [v.render() for v in report.violations]
    stats = report.stats
    # Settlement accounting: every admitted request settled (no leaks).
    assert stats["admitted"] == stats["settled"]
    assert stats["unhandled_exceptions"] == 0
    assert stats["responses_seen"] > 0
    assert stats["response_problems"] == 0


def malformed_count(stats):
    return sum(stats["categories"].get(name, 0) for name in MALFORMED)


class TestSmoke:
    def test_small_seeded_run_is_clean(self):
        report = run_fuzz_checks(cases=150, seed=5)
        assert report.pillar == "fuzz"
        assert report.stats["cases"] >= 150
        assert_clean(report)
        # The generator mixed malformed frames in (the point of the
        # exercise), and the server kept answering anyway.
        assert malformed_count(report.stats) > 0

    def test_reproducible_by_seed(self):
        a = run_fuzz_checks(cases=60, seed=77)
        b = run_fuzz_checks(cases=60, seed=77)
        assert a.stats["cases"] == b.stats["cases"]
        assert a.stats["categories"] == b.stats["categories"]

    def test_custom_config_is_honored(self):
        config = ServeConfig(
            queue_size=8, max_linger_ms=1.0,
            session={"threshold": 0.07, "use_cache": False},
        )
        report = run_fuzz_checks(cases=80, seed=3, config=config)
        assert_clean(report)

    def test_error_code_vocabulary_is_closed(self):
        # The typed-response validator only accepts the documented
        # codes; a typo'd code in the server would fail the pillar.
        assert "invalid_request" in KNOWN_ERROR_CODES
        assert "overloaded" in KNOWN_ERROR_CODES
        assert len(KNOWN_ERROR_CODES) == 6


@pytest.mark.fuzz
class TestAcceptance:
    def test_5000_cases_zero_crashes_zero_leaks(self):
        # The acceptance bar: >=5000 seeded malformed-frame cases
        # against a live server, zero unhandled exceptions, zero leaked
        # pending requests (verified via serve telemetry counters).
        report = run_fuzz_checks(cases=5000, seed=1207)
        assert_clean(report)
        stats = report.stats
        assert stats["cases"] >= 5000
        assert stats["connections"] > 100
        assert malformed_count(stats) > 1000

    def test_5000_cases_two_worker_pool_settlement(self, monkeypatch):
        # The same bar against the sharded worker tier: the settlement
        # invariant must survive cross-process dispatch.  Chaos stays
        # disarmed — this pillar isolates protocol robustness from
        # injected worker faults (test_chaos.py covers those).
        monkeypatch.delenv("REPRO_SERVE_CHAOS", raising=False)
        config = ServeConfig(
            workers=2, queue_size=64,
            session={"threshold": 0.07, "use_cache": False},
        )
        report = run_fuzz_checks(cases=5000, seed=409, config=config)
        assert_clean(report)
        stats = report.stats
        assert stats["cases"] >= 5000
        assert malformed_count(stats) > 1000
