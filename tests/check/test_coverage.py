"""The cross-architecture conformance surface.

Three gates added alongside the classic pillars:

* the registry-coverage sweep — every registered architecture (and
  every hetero chip's clusters) must survive the invariant laws, so a
  chip cannot be registered without being checkable;
* the cross-architecture differential — the columnar engine must match
  serial simulation on the non-POWER7 chips too;
* fingerprint invalidation — editing a hetero chip's cluster spec must
  change :func:`model_fingerprint` and thereby stale the goldens.
"""

import dataclasses

import pytest

from repro.arch.hetero import _HETERO_CACHE, big_little, get_hetero
from repro.arch.registry import _BUILDERS
from repro.check.differential import run_cross_arch_differential
from repro.check.invariants import (
    COVERAGE_WORKLOADS,
    check_registry_coverage,
)
from repro.check.report import merge_pillar_reports
from repro.obs import configure, get_tracer


class TestRegistryCoverage:
    def test_shipped_registry_is_clean(self):
        report = check_registry_coverage(chip_samples=1)
        assert report.ok, [v.render() for v in report.violations]
        assert report.pillar == "invariants"
        from repro.arch import list_architectures

        assert report.stats["covered_archs"] == len(list_architectures())
        assert report.stats["hetero_chips"] >= 1

    def test_exercised_archs_are_skipped_but_counted(self):
        from repro.arch import list_architectures

        everything = list_architectures()
        report = check_registry_coverage(chip_samples=1,
                                         exercised=everything)
        assert report.ok
        assert report.stats["covered_archs"] == len(everything)

    def test_broken_builder_is_a_violation(self):
        def broken():
            raise RuntimeError("no silicon")

        _BUILDERS["tmp_broken_arch"] = broken
        try:
            report = check_registry_coverage(
                chip_samples=1,
                exercised=[n for n in _BUILDERS if n != "tmp_broken_arch"],
            )
        finally:
            del _BUILDERS["tmp_broken_arch"]
        assert not report.ok
        broken_violations = [v for v in report.violations
                             if v.check == "arch_coverage"]
        assert broken_violations
        assert "tmp_broken_arch" in broken_violations[0].subject
        assert "cannot be exercised" in broken_violations[0].message

    def test_unregistered_cluster_is_a_violation(self):
        # A hetero chip whose clusters were not propagated into the
        # main registry is unreachable by CLI/fleet — the gate flags it.
        from repro.arch.hetero import _HETERO_BUILDERS

        name = "tmp_ghost_chip"
        _HETERO_BUILDERS[name] = lambda: dataclasses.replace(
            big_little(), name=name)
        try:
            report = check_registry_coverage(
                chip_samples=0, exercised=list(_BUILDERS))
        finally:
            _HETERO_BUILDERS.pop(name, None)
            _HETERO_CACHE.pop(name, None)
        ghosts = [v for v in report.violations
                  if v.subject == f"hetero:{name}"]
        assert len(ghosts) == 2  # both clusters unreachable
        assert "not registered" in ghosts[0].message

    def test_emits_coverage_counter(self):
        tracer = configure(enabled=True)
        tracer.reset()
        check_registry_coverage(chip_samples=0,
                                exercised=list(_BUILDERS))
        names = [s.name for s in get_tracer().spans()]
        assert "check.arch_coverage" in names

    def test_coverage_workloads_exist(self):
        from repro.workloads import all_workloads

        specs = all_workloads()
        assert all(name in specs for name in COVERAGE_WORKLOADS)


class TestCrossArchDifferential:
    def test_columnar_matches_serial_beyond_power7(self):
        report = run_cross_arch_differential()
        assert report.ok, [v.render() for v in report.violations]
        assert report.pillar == "differential"
        checks = {v.check for v in report.violations}
        assert not checks
        # Both the plain cross-arch and the hetero comparisons ran.
        assert "armsmt" in report.stats["cross_archs"]
        assert "biglittle" in report.stats["cross_hetero"]

    def test_tightened_tolerance_still_holds(self):
        # The decomposition is exact, not approximately equal: even at
        # 1e-12 the per-cluster split must agree with serial runs.
        report = run_cross_arch_differential(rel_tol=1e-12)
        assert report.ok, [v.render() for v in report.violations]


class TestMergePillarReports:
    def test_counts_add_and_ok_ands(self):
        a = check_registry_coverage(chip_samples=0,
                                    exercised=list(_BUILDERS))
        b = check_registry_coverage(chip_samples=0,
                                    exercised=list(_BUILDERS))
        merged = merge_pillar_reports(a, b)
        assert merged.checks_run == a.checks_run + b.checks_run
        assert merged.subjects == a.subjects + b.subjects
        assert merged.ok

    def test_mismatched_pillars_rejected(self):
        a = check_registry_coverage(chip_samples=0,
                                    exercised=list(_BUILDERS))
        b = run_cross_arch_differential()
        with pytest.raises(ValueError, match="pillar"):
            merge_pillar_reports(a, b)


class TestFingerprintInvalidation:
    def test_hetero_edit_changes_fingerprint(self):
        from repro.check.goldens import model_fingerprint

        baseline = model_fingerprint()
        assert model_fingerprint() == baseline  # memo is stable

        chip = get_hetero("biglittle")
        tweaked = dataclasses.replace(
            chip,
            clusters=(
                dataclasses.replace(chip.clusters[0], bandwidth_share=0.6),
                chip.clusters[1],
            ),
        )
        _HETERO_CACHE["biglittle"] = tweaked
        try:
            assert model_fingerprint() != baseline
        finally:
            _HETERO_CACHE["biglittle"] = chip
        assert model_fingerprint() == baseline
