"""Shared fixtures for the conformance-subsystem tests."""

import pytest

from repro.experiments.runner import run_catalog
from repro.obs import configure


@pytest.fixture(autouse=True)
def _reset_tracer():
    # run_check/run_fuzz_checks enable the process-wide tracer; leave
    # the default disabled state behind for unrelated tests.
    yield
    tracer = configure(enabled=False)
    tracer.reset()


@pytest.fixture(scope="session")
def small_catalog():
    """A three-workload p7 sweep shared by the invariants tests."""
    from repro.workloads import all_workloads

    specs = all_workloads()
    names = ("EP", "SSCA2", "SPECjbb_contention")
    return run_catalog(
        "p7", {n: specs[n] for n in names}, (1, 2, 4), seed=11,
    )


@pytest.fixture(scope="session")
def golden_dir(tmp_path_factory):
    """A temp goldens directory pre-populated for fig16 + fig17."""
    from repro.check.goldens import update_goldens

    directory = tmp_path_factory.mktemp("goldens")
    update_goldens(["fig16", "fig17"], directory=directory)
    return directory
