"""Orchestration (run_check) and the ``repro check`` CLI subcommand."""

import json

import pytest

import repro.check.runner as runner_module
from repro.check import CheckOptions, run_check
from repro.check.report import PILLARS
from repro.cli import main


class TestRunCheck:
    def test_unknown_pillar_is_rejected(self):
        with pytest.raises(ValueError, match="unknown pillar"):
            run_check(["invariants", "sockets"])

    def test_selected_pillar_only(self, golden_dir):
        options = CheckOptions(figures=["fig16"],
                               goldens_directory=golden_dir)
        report = run_check(["goldens"], options)
        assert [p.pillar for p in report.pillars] == ["goldens"]
        assert report.ok
        assert report.exit_code == 0

    def test_pillars_execute_in_canonical_order(self, golden_dir, monkeypatch):
        # Stub out the expensive pillars: ordering is what's under test.
        from repro.check.report import PillarReport

        def stub(pillar):
            return lambda options: PillarReport(
                pillar=pillar, checks_run=1, subjects=1
            )

        monkeypatch.setitem(runner_module._RUNNERS, "invariants",
                            stub("invariants"))
        monkeypatch.setitem(runner_module._RUNNERS, "differential",
                            stub("differential"))
        monkeypatch.setitem(runner_module._RUNNERS, "fuzz", stub("fuzz"))
        options = CheckOptions(figures=["fig16"],
                               goldens_directory=golden_dir)
        report = run_check(["fuzz", "invariants", "goldens", "differential"],
                           options)
        assert [p.pillar for p in report.pillars] == list(PILLARS)

    def test_crashing_pillar_is_contained(self, monkeypatch):
        def boom(figures, seed, directory):
            raise RuntimeError("golden storage on fire")

        monkeypatch.setattr(runner_module.goldens, "run_golden_checks", boom)
        report = run_check(["goldens"])
        assert not report.ok
        assert report.exit_code == 1
        (violation,) = report.violations
        assert violation.check == "pillar_crashed"
        assert "RuntimeError" in violation.message
        assert "golden storage on fire" in violation.message


class TestCli:
    @pytest.fixture
    def goldens_env(self, golden_dir, monkeypatch):
        monkeypatch.setenv("REPRO_GOLDENS_DIR", str(golden_dir))
        return golden_dir

    def test_single_pillar_pass_exits_zero(self, goldens_env, capsys):
        code = main(["check", "--goldens", "--figures", "fig16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RESULT: PASS" in out
        assert "goldens" in out

    def test_violation_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_GOLDENS_DIR", str(tmp_path / "empty"))
        code = main(["check", "--goldens", "--figures", "fig16"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RESULT: FAIL" in out
        assert "golden_present" in out

    def test_json_flag_prints_machine_report(self, goldens_env, capsys):
        code = main(["check", "--goldens", "--figures", "fig16", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["pillars"][0]["pillar"] == "goldens"

    def test_json_path_writes_file_and_prints_table(
        self, goldens_env, tmp_path, capsys
    ):
        target = tmp_path / "report.json"
        code = main(["check", "--goldens", "--figures", "fig16",
                     "--json", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "RESULT: PASS" in out
        payload = json.loads(target.read_text())
        assert payload["ok"] is True

    def test_update_goldens_writes_into_directory(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_GOLDENS_DIR", str(tmp_path / "fresh"))
        code = main(["check", "--update-goldens", "--figures", "fig16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        assert (tmp_path / "fresh" / "fig16.json").exists()
        # And the freshly written golden immediately passes.
        assert main(["check", "--goldens", "--figures", "fig16"]) == 0
