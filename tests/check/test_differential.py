"""The differential pillar: fast paths vs the serial reference.

Includes the acceptance scenario: a deliberately injected divergence
in the batched solver (a perturbed ``solve_chip_batch`` under
monkeypatch) must be detected and shrunk to a minimal reproducing
scenario set, and must drive the aggregate exit code nonzero.
"""

import dataclasses

import pytest

import repro.sim.engine as engine
from repro.check.differential import (
    REL_TOL,
    compare_runs,
    ddmin,
    run_differential_checks,
)
from repro.check.report import CheckReport
from repro.sim.engine import RunSpec, simulate_run
from repro.simos import SystemSpec
from repro.arch import power7
from repro.workloads import all_workloads


def _spec(name="EP", level=2):
    workload = all_workloads()[name]
    return RunSpec(system=SystemSpec(power7(), 1), smt_level=level,
                   stream=workload.stream, sync=workload.sync, seed=11)


class TestCompareRuns:
    def test_identical_runs_have_no_diffs(self):
        result = simulate_run(_spec())
        assert compare_runs(result, result) == []

    def test_scalar_field_divergence_is_reported(self):
        a = simulate_run(_spec())
        b = dataclasses.replace(a, mem_latency_mult=a.mem_latency_mult * 1.01)
        diffs = dict(compare_runs(a, b))
        assert "mem_latency_mult" in diffs
        assert diffs["mem_latency_mult"] == pytest.approx(0.01, rel=0.05)

    def test_event_divergence_reports_worst_event(self):
        a = simulate_run(_spec())
        events = dict(a.events)
        events["CYCLES"] *= 1.001
        b = dataclasses.replace(a, events=events)
        diffs = dict(compare_runs(a, b))
        assert any(field.startswith("events.") for field in diffs)

    def test_within_tolerance_is_equivalent(self):
        a = simulate_run(_spec())
        b = dataclasses.replace(
            a, mem_latency_mult=a.mem_latency_mult * (1 + REL_TOL / 10)
        )
        assert compare_runs(a, b) == []


class TestDdmin:
    def test_shrinks_to_single_culprit(self):
        minimal = ddmin(list(range(12)), lambda subset: 5 in subset)
        assert minimal == [5]

    def test_shrinks_to_interacting_pair(self):
        minimal = ddmin(
            list(range(8)), lambda s: 3 in s and 7 in s
        )
        assert sorted(minimal) == [3, 7]

    def test_single_element_is_returned_unchanged(self):
        assert ddmin([4], lambda s: True) == [4]


class TestCleanPaths:
    def test_all_fast_paths_match_reference(self):
        report = run_differential_checks(
            workloads=("EP", "SSCA2"), levels=(1, 4),
            include_parallel=False,
        )
        assert report.ok, [v.render() for v in report.violations]
        assert report.pillar == "differential"
        assert report.subjects == 4
        # batched + columnar + surrogate (whole-batch gate + per run) +
        # runcache + predict, for each scenario/workload.
        assert report.checks_run == 4 + 4 + (1 + 4) + 4 + 2
        assert report.stats["parallel_included"] is False
        assert report.stats["surrogate_rel_tol"] == 1e-2

    def test_parallel_path_matches_reference(self):
        report = run_differential_checks(
            workloads=("EP",), levels=(1, 2), include_parallel=True,
        )
        assert report.ok, [v.render() for v in report.violations]


class TestInjectedDivergence:
    """The acceptance criterion: a perturbed batched solver is caught."""

    @pytest.fixture
    def perturbed_batched_solver(self, monkeypatch):
        real = engine.solve_chip_batch

        def perturbed(jobs):
            return [
                dataclasses.replace(
                    s, mem_latency_mult=s.mem_latency_mult * 1.001
                )
                for s in real(jobs)
            ]

        # engine.simulate_many resolves the name at module level, so
        # this perturbs only the batched path; simulate_run (the serial
        # reference) goes through solve_chip and stays exact.
        monkeypatch.setattr(engine, "solve_chip_batch", perturbed)

    def test_divergence_is_detected_and_minimized(
        self, perturbed_batched_solver
    ):
        report = run_differential_checks(
            workloads=("EP", "SSCA2"), levels=(1, 4),
            include_parallel=False,
        )
        assert not report.ok
        batched = [v for v in report.violations
                   if v.check == "batched_vs_serial"]
        assert batched, [v.render() for v in report.violations]
        labels = set(report.stats["scenarios"])
        for violation in batched:
            assert violation.details["rel_error"] > REL_TOL
            minimized = violation.details["minimized_scenarios"]
            assert minimized, "divergence must ship a reproducing scenario"
            assert set(minimized) <= labels
            # ddmin shrank the 4-scenario batch, it did not just echo it.
            assert len(minimized) < report.subjects

    def test_divergence_drives_exit_code_nonzero(
        self, perturbed_batched_solver
    ):
        report = run_differential_checks(
            workloads=("EP", "SSCA2"), levels=(1, 4),
            include_parallel=False,
        )
        aggregate = CheckReport(pillars=(report,))
        assert aggregate.exit_code == 1
        assert "FAIL" in aggregate.render()

    def test_columnar_divergence_is_detected(self, monkeypatch):
        import repro.sim.table as table

        real = table.simulate_many_columnar

        def perturbed(specs):
            return [
                dataclasses.replace(
                    r, mem_latency_mult=r.mem_latency_mult * 1.001
                )
                for r in real(specs)
            ]

        monkeypatch.setattr(table, "simulate_many_columnar", perturbed)
        report = run_differential_checks(
            workloads=("EP", "SSCA2"), levels=(1, 4),
            include_parallel=False,
        )
        columnar = [v for v in report.violations
                    if v.check == "columnar_vs_serial"]
        assert columnar, [v.render() for v in report.violations]
        for violation in columnar:
            assert violation.details["rel_error"] > REL_TOL
            assert violation.details["minimized_scenarios"]

    def test_surrogate_beyond_bound_is_detected(self, monkeypatch):
        import repro.sim.surrogate as surrogate

        real = surrogate.simulate_many_surrogate

        def beyond_bound(specs):
            results, _ = real(specs)
            # Claim acceptance while exceeding the 1% calibrated bound.
            return (
                [dataclasses.replace(r, mem_latency_mult=r.mem_latency_mult * 1.05)
                 for r in results],
                [True] * len(results),
            )

        monkeypatch.setattr(surrogate, "simulate_many_surrogate", beyond_bound)
        report = run_differential_checks(
            workloads=("EP", "SSCA2"), levels=(1, 4),
            include_parallel=False,
        )
        bad = [v for v in report.violations
               if v.check == "surrogate_vs_solver"]
        assert bad, [v.render() for v in report.violations]
        assert all(v.details["accepted"] for v in bad)

    def test_surrogate_that_never_engages_is_flagged(self, monkeypatch):
        import repro.sim.surrogate as surrogate
        import repro.sim.table as table

        def always_falls_back(specs):
            results = table.simulate_many_columnar(specs)
            return results, [False] * len(results)

        monkeypatch.setattr(
            surrogate, "simulate_many_surrogate", always_falls_back
        )
        report = run_differential_checks(
            workloads=("EP", "SSCA2"), levels=(1, 4),
            include_parallel=False,
        )
        gate = [v for v in report.violations
                if v.check == "surrogate_vs_solver"]
        assert len(gate) == 1
        assert gate[0].subject == "(whole batch)"
        assert report.stats["surrogate_accepted"] == 0

    def test_simulate_batch_seam_equivalent_injection(self):
        # The explicit seam gives the same detection without patching.
        def perturbed_many(specs):
            return [
                dataclasses.replace(
                    r, mem_latency_mult=r.mem_latency_mult * 1.001
                )
                for r in engine.simulate_many(specs)
            ]

        report = run_differential_checks(
            workloads=("EP",), levels=(1, 4), include_parallel=False,
            simulate_batch=perturbed_many,
        )
        assert any(v.check == "batched_vs_serial" for v in report.violations)
