"""Report plumbing: violations, pillar aggregation, exit codes."""

from repro.check.report import PILLARS, CheckReport, PillarReport, Violation


def make_violation(**overrides):
    kwargs = dict(
        pillar="invariants", check="times_additive",
        subject="EP@SMT4 seed=11", message="wall != serial + parallel",
        details={"rel_residual": 1e-3},
    )
    kwargs.update(overrides)
    return Violation(**kwargs)


class TestViolation:
    def test_render_names_pillar_check_and_subject(self):
        text = make_violation().render()
        assert "[invariants/times_additive]" in text
        assert "EP@SMT4 seed=11" in text
        assert "wall != serial + parallel" in text

    def test_payload_round_trips_details(self):
        payload = make_violation().payload()
        assert payload["pillar"] == "invariants"
        assert payload["details"] == {"rel_residual": 1e-3}


class TestPillarReport:
    def test_ok_iff_no_violations(self):
        clean = PillarReport(pillar="goldens", checks_run=12, subjects=12)
        assert clean.ok
        dirty = PillarReport(pillar="goldens", checks_run=12, subjects=12,
                             violations=(make_violation(pillar="goldens"),))
        assert not dirty.ok

    def test_payload_carries_stats_and_skip_reason(self):
        report = PillarReport(pillar="fuzz", checks_run=0, subjects=0,
                              skipped="no server", stats={"cases": 0})
        payload = report.payload()
        assert payload["skipped"] == "no server"
        assert payload["stats"] == {"cases": 0}


class TestCheckReport:
    def test_clean_report_exits_zero_and_renders_pass(self):
        report = CheckReport(pillars=tuple(
            PillarReport(pillar=p, checks_run=1, subjects=1) for p in PILLARS
        ))
        assert report.ok
        assert report.exit_code == 0
        rendered = report.render()
        assert "RESULT: PASS" in rendered
        for pillar in PILLARS:
            assert pillar in rendered

    def test_any_violation_fails_the_whole_report(self):
        report = CheckReport(pillars=(
            PillarReport(pillar="invariants", checks_run=5, subjects=5),
            PillarReport(pillar="differential", checks_run=3, subjects=3,
                         violations=(make_violation(pillar="differential"),)),
        ))
        assert not report.ok
        assert report.exit_code == 1
        assert len(report.violations) == 1
        rendered = report.render()
        assert "FAIL (1 violation(s))" in rendered
        # Violation details are printed under the table.
        assert "rel_residual" in rendered

    def test_skipped_pillar_renders_skip_not_fail(self):
        report = CheckReport(pillars=(
            PillarReport(pillar="fuzz", checks_run=0, subjects=0,
                         skipped="platform cannot bind sockets"),
        ))
        assert report.ok
        assert "SKIP" in report.render()

    def test_payload_counts_violations(self):
        report = CheckReport(pillars=(
            PillarReport(pillar="goldens", checks_run=2, subjects=2,
                         violations=(make_violation(), make_violation())),
        ))
        assert report.payload()["n_violations"] == 2
        assert report.payload()["ok"] is False
