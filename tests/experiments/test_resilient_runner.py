"""Recovery tests for the resilient parallel sweep runner.

Acceptance: injected worker crashes and hangs are recovered and the
sweep result is *identical* to a fault-free run.
"""

import dataclasses

import pytest

from repro.experiments.runner import (
    RetryPolicy,
    _simulate_parallel,
    run_catalog,
)
from repro.experiments.systems import p7_system
from repro.faults import WorkerFaultPlan
from repro.obs import configure
from repro.sim.engine import RunSpec, simulate_run
from repro.workloads.catalog import all_workloads

pytestmark = pytest.mark.faults

FAST = RetryPolicy(task_timeout_s=5.0, max_retries=2, backoff_s=0.01)


@pytest.fixture(scope="module")
def specs():
    system = p7_system()
    names = ("EP", "Equake", "SPECjbb_contention", "SSCA2")
    workloads = all_workloads()
    return [
        RunSpec(system, 4, workloads[n].stream, workloads[n].sync, seed=5)
        for n in names
    ]


@pytest.fixture(scope="module")
def clean(specs):
    return [simulate_run(s) for s in specs]


def assert_results_equal(a, b):
    assert a.smt_level == b.smt_level
    assert a.n_threads == b.n_threads
    assert dataclasses.asdict(a.times) == dataclasses.asdict(b.times)
    assert dict(a.events) == dict(b.events)
    assert a.per_thread_ipc == b.per_thread_ipc


@pytest.fixture
def tracer():
    t = configure(enabled=True)
    t.reset()
    yield t
    configure(enabled=False)
    t.reset()


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_mult=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    @pytest.mark.parametrize("bad", [
        {"task_timeout_s": 0.0},
        {"max_retries": -1},
        {"backoff_s": -0.1},
        {"backoff_mult": 0.5},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)


class TestCrashRecovery:
    def test_crashed_task_retried_and_identical(self, specs, clean, tracer):
        plan = WorkerFaultPlan(crash_indices=(1,))
        results = _simulate_parallel(specs, 2, policy=FAST, fault_hook=plan)
        for got, want in zip(results, clean):
            assert_results_equal(got, want)
        counters = tracer.counters()
        assert counters.get("runner.task_errors", 0) >= 1
        assert counters.get("runner.recovered_tasks", 0) >= 1

    def test_hung_worker_detected_and_identical(self, specs, clean, tracer):
        plan = WorkerFaultPlan(hang_indices=(2,), hang_s=60.0)
        policy = RetryPolicy(task_timeout_s=1.0, max_retries=2, backoff_s=0.01)
        results = _simulate_parallel(specs, 2, policy=policy, fault_hook=plan)
        for got, want in zip(results, clean):
            assert_results_equal(got, want)
        counters = tracer.counters()
        assert counters.get("runner.task_timeouts", 0) >= 1
        assert counters.get("runner.recovered_tasks", 0) >= 1

    def test_hard_crash_recovered_via_timeout(self, specs, clean, tracer):
        # os._exit kills the worker without reporting; the pool restarts
        # the process but the task is lost — only the per-task timeout
        # can notice.
        plan = WorkerFaultPlan(crash_indices=(0,), hard=True)
        policy = RetryPolicy(task_timeout_s=1.5, max_retries=2, backoff_s=0.01)
        results = _simulate_parallel(specs, 2, policy=policy, fault_hook=plan)
        for got, want in zip(results, clean):
            assert_results_equal(got, want)
        assert tracer.counters().get("runner.task_timeouts", 0) >= 1

    def test_persistent_crash_falls_back_in_process(self, specs, clean, tracer):
        # A task that fails every attempt exhausts its retries and is
        # recomputed in-process: the sweep still completes, identically.
        plan = WorkerFaultPlan(crash_indices=(3,), fault_attempts=99)
        results = _simulate_parallel(specs, 2, policy=FAST, fault_hook=plan)
        for got, want in zip(results, clean):
            assert_results_equal(got, want)
        assert tracer.counters().get("runner.serial_fallbacks", 0) >= 1


class TestCatalogIntegration:
    def test_catalog_sweep_survives_worker_faults(self, tracer):
        system = p7_system()
        workloads = all_workloads()
        subset = {n: workloads[n] for n in ("EP", "Equake", "SSCA2")}
        baseline = run_catalog(system, subset, (1, 4), seed=5,
                               use_cache=False)
        plan = WorkerFaultPlan(crash_indices=(0, 4))
        faulted = run_catalog(
            system, subset, (1, 4), strategy="parallel", seed=5,
            use_cache=False, jobs=2, retry_policy=FAST, fault_hook=plan,
        )
        assert faulted.failures == {}
        assert set(faulted.names()) == set(baseline.names())
        for name in baseline.names():
            for level in (1, 4):
                got = faulted.runs[name][level]
                want = baseline.runs[name][level]
                assert got.wall_time_s == pytest.approx(
                    want.wall_time_s, rel=1e-12
                )
                assert dict(got.events) == pytest.approx(dict(want.events))
