"""Acceptance tests for the robustness (noise ablation) experiment.

Pins the documented claim: at :data:`DOCUMENTED_SEVERITY` the naive
single-sample controller mispredicts at least 20% of its readings,
while the hardened controller stays within 5 points of its own
zero-noise decision accuracy.  ``BENCH_robustness.json`` records the
same numbers; ``scripts/bench_robustness.py`` regenerates it.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import noise_ablation

pytestmark = pytest.mark.faults

NAIVE_MISPREDICT_FLOOR = 0.20
HARDENED_DROP_CEILING = 0.05


@pytest.fixture(scope="module")
def sweep():
    return noise_ablation.run(
        severities=(0.0, noise_ablation.DOCUMENTED_SEVERITY)
    )


class TestAcceptance:
    def test_naive_mispredicts_enough(self, sweep):
        doc = sweep.cell(noise_ablation.DOCUMENTED_SEVERITY)
        assert doc.naive_mispredict_rate >= NAIVE_MISPREDICT_FLOOR

    def test_hardened_holds_near_zero_noise_accuracy(self, sweep):
        doc = sweep.cell(noise_ablation.DOCUMENTED_SEVERITY)
        zero = sweep.zero_noise()
        drop = zero.hardened_accuracy - doc.hardened_accuracy
        assert drop <= HARDENED_DROP_CEILING

    def test_hardened_beats_naive_under_noise(self, sweep):
        doc = sweep.cell(noise_ablation.DOCUMENTED_SEVERITY)
        assert doc.hardened_accuracy > doc.naive_accuracy

    def test_naive_crashes_under_dropout(self, sweep):
        # Dropout removes events the raw metric needs: the naive path
        # must actually be crashing, not merely mispredicting.
        doc = sweep.cell(noise_ablation.DOCUMENTED_SEVERITY)
        assert doc.naive_crashes > 0
        assert sweep.zero_noise().naive_crashes == 0


class TestResultShape:
    def test_covers_every_catalog_workload(self, sweep):
        assert len(sweep.reference) == 28  # the POWER7 Table I set

    def test_render_mentions_documented_severity(self, sweep):
        text = sweep.render()
        assert "documented severity" in text
        assert str(noise_ablation.DOCUMENTED_SEVERITY) in text

    def test_payload_roundtrips_to_json(self, sweep):
        payload = sweep.payload()
        again = json.loads(json.dumps(payload))
        assert again["documented_severity"] == noise_ablation.DOCUMENTED_SEVERITY
        assert len(again["cells"]) == 2

    def test_unknown_severity_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.cell(0.77)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            noise_ablation.run(samples=0)
        with pytest.raises(ValueError, match="unknown arch"):
            noise_ablation.run(arch="sparc")


class TestBenchArtifact:
    def test_committed_record_matches_acceptance(self):
        path = Path(__file__).resolve().parents[2] / "BENCH_robustness.json"
        assert path.is_file(), "run scripts/bench_robustness.py"
        record = json.loads(path.read_text())
        acceptance = record["acceptance"]
        assert acceptance["naive_ok"] is True
        assert acceptance["hardened_ok"] is True
        assert acceptance["documented_severity"] == (
            noise_ablation.DOCUMENTED_SEVERITY
        )
