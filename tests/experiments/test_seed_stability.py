"""Seed-sweep stability of the headline results.

The paper's rates must hold across measurement campaigns, not for one
lucky seed.  Near-threshold borderliners (Gafort, IS, MG, Stream, ...)
are allowed to flip; the aggregate must stay in band.
"""

import pytest

from repro.experiments import fig06_smt4v1_at4
from repro.experiments.runner import run_catalog

SEEDS = (11, 23, 47, 101, 777)


@pytest.fixture(scope="module")
def sweeps():
    return {seed: fig06_smt4v1_at4.run(runs=run_catalog("p7", seed=seed)) for seed in SEEDS}


class TestSeedStability:
    def test_success_rate_band(self, sweeps):
        for seed, scatter in sweeps.items():
            rate = scatter.success(threshold=0.07).success_rate
            assert rate >= 0.85, (seed, rate)

    def test_fitted_threshold_stable(self, sweeps):
        thresholds = [s.fit_predictor("gini").threshold for s in sweeps.values()]
        assert max(thresholds) - min(thresholds) < 0.05

    def test_extreme_points_never_flip(self, sweeps):
        for seed, scatter in sweeps.items():
            by_name = {p.name: p for p in scatter.points}
            assert by_name["EP"].speedup > 1.5, seed
            assert by_name["SPECjbb_contention"].speedup < 0.5, seed
            assert by_name["Swim"].speedup < 0.7, seed

    def test_misses_confined_to_borderliners(self, sweeps):
        allowed = {"Gafort", "IS", "MG", "Stream", "Dedup", "Streamcluster",
                   "MG_MPI", "IS_MPI", "SSCA2"}
        for seed, scatter in sweeps.items():
            summary = scatter.success(threshold=0.07)
            assert set(summary.misses) <= allowed, (seed, summary.misses)
