"""Shared (session-scoped) catalog runs for the experiment tests.

Running the full POWER7 catalog at three SMT levels takes about a
second; sharing the result across the experiment tests keeps the suite
fast without weakening the assertions.
"""

import pytest

from repro.experiments.runner import run_catalog


@pytest.fixture(scope="session")
def p7_catalog_runs():
    return run_catalog("p7", seed=11)


@pytest.fixture(scope="session")
def p7x2_catalog_runs():
    return run_catalog("p7", n_chips=2, seed=11)


@pytest.fixture(scope="session")
def nehalem_catalog_runs():
    return run_catalog("nehalem", seed=11)
