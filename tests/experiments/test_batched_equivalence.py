"""The batched strategy must reproduce the serial reference and honour the cache."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.runner import run_catalog
from repro.experiments.systems import nehalem_system, p7_system
from repro.sim.runcache import RunCache
from repro.workloads.catalog import all_workloads

REL_TOL = 1e-9

# Equake stresses the bandwidth bisection; SPECjbb_contention and
# Fluidanimate take the spin/lock fixed-point loop; EP short-circuits it.
SUBSET_NAMES = ("EP", "Equake", "Fluidanimate", "SPECjbb_contention")


def subset():
    specs = all_workloads()
    return {n: specs[n] for n in SUBSET_NAMES}


def close(a, b):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(np.abs(a - b) <= REL_TOL * (np.abs(a) + 1e-12)))


def assert_run_matches(scalar, batched):
    assert batched.arch.name == scalar.arch.name
    assert batched.smt_level == scalar.smt_level
    assert batched.n_threads == scalar.n_threads
    assert batched.n_chips == scalar.n_chips
    assert batched.useful_instructions == scalar.useful_instructions
    st, bt = dataclasses.asdict(scalar.times), dataclasses.asdict(batched.times)
    assert st.keys() == bt.keys()
    for key in st:
        assert close(st[key], bt[key]), f"times.{key}"
    assert scalar.events.keys() == batched.events.keys()
    for key in scalar.events:
        assert close(scalar.events[key], batched.events[key]), f"events[{key}]"
    assert close(scalar.spin_fraction, batched.spin_fraction)
    assert close(scalar.blocked_fraction, batched.blocked_fraction)
    assert close(scalar.mem_latency_mult, batched.mem_latency_mult)
    assert close(scalar.mem_utilization, batched.mem_utilization)
    assert close(scalar.per_thread_ipc, batched.per_thread_ipc)
    assert close(scalar.dispatch_held_fraction, batched.dispatch_held_fraction)


def assert_catalogs_match(scalar_runs, batched_runs):
    assert scalar_runs.levels() == batched_runs.levels()
    assert set(scalar_runs.names()) == set(batched_runs.names())
    for name, by_level in scalar_runs.runs.items():
        for level, scalar in by_level.items():
            assert_run_matches(scalar, batched_runs.runs[name][level])


@pytest.fixture(scope="module")
def scalar_runs():
    return run_catalog(p7_system(), subset(), (1, 2, 4), strategy="serial", seed=5)


class TestBatchedCatalog:
    def test_matches_scalar_engine(self, scalar_runs):
        batched = run_catalog(
            p7_system(), subset(), (1, 2, 4), seed=5, use_cache=False
        )
        assert_catalogs_match(scalar_runs, batched)

    def test_nehalem_matches(self):
        names = ("EP", "Equake", "SSCA2")
        sub = {n: all_workloads()[n] for n in names}
        scalar = run_catalog(nehalem_system(), sub, (1, 2), strategy="serial", seed=5)
        batched = run_catalog(
            nehalem_system(), sub, (1, 2), seed=5, use_cache=False
        )
        assert_catalogs_match(scalar, batched)

    def test_cache_round_trip(self, scalar_runs, tmp_path):
        cache = RunCache(tmp_path / "rc")
        cold = run_catalog(
            p7_system(), subset(), (1, 2, 4), seed=5, cache=cache
        )
        assert len(cache) == len(SUBSET_NAMES) * 3
        warm = run_catalog(
            p7_system(), subset(), (1, 2, 4), seed=5, cache=cache
        )
        assert_catalogs_match(cold, warm)
        assert_catalogs_match(scalar_runs, warm)

    def test_cache_partial_hits(self, tmp_path):
        # Warm only one level, then ask for all three: the cached level
        # must blend seamlessly with freshly simulated ones.
        cache = RunCache(tmp_path / "rc")
        run_catalog(p7_system(), subset(), (2,), seed=5, cache=cache)
        assert len(cache) == len(SUBSET_NAMES)
        full = run_catalog(
            p7_system(), subset(), (1, 2, 4), seed=5, cache=cache
        )
        assert len(cache) == len(SUBSET_NAMES) * 3
        assert full.levels() == (1, 2, 4)

    def test_use_cache_false_writes_nothing(self, tmp_path):
        cache = RunCache(tmp_path / "rc")
        run_catalog(
            p7_system(), {"EP": all_workloads()["EP"]}, (1,),
            seed=5, cache=cache, use_cache=False,
        )
        assert len(cache) == 0

    def test_seed_changes_bypass_cache_entries(self, tmp_path):
        cache = RunCache(tmp_path / "rc")
        sub = {"EP": all_workloads()["EP"]}
        run_catalog(p7_system(), sub, (1,), seed=5, cache=cache)
        run_catalog(p7_system(), sub, (1,), seed=6, cache=cache)
        assert len(cache) == 2

    def test_jobs_path_matches(self, scalar_runs):
        batched = run_catalog(
            p7_system(), subset(), (1, 2, 4), strategy="parallel",
            seed=5, use_cache=False, jobs=2,
        )
        assert_catalogs_match(scalar_runs, batched)


class TestExplicitStrategies:
    @pytest.mark.parametrize("strategy", ["batched", "columnar"])
    def test_exact_strategies_match_scalar(self, scalar_runs, strategy):
        runs = run_catalog(
            p7_system(), subset(), (1, 2, 4), strategy=strategy,
            seed=5, use_cache=False,
        )
        assert_catalogs_match(scalar_runs, runs)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_catalog(p7_system(), subset(), (1,), strategy="bogus")

    def test_surrogate_results_never_enter_the_exact_cache(self, tmp_path):
        from repro.obs import configure

        tracer = configure(enabled=True)
        tracer.reset()
        try:
            cache = RunCache(tmp_path / "rc")
            run_catalog(
                p7_system(), subset(), (1, 2, 4), strategy="surrogate",
                seed=5, cache=cache,
            )
            counters = tracer.counters()
        finally:
            configure(enabled=False)
            tracer.reset()
        hits = counters.get("surrogate.hits", 0)
        fallbacks = counters.get("surrogate.fallbacks", 0)
        assert hits + fallbacks == len(SUBSET_NAMES) * 3
        assert hits > 0, "surrogate must engage on catalog workloads"
        # Approximate answers must not poison the exact run cache: only
        # solver fallbacks may be persisted.
        assert len(cache) == fallbacks

    def test_surrogate_matches_scalar_within_bound(self, scalar_runs):
        from repro.check.differential import compare_runs

        runs = run_catalog(
            p7_system(), subset(), (1, 2, 4), strategy="surrogate",
            seed=5, use_cache=False,
        )
        for name, by_level in scalar_runs.runs.items():
            for level, scalar in by_level.items():
                diffs = compare_runs(scalar, runs.runs[name][level],
                                     rel_tol=1e-2)
                assert not diffs, (name, level, diffs)
