"""Integration tests: each figure experiment reproduces the paper's shape.

These are the same assertions the benchmark harness makes, run at test
granularity so regressions in any substrate show up here first.
"""

import pytest

from repro.analysis.correlation import pearson
from repro.experiments import (
    fig01_motivation,
    fig02_naive_metrics,
    fig06_smt4v1_at4,
    fig07_instruction_mix,
    fig08_smt4v2_at4,
    fig09_smt2v1_at2,
    fig10_nehalem,
    fig11_at_smt1_p7,
    fig12_at_smt1_nehalem,
    fig13_two_chip_41,
    fig14_two_chip_42,
    fig15_two_chip_21,
    fig16_gini,
    fig17_ppi,
    table1,
)


class TestFig01:
    def test_motivation_bars(self, p7_catalog_runs):
        result = fig01_motivation.run(runs=p7_catalog_runs)
        norm = result.normalized
        assert norm["Equake"][4] < 0.7      # SMT4 degrades Equake
        assert 0.85 < norm["MG"][4] < 1.15  # MG oblivious
        assert norm["EP"][4] > 1.6          # SMT4 helps EP
        assert "Fig. 1" in result.render()


class TestFig02:
    def test_no_strong_correlation(self, p7_catalog_runs):
        result = fig02_naive_metrics.run(runs=p7_catalog_runs)
        for metric, stats in result.correlations.items():
            assert abs(stats["pearson"]) < 0.6, metric

    def test_weaker_than_smtsm(self, p7_catalog_runs):
        naive = fig02_naive_metrics.run(runs=p7_catalog_runs)
        scatter = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        smtsm_r = abs(pearson(scatter.metrics(), scatter.speedups()))
        for metric, stats in naive.correlations.items():
            assert abs(stats["pearson"]) < smtsm_r, metric

    def test_render(self, p7_catalog_runs):
        text = fig02_naive_metrics.run(runs=p7_catalog_runs).render()
        assert "l1_mpki" in text and "correlation" in text


class TestFig06:
    def test_paper_threshold_success_rate(self, p7_catalog_runs):
        result = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        summary = result.success(threshold=fig06_smt4v1_at4.PAPER_THRESHOLD)
        assert summary.n_total == 28
        assert summary.success_rate >= 0.89  # paper: 93%

    def test_misses_are_left_side_and_slight(self, p7_catalog_runs):
        # "only two ... having a metric less than the threshold and
        # performing slightly worse at SMT4"
        result = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        summary = result.success(threshold=0.07)
        assert len(summary.right_misses) == 0
        assert 1 <= len(summary.left_misses) <= 3
        by_name = {p.name: p for p in result.points}
        for name in summary.left_misses:
            assert by_name[name].speedup > 0.9  # slight, not severe

    def test_above_threshold_all_prefer_smt1(self, p7_catalog_runs):
        result = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        for p in result.points:
            if p.metric > 0.07:
                assert p.speedup < 1.0, p.name

    def test_clear_negative_correlation(self, p7_catalog_runs):
        result = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        assert pearson(result.metrics(), result.speedups()) < -0.6


class TestFig07:
    def test_speedup_ladder_descends(self, p7_catalog_runs):
        result = fig07_instruction_mix.run(runs=p7_catalog_runs)
        order = list(fig07_instruction_mix.BENCHMARKS)
        speedups = [result.speedups[n] for n in order]
        assert speedups == sorted(speedups, reverse=True)
        assert speedups[0] > 1.5      # Blackscholes ~1.82
        assert speedups[-1] < 0.5     # SPECjbb_contention ~0.25

    def test_deviation_trends_with_slowdown(self, p7_catalog_runs):
        # The paper's claim is a trend ("more and more dominated ... or
        # less diverse"), not strict monotonicity: the SMT4-hostile tail
        # must have the largest deviations.
        result = fig07_instruction_mix.run(runs=p7_catalog_runs)
        order = list(fig07_instruction_mix.BENCHMARKS)
        devs = [result.deviations[n] for n in order]
        assert devs[2:] == sorted(devs[2:])        # Dedup -> SSCA2 -> jbb_cont
        assert max(devs) == devs[-1]               # the 0.25x point is worst
        assert min(devs[2:]) > min(devs[:2])       # losers less ideal than winners

    def test_contention_mix_is_spin_polluted(self, p7_catalog_runs):
        from repro.arch.classes import InstrClass
        result = fig07_instruction_mix.run(runs=p7_catalog_runs)
        jbbc = result.mixes["SPECjbb_contention"]
        assert jbbc[InstrClass.BRANCH] > 0.3


class TestFig08:
    def test_above_threshold_prefers_smt2(self, p7_catalog_runs):
        result = fig08_smt4v2_at4.run(runs=p7_catalog_runs)
        for p in result.points:
            if p.metric > 0.07:
                assert p.speedup < 1.05, p.name

    def test_left_side_mostly_wins_with_mild_losses(self, p7_catalog_runs):
        # Paper: left-side losers stay above 0.9.
        result = fig08_smt4v2_at4.run(runs=p7_catalog_runs)
        for p in result.points:
            if p.metric <= 0.07 and p.speedup < 1.0:
                assert p.speedup > 0.9, p.name


class TestFig09:
    def test_extremes_predictable_band_ambiguous(self, p7_catalog_runs):
        result = fig09_smt2v1_at2.run(runs=p7_catalog_runs)
        band = fig09_smt2v1_at2.ambiguous_band(result)
        # The band must contain both outcomes - that is the finding.
        assert any(p.speedup >= 1.0 for p in band)
        assert any(p.speedup < 1.0 for p in band)
        for p in result.points:
            if p.metric >= fig09_smt2v1_at2.UPPER_BOUND:
                assert p.speedup < 1.05, p.name


class TestFig10:
    def test_success_rate(self, nehalem_catalog_runs):
        result = fig10_nehalem.run(runs=nehalem_catalog_runs)
        summary = result.success()  # fitted threshold
        assert summary.n_total == 21
        assert summary.success_rate >= 0.80  # paper: 86%

    def test_streamcluster_is_the_outlier(self, nehalem_catalog_runs):
        result = fig10_nehalem.run(runs=nehalem_catalog_runs)
        points = sorted(result.points, key=lambda p: p.metric)
        assert points[-1].name == fig10_nehalem.OUTLIER
        assert points[-1].speedup > 1.0  # high metric yet SMT2 wins

    def test_few_prefer_smt1(self, nehalem_catalog_runs):
        result = fig10_nehalem.run(runs=nehalem_catalog_runs)
        losers = [p for p in result.points if p.speedup < 1.0]
        assert 1 <= len(losers) <= 5


class TestBreakdownFigures:
    def test_fig11_worse_than_fig06(self, p7_catalog_runs):
        at4 = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        at1 = fig11_at_smt1_p7.run(runs=p7_catalog_runs)
        from repro.core.thresholds import optimal_threshold_range
        _, _, gini4 = optimal_threshold_range(at4.metrics(), at4.speedups())
        _, _, gini1 = optimal_threshold_range(at1.metrics(), at1.speedups())
        assert gini1 > 2 * gini4

    def test_fig11_contention_hides_at_smt1(self, p7_catalog_runs):
        at1 = fig11_at_smt1_p7.run(runs=p7_catalog_runs)
        by_name = {p.name: p for p in at1.points}
        # A severe SMT4 loser sits among the winners' metric range.
        jbbc = by_name["SPECjbb_contention"]
        winners = [p.metric for p in at1.points if p.speedup > 1.4]
        assert jbbc.metric < max(winners)

    def test_fig12_worse_than_fig10(self, nehalem_catalog_runs):
        at2 = fig10_nehalem.run(runs=nehalem_catalog_runs)
        at1 = fig12_at_smt1_nehalem.run(runs=nehalem_catalog_runs)
        assert at1.success().success_rate <= at2.success().success_rate


class TestTwoChipFigures:
    def test_fig13_more_smt1_preferrers_than_one_chip(
        self, p7_catalog_runs, p7x2_catalog_runs
    ):
        one = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
        two = fig13_two_chip_41.run(runs=p7x2_catalog_runs)
        losers_one = sum(1 for p in one.points if p.speedup < 1.0)
        losers_two = sum(1 for p in two.points if p.speedup < 1.0)
        assert losers_two >= losers_one

    def test_fig13_still_separates(self, p7x2_catalog_runs):
        result = fig13_two_chip_41.run(runs=p7x2_catalog_runs)
        assert result.success().success_rate >= 0.75

    def test_fig14_not_worse_than_fig13(self, p7x2_catalog_runs):
        s13 = fig13_two_chip_41.run(runs=p7x2_catalog_runs).success()
        s14 = fig14_two_chip_42.run(runs=p7x2_catalog_runs).success()
        assert s14.success_rate >= s13.success_rate - 0.05

    def test_fig15_ineffective(self, p7x2_catalog_runs):
        result = fig15_two_chip_21.run(runs=p7x2_catalog_runs)
        # Some below-threshold point must lose: prediction is unreliable.
        fitted = result.fit_predictor()
        below = [p for p in result.points if p.metric <= fitted.threshold]
        assert any(p.speedup < 1.0 for p in below)


class TestThresholdFigures:
    def test_fig16_minimum_and_range(self, p7_catalog_runs):
        result = fig16_gini.run(runs=p7_catalog_runs)
        assert result.min_impurity < 0.25  # paper: 0.23
        lo, hi = result.best_range
        assert 0.0 < lo <= hi < 0.2
        assert "impurity" in result.render()

    def test_fig17_improvement_and_plateau(self, p7_catalog_runs):
        result = fig17_ppi.run(runs=p7_catalog_runs)
        assert result.best_improvement_pct > 15.0  # paper: >20%
        lo, hi = result.plateau
        assert hi - lo > 0.05  # a wide safe range (paper's point 2)
        assert "PPI" in result.render()

    def test_fig17_ppi_threshold_near_gini(self, p7_catalog_runs):
        gini = fig16_gini.run(runs=p7_catalog_runs)
        ppi = fig17_ppi.run(runs=p7_catalog_runs)
        assert abs(ppi.best_threshold - gini.best_range[0]) < 0.1


class TestTable1:
    def test_renders_all_benchmarks(self):
        text = table1.run()
        assert "Table I" in text
        for label in ("EP", "Blackscholes", "SPECjbb", "Daytrader", "Swim"):
            assert label in text
