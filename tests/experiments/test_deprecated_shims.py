"""The pre-unification runner names still work — and warn exactly once.

``run_catalog(strategy=...)`` replaced ``run_catalog_batched`` and the
``p7_runs``/``nehalem_runs`` helpers; the old names survive one cycle
as ``DeprecationWarning`` shims.  Each call must emit exactly one
warning (not zero, not a cascade from the delegate) and must forward a
result identical to the new entry point.  This is the only place in
the repo allowed to call them.
"""

import dataclasses
import warnings

import pytest

from repro.experiments.runner import run_catalog, run_catalog_batched
from repro.experiments.systems import nehalem_runs, p7_runs, p7_system

NAMES = ("EP", "SSCA2")


def _slice(names=NAMES):
    from repro.workloads import all_workloads

    specs = all_workloads()
    return {name: specs[name] for name in names}


def call_counting_warnings(func):
    """Run ``func`` recording every warning; return (result, warnings)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func()
    return result, list(caught)


def assert_warns_exactly_once(caught, match):
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}: "
        f"{[str(w.message) for w in deprecations]}"
    )
    assert match in str(deprecations[0].message)


def assert_results_identical(a, b):
    assert repr(a.arch) == repr(b.arch)
    assert a.smt_level == b.smt_level
    assert a.n_threads == b.n_threads
    assert a.n_chips == b.n_chips
    assert a.useful_instructions == b.useful_instructions
    assert dataclasses.asdict(a.times) == dataclasses.asdict(b.times)
    assert dict(a.events) == dict(b.events)
    assert a.spin_fraction == b.spin_fraction
    assert a.blocked_fraction == b.blocked_fraction
    assert a.mem_latency_mult == b.mem_latency_mult
    assert a.mem_utilization == b.mem_utilization
    assert a.per_thread_ipc == b.per_thread_ipc
    assert a.dispatch_held_fraction == b.dispatch_held_fraction


def assert_catalogs_identical(old, new):
    assert old.runs.keys() == new.runs.keys()
    assert old.seed == new.seed
    assert old.failures == new.failures
    for name, per_level in new.runs.items():
        assert old.runs[name].keys() == per_level.keys()
        for level, result in per_level.items():
            assert_results_identical(old.runs[name][level], result)


class TestRunCatalogBatchedShim:
    def test_warns_exactly_once_and_forwards_identically(self):
        old, caught = call_counting_warnings(
            lambda: run_catalog_batched(p7_system(), _slice(), (1, 4), seed=11)
        )
        assert_warns_exactly_once(caught, "run_catalog_batched")
        new = run_catalog("p7", _slice(), (1, 4), seed=11)
        assert_catalogs_identical(old, new)

    def test_new_entry_point_does_not_warn(self):
        _, caught = call_counting_warnings(
            lambda: run_catalog("p7", _slice(), (1,), seed=11)
        )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_jobs_selects_parallel_strategy_with_one_warning(self):
        old, caught = call_counting_warnings(
            lambda: run_catalog_batched(
                p7_system(), _slice(("EP",)), (1, 2), seed=11, jobs=2
            )
        )
        assert_warns_exactly_once(caught, "run_catalog_batched")
        new = run_catalog(
            "p7", _slice(("EP",)), (1, 2), strategy="parallel", seed=11, jobs=2
        )
        assert_catalogs_identical(old, new)


class TestSystemsShims:
    def test_p7_runs_warns_exactly_once_and_delegates(self):
        old, caught = call_counting_warnings(
            lambda: p7_runs(levels=(1, 4), seed=11)
        )
        assert_warns_exactly_once(caught, "p7_runs")
        new = run_catalog("p7", levels=(1, 4), seed=11)
        assert_catalogs_identical(old, new)

    def test_nehalem_runs_warns_exactly_once_and_delegates(self):
        old, caught = call_counting_warnings(lambda: nehalem_runs(seed=11))
        assert_warns_exactly_once(caught, "nehalem_runs")
        new = run_catalog("nehalem", seed=11)
        assert_catalogs_identical(old, new)

    def test_each_call_warns_again(self):
        # The shims use plain DeprecationWarning per call (no once-ever
        # dedup): two calls, two warnings, so no caller can miss it.
        def twice():
            p7_runs(levels=(1,), seed=11)
            return p7_runs(levels=(1,), seed=11)

        _, caught = call_counting_warnings(twice)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2


class TestNoOtherCallers:
    def test_repo_has_no_remaining_shim_callers(self):
        """Nothing outside this test file calls the deprecated names."""
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        offenders = []
        for root in ("src", "scripts"):
            for path in (repo / root).rglob("*.py"):
                text = path.read_text()
                for name in ("run_catalog_batched(", "p7_runs(", "nehalem_runs("):
                    for i, line in enumerate(text.splitlines(), 1):
                        if name in line and "def " + name.rstrip("(") not in line:
                            offenders.append(f"{path.relative_to(repo)}:{i}")
        assert not offenders, f"deprecated runner names still called: {offenders}"
