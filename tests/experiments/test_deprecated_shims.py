"""The pre-unification runner names still work — and warn.

``run_catalog(strategy=...)`` replaced ``run_catalog_batched`` and the
``p7_runs``/``nehalem_runs`` helpers; the old names survive one cycle
as ``DeprecationWarning`` shims.  This is the only place in the repo
allowed to call them.
"""

import pytest

from repro.experiments.runner import run_catalog, run_catalog_batched
from repro.experiments.systems import nehalem_runs, p7_runs, p7_system

NAMES = ("EP", "SSCA2")


def _slice(names=NAMES):
    from repro.workloads import all_workloads

    specs = all_workloads()
    return {name: specs[name] for name in names}


class TestRunCatalogBatchedShim:
    def test_warns_and_matches_new_entry_point(self):
        with pytest.warns(DeprecationWarning, match="run_catalog_batched"):
            old = run_catalog_batched(p7_system(), _slice(), (1, 4), seed=11)
        new = run_catalog("p7", _slice(), (1, 4), seed=11)
        assert old.runs.keys() == new.runs.keys()
        for name in NAMES:
            for level in (1, 4):
                assert old.runs[name][level].wall_time_s == pytest.approx(
                    new.runs[name][level].wall_time_s, rel=1e-12
                )


class TestSystemsShims:
    def test_p7_runs_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="p7_runs"):
            old = p7_runs(levels=(1, 4), seed=11)
        new = run_catalog("p7", levels=(1, 4), seed=11)
        assert old.runs.keys() == new.runs.keys()
        assert old.runs["EP"][4].wall_time_s == pytest.approx(
            new.runs["EP"][4].wall_time_s, rel=1e-12
        )

    def test_nehalem_runs_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="nehalem_runs"):
            old = nehalem_runs(seed=11)
        new = run_catalog("nehalem", seed=11)
        assert old.runs.keys() == new.runs.keys()


class TestNoOtherCallers:
    def test_repo_has_no_remaining_shim_callers(self):
        """Nothing outside this test file calls the deprecated names."""
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        offenders = []
        for root in ("src", "scripts"):
            for path in (repo / root).rglob("*.py"):
                text = path.read_text()
                for name in ("run_catalog_batched(", "p7_runs(", "nehalem_runs("):
                    for i, line in enumerate(text.splitlines(), 1):
                        if name in line and "def " + name.rstrip("(") not in line:
                            offenders.append(f"{path.relative_to(repo)}:{i}")
        assert not offenders, f"deprecated runner names still called: {offenders}"
