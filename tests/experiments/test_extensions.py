"""Tests for the extension experiments (beyond the paper's figures)."""

import pytest

from repro.experiments import (
    batch_scheduler,
    coschedule_symbiosis,
    offline_vs_online,
    online_optimizer,
    priority_shielding,
    scaling_cores,
    threshold_transfer,
)


class TestPriorityShielding:
    @pytest.fixture(scope="class")
    def result(self):
        return priority_shielding.run()

    def test_monotone_in_priority(self, result):
        prios = sorted(result.foreground_ipc)
        series = [result.foreground_ipc[p] for p in prios]
        assert series == sorted(series)

    def test_never_exceeds_solo(self, result):
        assert max(result.foreground_ipc.values()) <= result.solo_ipc * 1.001

    def test_core_throughput_conserved(self, result):
        core = list(result.core_ipc.values())
        assert max(core) / min(core) < 1.2

    def test_render(self, result):
        assert "priority" in result.render()


class TestCoschedule:
    @pytest.fixture(scope="class")
    def result(self):
        return coschedule_symbiosis.run(seed=11)

    def test_policy_ordering(self, result):
        assert result.guided.weighted_speedup >= result.random_mean
        assert result.random_mean > result.adversarial.weighted_speedup

    def test_guided_avoids_hot_hot_pairs(self, result):
        hot = {"Streamcluster", "SPECjbb", "IS"}
        for a, b in result.guided.pairing:
            assert not ({a.name, b.name} <= hot), (a.name, b.name)

    def test_render(self, result):
        assert "weighted speedup" in result.render()


class TestThresholdTransfer:
    @pytest.fixture(scope="class")
    def result(self, p7_catalog_runs):
        return threshold_transfer.run(runs=p7_catalog_runs)

    def test_leave_one_out_robust(self, result):
        assert result.loo_rate >= 0.85

    def test_seed_transfer_robust(self, result):
        assert result.transfer_rate >= 0.85

    def test_loo_misses_are_the_calibrated_borderliners(self, result):
        assert set(result.loo_misses) <= {"Gafort", "IS", "MG", "Stream",
                                          "Dedup", "Streamcluster"}


class TestScalingCores:
    @pytest.fixture(scope="class")
    def result(self):
        return scaling_cores.run(seed=11)

    def test_accuracy_never_improves_with_size(self, result):
        rates = result.success_rates()
        assert rates[4] <= rates[2] + 1e-9 <= rates[1] + 2e-9

    def test_lock_bound_workloads_always_degrade(self, result):
        for chips, scatter in result.per_chips.items():
            by_name = {p.name: p for p in scatter.points}
            assert by_name["SPECjbb_contention"].speedup < 0.5


class TestBatchScheduler:
    @pytest.fixture(scope="class")
    def result(self, p7_catalog_runs):
        return batch_scheduler.run(runs=p7_catalog_runs)

    def test_policy_ordering(self, result):
        makespans = result.makespans()
        assert makespans["oracle"] <= makespans["smtsm"] * 1.02
        assert makespans["smtsm"] < makespans["static-4"]
        assert makespans["smtsm"] < makespans["static-1"]

    def test_decisions_are_mixed(self, result):
        levels = {r.level for r in result.outcomes["smtsm"].records}
        assert {1, 4} <= levels

    def test_render(self, result):
        assert "makespan" in result.render()


class TestOfflineVsOnline:
    @pytest.fixture(scope="class")
    def result(self, p7_catalog_runs):
        return offline_vs_online.run(runs=p7_catalog_runs)

    def test_online_beats_offline(self, result):
        assert result.online_success() > result.offline_success()

    def test_flips_exist(self, result):
        assert result.preference_flips() >= 3

    def test_blind_spot_documented(self, result):
        equake = next(o for o in result.outcomes if o.name == "Equake")
        assert not equake.online_correct
        assert equake.prod_speedup > 1.0

    def test_render(self, result):
        text = result.render()
        assert "STALE" in text and "offline" in text


class TestOnlineOptimizerExperiment:
    def test_beats_default(self, p7_catalog_runs):
        result = online_optimizer.run(runs=p7_catalog_runs)
        assert result.adaptive_wall < result.static_walls[4] * 0.8
        assert result.adaptive.n_switches >= 1
        assert "adaptive" in result.render()
