"""Tests for the shared experiment runner."""

import pytest

from repro.experiments.runner import run_catalog, scatter_from_runs
from repro.experiments.systems import p7_system
from repro.workloads.catalog import all_workloads


@pytest.fixture(scope="module")
def small_runs():
    specs = all_workloads()
    subset = {n: specs[n] for n in ("EP", "Equake", "SPECjbb_contention")}
    return run_catalog(p7_system(), subset, (1, 2, 4), seed=5)


class TestRunCatalog:
    def test_levels_and_names(self, small_runs):
        assert small_runs.levels() == (1, 2, 4)
        assert set(small_runs.names()) == {"EP", "Equake", "SPECjbb_contention"}

    def test_thread_counts_follow_protocol(self, small_runs):
        # §IV: software threads == hardware contexts at each level.
        for by_level in small_runs.runs.values():
            assert by_level[1].n_threads == 8
            assert by_level[2].n_threads == 16
            assert by_level[4].n_threads == 32

    def test_rejects_unsupported_level(self):
        with pytest.raises(ValueError):
            run_catalog(p7_system(), {"EP": all_workloads()["EP"]}, (1, 3))


class TestScatterFromRuns:
    def test_points_complete(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        assert len(result.points) == 3
        names = {p.name for p in result.points}
        assert names == set(small_runs.names())

    def test_selected_names(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1, names=["EP"])
        assert len(result.points) == 1

    def test_unknown_name_raises(self, small_runs):
        with pytest.raises(KeyError, match="not in catalog"):
            scatter_from_runs(small_runs, title="t", measure_level=4,
                              high_level=4, low_level=1, names=["nope"])

    def test_level_ordering_enforced(self, small_runs):
        with pytest.raises(ValueError):
            scatter_from_runs(small_runs, title="t", measure_level=4,
                              high_level=1, low_level=4)

    def test_known_workloads_land_on_expected_sides(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        by_name = {p.name: p for p in result.points}
        assert by_name["EP"].speedup > 1.5
        assert by_name["EP"].metric < 0.05
        assert by_name["Equake"].speedup < 0.7
        assert by_name["Equake"].metric > 0.15
        assert by_name["SPECjbb_contention"].speedup < 0.5

    def test_render_contains_summary(self, small_runs):
        result = scatter_from_runs(small_runs, title="My Fig", measure_level=4,
                                   high_level=4, low_level=1)
        text = result.render(threshold=0.07)
        assert "My Fig" in text
        assert "success" in text

    def test_success_with_fixed_threshold(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        summary = result.success(threshold=0.07)
        assert summary.n_total == 3
        assert summary.success_rate == 1.0
