"""Tests for the shared experiment runner."""

import pytest

import repro.experiments.runner as runner_mod
import repro.sim.table as table_mod
from repro.experiments.runner import (
    run_catalog,
    scatter_from_runs,
)
from repro.experiments.systems import p7_system
from repro.workloads.catalog import all_workloads


@pytest.fixture(scope="module")
def small_runs():
    specs = all_workloads()
    subset = {n: specs[n] for n in ("EP", "Equake", "SPECjbb_contention")}
    return run_catalog(p7_system(), subset, (1, 2, 4), seed=5)


class TestRunCatalog:
    def test_levels_and_names(self, small_runs):
        assert small_runs.levels() == (1, 2, 4)
        assert set(small_runs.names()) == {"EP", "Equake", "SPECjbb_contention"}

    def test_thread_counts_follow_protocol(self, small_runs):
        # §IV: software threads == hardware contexts at each level.
        for by_level in small_runs.runs.values():
            assert by_level[1].n_threads == 8
            assert by_level[2].n_threads == 16
            assert by_level[4].n_threads == 32

    def test_rejects_unsupported_level(self):
        with pytest.raises(ValueError):
            run_catalog(p7_system(), {"EP": all_workloads()["EP"]}, (1, 3))


class TestScatterFromRuns:
    def test_points_complete(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        assert len(result.points) == 3
        names = {p.name for p in result.points}
        assert names == set(small_runs.names())

    def test_selected_names(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1, names=["EP"])
        assert len(result.points) == 1

    def test_unknown_name_raises(self, small_runs):
        with pytest.raises(KeyError, match="not in catalog"):
            scatter_from_runs(small_runs, title="t", measure_level=4,
                              high_level=4, low_level=1, names=["nope"])

    def test_level_ordering_enforced(self, small_runs):
        with pytest.raises(ValueError):
            scatter_from_runs(small_runs, title="t", measure_level=4,
                              high_level=1, low_level=4)

    def test_known_workloads_land_on_expected_sides(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        by_name = {p.name: p for p in result.points}
        assert by_name["EP"].speedup > 1.5
        assert by_name["EP"].metric < 0.05
        assert by_name["Equake"].speedup < 0.7
        assert by_name["Equake"].metric > 0.15
        assert by_name["SPECjbb_contention"].speedup < 0.5

    def test_render_contains_summary(self, small_runs):
        result = scatter_from_runs(small_runs, title="My Fig", measure_level=4,
                                   high_level=4, low_level=1)
        text = result.render(threshold=0.07)
        assert "My Fig" in text
        assert "success" in text

    def test_success_with_fixed_threshold(self, small_runs):
        result = scatter_from_runs(small_runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        summary = result.success(threshold=0.07)
        assert summary.n_total == 3
        assert summary.success_rate == 1.0


@pytest.fixture
def broken_equake(monkeypatch):
    """Force the batch path down the salvage loop and fail one workload."""
    real_simulate_run = runner_mod.simulate_run
    specs = all_workloads()
    subset = {n: specs[n] for n in ("EP", "Equake", "SPECjbb_contention")}

    def batch_dies(run_specs):
        raise RuntimeError("injected batch failure")

    def run_or_die(spec):
        if spec.stream is subset["Equake"].stream:
            raise RuntimeError("injected per-run failure")
        return real_simulate_run(spec)

    monkeypatch.setattr(runner_mod, "simulate_many", batch_dies)
    monkeypatch.setattr(table_mod, "simulate_many_columnar", batch_dies)
    monkeypatch.setattr(runner_mod, "simulate_run", run_or_die)
    return subset


class TestPartialFailures:
    def make_runs(self, subset):
        return run_catalog(p7_system(), subset, (1, 4), seed=5,
                           use_cache=False)

    def test_failed_runs_reported_not_raised(self, broken_equake):
        runs = self.make_runs(broken_equake)
        assert set(runs.failures) == {"Equake@SMT1", "Equake@SMT4"}
        assert all("injected per-run failure" in msg
                   for msg in runs.failures.values())
        # The healthy workloads completed normally.
        assert set(runs.complete_names((1, 4))) == {"EP", "SPECjbb_contention"}

    def test_scatter_skips_incomplete_workloads(self, broken_equake):
        runs = self.make_runs(broken_equake)
        result = scatter_from_runs(runs, title="t", measure_level=4,
                                   high_level=4, low_level=1)
        assert {p.name for p in result.points} == {"EP", "SPECjbb_contention"}
        assert result.skipped == ("Equake",)
        assert "Equake" in result.render()

    def test_explicit_failed_name_is_skipped_not_keyerror(self, broken_equake):
        runs = self.make_runs(broken_equake)
        result = scatter_from_runs(runs, title="t", measure_level=4,
                                   high_level=4, low_level=1,
                                   names=["EP", "Equake"])
        assert {p.name for p in result.points} == {"EP"}
        assert result.skipped == ("Equake",)

    def test_unknown_name_still_raises(self, broken_equake):
        runs = self.make_runs(broken_equake)
        with pytest.raises(KeyError, match="not in catalog"):
            scatter_from_runs(runs, title="t", measure_level=4,
                              high_level=4, low_level=1, names=["nope"])

    def test_all_failed_raises_with_skip_list(self, broken_equake):
        runs = self.make_runs(broken_equake)
        with pytest.raises(ValueError, match="no complete workloads"):
            scatter_from_runs(runs, title="t", measure_level=4,
                              high_level=4, low_level=1, names=["Equake"])

    def test_failure_counter_increments(self, broken_equake):
        from repro.obs import configure

        tracer = configure(enabled=True)
        tracer.reset()
        try:
            self.make_runs(broken_equake)
            assert tracer.counters().get("runner.failed_runs") == 2
        finally:
            configure(enabled=False)
            tracer.reset()
