"""Tests for the placement-policy API (:mod:`repro.fleet.policy`)."""

import pytest

from repro.fleet import Policy, list_policies, make_policy
from repro.fleet.policy import (
    PlacementPolicy,
    _REGISTRY,
    register_policy,
)
from repro.util.rng import RngStream


class TestPolicyEnum:
    def test_members_equal_literals(self):
        assert Policy.SMTSM == "smtsm"
        assert Policy.LEAST_LOADED == "least_loaded"
        assert str(Policy.RANDOM) == "random"

    def test_parse_accepts_enum_and_string(self):
        assert Policy.parse("round_robin") is Policy.ROUND_ROBIN
        assert Policy.parse(Policy.SMTSM) is Policy.SMTSM

    def test_parse_typo_names_valid_options(self):
        with pytest.raises(ValueError) as exc:
            Policy.parse("smtms")
        message = str(exc.value)
        assert "smtms" in message
        for name in ("smtsm", "least_loaded", "round_robin", "random"):
            assert name in message


class TestRegistry:
    def test_builtins_listed_first(self):
        names = list_policies()
        assert names[:4] == ["smtsm", "least_loaded",
                             "round_robin", "random"]

    def test_make_policy_unknown_name(self):
        with pytest.raises(ValueError) as exc:
            make_policy("best_fit", RngStream(0, ("p",)))
        assert "best_fit" in str(exc.value)
        assert "smtsm" in str(exc.value)

    def test_register_custom_policy(self):
        class FirstFitPolicy(PlacementPolicy):
            name = "first_fit_test"

            def place(self, job, now):
                for node in self.nodes:
                    if node.down_until <= now and (
                            len(node.queue) + (node.running is not None)
                            < self.queue_depth):
                        return node.node_id
                return None

        register_policy("first_fit_test", lambda rng: FirstFitPolicy())
        try:
            assert "first_fit_test" in list_policies()
            policy = make_policy("first_fit_test", RngStream(0, ("p",)))
            assert isinstance(policy, FirstFitPolicy)
            with pytest.raises(ValueError):
                register_policy("first_fit_test",
                                lambda rng: FirstFitPolicy())
        finally:
            _REGISTRY.pop("first_fit_test", None)

    def test_cannot_shadow_builtin(self):
        with pytest.raises(ValueError):
            register_policy("smtsm", lambda rng: PlacementPolicy())
