"""End-to-end tests for the fleet scheduler (:mod:`repro.fleet`).

The reference fleets here are deliberately small (a few chips, a few
hundred jobs) so the whole module stays in tier-1 time; the full-size
policy comparison lives in ``scripts/bench_fleet.py``.
"""

import json

import pytest

from repro.fleet import FleetConfig, FleetScheduler, simulate_fleet


def run(**overrides):
    base = dict(chips=6, jobs=400, seed=11)
    base.update(overrides)
    return simulate_fleet(**base)


class TestSettlement:
    def test_every_job_accounted_for(self):
        result = run(severity=0.3, policy="least_loaded")
        assert result.settled
        assert result.jobs_submitted == (
            result.jobs_completed
            + result.rejected_admission
            + result.rejected_crashed)

    def test_payload_round_trips_json(self):
        result = run(jobs=150)
        payload = json.loads(json.dumps(result.payload()))
        assert payload["jobs_submitted"] == 150
        assert payload["policy"] == "smtsm"
        assert payload["throughput_jobs_s"] > 0


class TestDeterminism:
    def test_identical_seeds_bit_identical_payload(self):
        kwargs = dict(chips=5, jobs=250, seed=17, severity=0.3,
                      arch_mix="power7:2,nehalem:1")
        a = simulate_fleet(**kwargs)
        b = simulate_fleet(**kwargs)
        assert json.dumps(a.payload(), sort_keys=True) == \
            json.dumps(b.payload(), sort_keys=True)

    def test_seed_changes_outcome(self):
        a = run(seed=17)
        b = run(seed=18)
        assert a.payload() != b.payload()

    def test_trace_is_policy_independent(self):
        # All policies must see the same offered load for a seed: the
        # horizon (last arrival) is a pure function of the trace.
        horizons = {run(policy=p).horizon_s
                    for p in ("smtsm", "random", "least_loaded")}
        assert len(horizons) == 1


class TestPolicyRanking:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(chips=12, jobs=1200, seed=11,
                      arch_mix="power7:3,nehalem:1")
        return {policy: simulate_fleet(policy=policy, **kwargs)
                for policy in ("smtsm", "least_loaded", "random")}

    def test_smtsm_wins_on_throughput(self, results):
        assert (results["smtsm"].throughput_jobs_s
                >= results["least_loaded"].throughput_jobs_s
                >= results["random"].throughput_jobs_s)

    def test_only_smtsm_switches_levels(self, results):
        assert results["smtsm"].smt_switches > 0
        assert results["least_loaded"].smt_switches == 0
        assert results["random"].smt_switches == 0

    def test_smtsm_uses_low_levels_for_some_jobs(self, results):
        levels = results["smtsm"].level_jobs
        assert len(levels) >= 2  # not everything at the max level


class TestMixedFleet:
    def test_arch_mix_expansion(self):
        from collections import Counter
        scheduler = FleetScheduler(FleetConfig(
            chips=9, jobs=10, arch_mix="power7:2,nehalem:1"))
        assert Counter(scheduler.node_archs) == {
            "power7": 6, "nehalem": 3}

    def test_mixed_fleet_runs(self):
        result = run(chips=6, jobs=200, arch_mix="power7:1,nehalem:1")
        assert result.settled
        assert set(result.arch_counts) == {"power7", "nehalem"}

    def test_hetero_chip_expands_to_cluster_nodes(self):
        from collections import Counter
        scheduler = FleetScheduler(FleetConfig(
            chips=6, jobs=10, arch_mix="power7:1,biglittle:1"))
        assert Counter(scheduler.node_archs) == {
            "power7": 2, "biglittle.big": 2, "biglittle.little": 2}

    def test_arm_and_hetero_fleet_runs(self):
        result = run(chips=4, jobs=150, arch_mix="armsmt:1,biglittle:1")
        assert result.settled
        assert set(result.arch_counts) == {
            "armsmt", "biglittle.big", "biglittle.little"}


class TestValidation:
    def test_strategy_must_be_batchable(self):
        with pytest.raises(ValueError, match="mega-batches"):
            simulate_fleet(chips=2, jobs=10, strategy="serial")

    def test_unknown_policy_lists_options(self):
        with pytest.raises(ValueError, match="valid options"):
            simulate_fleet(chips=2, jobs=10, policy="smtms")

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FleetConfig(chips=0)
        with pytest.raises(ValueError):
            FleetConfig(severity=1.5)
        with pytest.raises(ValueError):
            FleetConfig(arrival="bursty")


class TestFaultInjection:
    def test_crashes_and_losses_at_high_severity(self):
        result = run(jobs=600, severity=0.4, crash_prob=0.02, seed=5)
        assert result.settled
        assert result.node_crashes > 0
        assert result.rejected_crashed > 0

    def test_severity_zero_is_clean(self):
        result = run(severity=0.0, crash_prob=0.0, hang_prob=0.0)
        assert result.node_crashes == 0
        assert result.node_hangs == 0
        assert result.rejected_crashed == 0
