"""Tests for the seeded synthetic arrival trace (:mod:`repro.fleet.trace`)."""

import math

import pytest

from repro.fleet.config import FleetConfig, parse_arch_mix
from repro.fleet.trace import generate_trace, mean_job_size, mix_weights
from repro.util.rng import RngStream


def make_trace(**overrides):
    config = FleetConfig(chips=4, jobs=200, **overrides)
    names = config.workload_names()
    rng = RngStream(config.seed, ("trace",))
    return config, generate_trace(config, names, arrival_rate=5.0, rng=rng)


class TestGenerateTrace:
    def test_shape_and_monotone_arrivals(self):
        config, trace = make_trace()
        assert len(trace) == config.jobs
        times = [job.t_arrival for job in trace]
        assert times == sorted(times)
        assert times[0] >= 0.0
        assert all(job.size > 0.0 for job in trace)
        names = set(config.workload_names())
        assert all(job.workload in names for job in trace)
        assert [job.job_id for job in trace] == list(range(len(trace)))

    def test_deterministic_for_seed(self):
        _, a = make_trace(seed=7)
        _, b = make_trace(seed=7)
        assert a == b
        _, c = make_trace(seed=8)
        assert a != c

    def test_poisson_rate_roughly_honored(self):
        config, trace = make_trace(arrival="poisson")
        measured = len(trace) / trace[-1].t_arrival
        assert measured == pytest.approx(5.0, rel=0.25)

    def test_uniform_gaps_bounded(self):
        _, trace = make_trace(arrival="uniform")
        gaps = [b.t_arrival - a.t_arrival
                for a, b in zip(trace, trace[1:])]
        base = 1.0 / 5.0
        assert all(0.75 * base - 1e-9 <= g <= 1.25 * base + 1e-9
                   for g in gaps)

    def test_mean_job_size_is_lognormal_mean(self):
        config = FleetConfig(job_size_sigma=0.35)
        assert mean_job_size(config) == pytest.approx(
            math.exp(0.35 ** 2 / 2.0))

    def test_zipf_mix_skews_toward_head(self):
        config = FleetConfig(mix="zipf")
        names = config.workload_names()
        weights = mix_weights(config, names)
        assert weights[names[0]] > weights[names[-1]]
        assert sum(weights.values()) == pytest.approx(1.0)


class TestParseArchMix:
    def test_weighted_spec(self):
        assert parse_arch_mix("power7:3,nehalem:1") == [
            ("power7", 3), ("nehalem", 1)]

    def test_bare_name(self):
        assert parse_arch_mix("power7") == [("power7", 1)]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_arch_mix("power7:0")
        with pytest.raises(ValueError):
            parse_arch_mix("")
