"""Serving under injected chaos: faults in, settled ledger out.

The tentpole acceptance property: a chaos-injected worker fleet (hangs,
crashes, slow jobs, corrupted responses) behind the supervision plane
still answers every request a :class:`ResilientClient` sends, the
settlement invariant (``serve.admitted == serve.settled``) holds, and
no worker process outlives the server.
"""

import asyncio
import multiprocessing
import time

import pytest

from repro.faults import ChaosConfig
from repro.serve import (
    CircuitBreaker,
    ClientRetryPolicy,
    CorruptResponse,
    ResilientClient,
    ServeConfig,
    WorkerCrashed,
    WorkerPool,
)
from repro.serve.workers import EXPIRED, validate_results

WORKLOADS = ("EP", "CG", "IS", "BT", "LU_MPI", "FT_MPI", "EP_MPI", "SP")
SESSION = {"seed": 11, "use_cache": False, "threshold": 0.07}


def run_pool(coro_fn, **pool_kwargs):
    async def main():
        kwargs = dict(session_defaults=SESSION, start_method="fork")
        kwargs.update(pool_kwargs)
        pool = WorkerPool(2, **kwargs).start()
        try:
            return await coro_fn(pool)
        finally:
            pool.close(timeout_s=5.0)

    return asyncio.run(main())


class TestChaosAtThePool:
    def test_crash_chaos_fails_retryable_and_respawns(self, tracer):
        async def body(pool):
            with pytest.raises(WorkerCrashed):
                await pool.dispatch(("ping", 0), [{}])

        run_pool(body, chaos=ChaosConfig(crash_prob=1.0, seed=3))
        assert tracer.counters()["serve.worker.restarts"] >= 1.0

    def test_corrupt_responses_detected_dispatcher_side(self, tracer):
        async def body(pool):
            key = ("ping", 0)
            results = await pool.dispatch(key, [{}])
            with pytest.raises(CorruptResponse):
                validate_results(key, results, 1)

        run_pool(body, chaos=ChaosConfig(corrupt_prob=1.0, seed=1))
        counters = tracer.counters()
        assert counters["serve.chaos.corrupt"] >= 1.0
        assert counters["serve.worker.corrupt_responses"] >= 1.0

    def test_slow_chaos_still_answers(self, tracer):
        async def body(pool):
            results = await pool.dispatch(("ping", 0), [{}])
            assert results == [{"pong": True}]

        run_pool(body, chaos=ChaosConfig(slow_prob=1.0, slow_s=0.01, seed=2))
        assert tracer.counters()["serve.chaos.slow"] >= 1.0


class TestDeadlinePropagation:
    def test_expired_positions_abandoned_not_solved(self, tracer):
        async def body(pool):
            past = time.monotonic() - 1.0
            results = await pool.dispatch(
                ("predict", "p7", 1),
                [{"workload": "EP"}, {"workload": "CG"}],
                deadlines=[past, None],
            )
            assert results[0] == EXPIRED
            assert results[1]["workload"] == "CG"
            # The stitched batch still validates dispatcher-side.
            validate_results(("predict", "p7", 1), results, 2)

        run_pool(body)
        assert tracer.counters()["serve.worker.deadline_abandoned"] == 1.0

    def test_fully_expired_batch_never_reaches_a_handler(self, tracer):
        async def body(pool):
            past = time.monotonic() - 1.0
            results = await pool.dispatch(
                ("predict", "p7", 1), [{"workload": "EP"}], deadlines=[past]
            )
            assert results == [EXPIRED]

        run_pool(body)
        assert tracer.counters()["serve.worker.deadline_abandoned"] == 1.0


class TestChaosEndToEnd:
    def test_chaos_storm_survives_with_resilient_client(
            self, tracer, make_server):
        # Every fault axis armed at once; aggressive enough that a short
        # run sees crashes and slowness, mild enough that ten client
        # attempts always find a healthy path.  restart_budget is raised
        # so a crashy run cannot quarantine the whole 2-worker fleet.
        chaos = ChaosConfig(
            hang_prob=0.03, hang_s=60.0, crash_prob=0.25,
            slow_prob=0.3, slow_s=0.01, corrupt_prob=0.2, seed=7,
        )
        config = ServeConfig(
            workers=2, max_batch=8, max_linger_ms=10.0,
            hang_timeout_s=0.5, restart_budget=100,
            hot_cache_size=0, chaos=chaos, session=SESSION,
        )
        bg = make_server(config)
        client = ResilientClient(
            bg.host, bg.port,
            policy=ClientRetryPolicy(
                max_attempts=10, base_backoff_ms=5.0, max_backoff_ms=100.0,
            ),
            breaker=CircuitBreaker(failure_threshold=100),
            timeout_s=60.0, seed=1,
        )
        try:
            for i in range(24):
                workload = WORKLOADS[i % len(WORKLOADS)]
                payload = client.predict(workload, seed=i)
                assert payload["workload"] == workload
                assert "recommended_level" in payload
        finally:
            client.close()
        bg.stop()

        counters = tracer.counters()
        # The settlement ledger survives every injected fault.
        assert counters["serve.admitted"] == counters["serve.settled"]
        # Chaos actually happened and was survived.
        assert counters["serve.worker.restarts"] >= 1.0
        assert counters.get("serve.chaos.slow", 0.0) >= 1.0
        # No worker process outlives the server.
        leftover = [
            p for p in multiprocessing.active_children()
            if p.name.startswith("repro-serve")
        ]
        assert leftover == []

    def test_chaos_ignored_when_config_is_healthy(self, tracer, make_server):
        config = ServeConfig(
            workers=2, chaos=ChaosConfig(), session=SESSION,
        )
        bg = make_server(config)
        client = ResilientClient(bg.host, bg.port)
        try:
            assert client.ping() is True
        finally:
            client.close()
        counters = tracer.counters()
        assert "serve.chaos.slow" not in counters
        assert "serve.worker.restarts" not in counters
