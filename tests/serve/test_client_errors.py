"""Regression: the client's typed error hierarchy (satellite of the
chaos-hardening PR).

The resilient layer dispatches on error *types* and the
``retry_after_ms`` hint, so the hierarchy is load-bearing API: every
wire code must map to a ServeError subclass carrying the hint, and a
single-shot ``ServeClient.request`` against an overloaded server must
raise the typed ``OverloadedError`` with a usable hint.
"""

import time

import pytest

from repro.serve import ServeClient, ServeConfig
from repro.serve.client import (
    _ERROR_TYPES,
    RETRYABLE_CLIENT_ERRORS,
    CancelledError,
    CircuitOpenError,
    DeadlineExceededError,
    InternalError,
    InvalidRequestError,
    OverloadedError,
    ServeError,
    ShuttingDownError,
)
from repro.serve.protocol import RETRYABLE_CODES


class TestErrorHierarchy:
    EXPECTED_CODES = {
        InvalidRequestError: "invalid_request",
        OverloadedError: "overloaded",
        DeadlineExceededError: "deadline_exceeded",
        ShuttingDownError: "shutting_down",
        CancelledError: "cancelled",
        InternalError: "internal",
        CircuitOpenError: "circuit_open",
    }

    def test_every_typed_error_is_a_serve_error_with_its_wire_code(self):
        for cls, code in self.EXPECTED_CODES.items():
            assert issubclass(cls, ServeError)
            assert cls.code == code
            assert cls("boom").retry_after_ms is None
            assert cls("boom", retry_after_ms=125.0).retry_after_ms == 125.0

    def test_wire_code_map_is_complete(self):
        # Every wire code a server can answer with maps to a typed class;
        # circuit_open is client-local and deliberately NOT on the wire.
        assert set(_ERROR_TYPES) == {
            "invalid_request", "overloaded", "deadline_exceeded",
            "shutting_down", "cancelled", "internal",
        }
        for code in RETRYABLE_CODES:
            assert code in _ERROR_TYPES

    def test_unknown_code_falls_back_to_the_base_class(self):
        assert _ERROR_TYPES.get("warp_core_breach", ServeError) is ServeError

    def test_retryable_set_excludes_final_errors(self):
        assert OverloadedError in RETRYABLE_CLIENT_ERRORS
        assert ShuttingDownError in RETRYABLE_CLIENT_ERRORS
        assert InternalError in RETRYABLE_CLIENT_ERRORS
        assert InvalidRequestError not in RETRYABLE_CLIENT_ERRORS
        assert DeadlineExceededError not in RETRYABLE_CLIENT_ERRORS


def _occupy_dispatcher(client: ServeClient) -> None:
    """Fill the single dispatch slot and the queue_size=1 queue.

    Same shape as the test_service helper: a slow serial sweep is
    collected (the executor blocks on it), a second sweep parks in the
    queue, and every further request must bounce with ``overloaded``.
    """
    client._send(
        "sweep", {"levels": [1, 2, 4], "strategy": "serial"}, None,
    )
    time.sleep(0.3)          # let the collector take the slow sweep
    client._send(
        "sweep", {"workloads": ["EP"], "levels": [1], "strategy": "serial"},
        None,
    )


class TestSingleShotOverloaded:
    def test_request_raises_typed_overloaded_with_retry_hint(self, make_server):
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0, brownout=False,
            session={"seed": 11, "use_cache": False},
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            _occupy_dispatcher(slow)
            with pytest.raises(OverloadedError) as exc_info:
                fast.request("predict", {"workload": "EP"})
            err = exc_info.value
            assert isinstance(err, ServeError)
            assert err.code == "overloaded"
            assert err.retry_after_ms is not None
            assert err.retry_after_ms > 0
