"""e2e worker-pool serving: sharding, coalescing, hot cache, crashes.

The acceptance property from docs/scaling.md: sharding must never cost
coalescing.  With 2 workers and 16 concurrent same-key clients the
dispatched groups stay max_batch-sized and land on single workers;
mixed-key traffic spreads across the pool; responses are bit-identical
to the direct :mod:`repro.api` answers; and the settlement invariant
(``serve.admitted == serve.settled``) survives the pool.
"""

import asyncio
import threading
import time

import pytest

from repro import api
from repro.obs import summarize_tracer, render_summary
from repro.serve import (
    BackgroundServer,
    HotKeyCache,
    ServeClient,
    ServeConfig,
    WorkerCrashed,
    WorkerPool,
)

WORKLOADS = ("EP", "CG", "IS", "BT", "LU_MPI", "FT_MPI", "EP_MPI", "SP")
SESSION = {"seed": 11, "use_cache": False}


def pooled_config(**overrides):
    kwargs = dict(
        workers=2,
        max_batch=8,
        max_linger_ms=200.0,
        session=SESSION,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def drive_concurrent(host, port, calls):
    """Run one client thread per call; returns results in call order."""
    results = [None] * len(calls)
    errors = []
    barrier = threading.Barrier(len(calls))

    def worker(i, fn):
        try:
            with ServeClient(host, port, timeout_s=120.0) as client:
                barrier.wait()
                results[i] = fn(client)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i, fn))
        for i, fn in enumerate(calls)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def worker_counters(tracer, field_name):
    out = {}
    for name, value in tracer.counters().items():
        prefix = "serve.worker.w"
        if name.startswith(prefix) and name.endswith("." + field_name):
            index_s = name[len(prefix):].split(".", 1)[0]
            if index_s.isdigit():
                out[int(index_s)] = value
    return out


class TestCoalescingSurvivesSharding:
    def test_same_key_clients_coalesce_on_single_workers(self, tracer, make_server):
        # 16 same-batch-key clients (same arch+chips, distinct workloads
        # so the hot-key cache cannot answer any of them) against 2
        # workers: groups stay whole.
        bg = make_server(pooled_config())
        calls = [
            (lambda w: (lambda c: c.predict(w)))(WORKLOADS[i % len(WORKLOADS)])
            for i in range(16)
        ]
        drive_concurrent(bg.host, bg.port, calls)

        counters = tracer.counters()
        batches = counters["serve.batches"]
        batched = counters["serve.batched_requests"]
        assert batched == 16.0
        # Coalescing preserved: mean dispatched batch size >= 4.
        assert batched / batches >= 4.0, counters

        per_worker_requests = worker_counters(tracer, "requests")
        per_worker_batches = worker_counters(tracer, "batches")
        assert sum(per_worker_requests.values()) == 16.0
        assert (sum(per_worker_batches.values())
                == counters["serve.worker.dispatched_batches"] == batches)
        # Batches are never split across workers, so some worker holds
        # at least one full max_batch-sized group of this key.
        assert max(per_worker_requests.values()) >= 8.0, per_worker_requests

    def test_mixed_key_traffic_distributes_across_workers(self, tracer, make_server):
        # Two distinct batch keys (p7 vs nehalem) are pinned to two
        # distinct workers by first-sight round-robin.
        bg = make_server(pooled_config())
        calls = []
        for i in range(8):
            arch = "p7" if i % 2 == 0 else "nehalem"
            workload = WORKLOADS[i % len(WORKLOADS)]
            calls.append(
                (lambda w, a: (lambda c: c.predict(w, arch=a)))(workload, arch)
            )
        drive_concurrent(bg.host, bg.port, calls)

        per_worker_batches = worker_counters(tracer, "batches")
        busy = [i for i, v in per_worker_batches.items() if v > 0]
        assert len(busy) == 2, per_worker_batches

    def test_pooled_results_match_direct_api(self, tracer, make_server):
        bg = make_server(pooled_config())
        served = drive_concurrent(bg.host, bg.port, [
            (lambda w: (lambda c: c.predict(w)))(w) for w in WORKLOADS[:4]
        ])
        session = api.get_session("p7", **SESSION)
        for workload, payload in zip(WORKLOADS[:4], served):
            direct = session.predict(workload).payload()
            assert payload == direct

    def test_drain_settles_every_admitted_request(self, tracer, make_server):
        bg = make_server(pooled_config())
        drive_concurrent(bg.host, bg.port, [
            (lambda w: (lambda c: c.predict(w)))(w) for w in WORKLOADS[:6]
        ])
        bg.stop()
        counters = tracer.counters()
        assert counters["serve.admitted"] == counters["serve.settled"]


class TestHotKeyCacheEndToEnd:
    def test_repeat_predict_served_from_hot_cache(self, tracer, make_server):
        bg = make_server(pooled_config())
        with ServeClient(bg.host, bg.port, timeout_s=120.0) as client:
            first = client.predict("EP")
            admitted_after_first = tracer.counters()["serve.admitted"]
            second = client.predict("EP")
        assert second == first
        counters = tracer.counters()
        assert counters["serve.hotkeys.hits"] >= 1.0
        # The hit is answered before admission: no new admitted/settled.
        assert counters["serve.admitted"] == admitted_after_first

    def test_hot_cache_unit_lru_eviction(self, tracer):
        cache = HotKeyCache(max_entries=2)
        cache.put("predict", {"workload": "EP"}, {"v": 1})
        cache.put("predict", {"workload": "CG"}, {"v": 2})
        assert cache.get("predict", {"workload": "EP"}) == {"v": 1}
        cache.put("predict", {"workload": "IS"}, {"v": 3})   # evicts CG (LRU)
        assert cache.get("predict", {"workload": "CG"}) is None
        assert cache.get("predict", {"workload": "EP"}) == {"v": 1}
        assert len(cache) == 2
        assert tracer.counters()["serve.hotkeys.evictions"] == 1.0
        # Non-deterministic / uncacheable ops never enter the cache.
        assert HotKeyCache.cache_key("ping", {}) is None
        assert HotKeyCache.cache_key("sweep", {"arch": "p7"}) is None


class TestWorkerPoolDirect:
    def run_pool(self, coro_fn, **pool_kwargs):
        async def main():
            kwargs = dict(session_defaults=SESSION, start_method="fork")
            kwargs.update(pool_kwargs)
            pool = WorkerPool(2, **kwargs).start()
            try:
                return await coro_fn(pool)
            finally:
                pool.close()

        return asyncio.run(main())

    def test_dispatch_roundtrip_and_accounting(self, tracer):
        async def body(pool):
            results = await pool.dispatch(("ping", 0), [{}])
            assert results == [{"pong": True}]
            assert pool.depths() == [0, 0]

        self.run_pool(body)
        counters = tracer.counters()
        assert counters["serve.worker.dispatched_batches"] == 1.0
        assert counters["serve.worker.dispatched_requests"] == 1.0

    def test_crashed_worker_fails_job_and_respawns(self, tracer, monkeypatch):
        # Patch the dispatch routine *before* the pool forks so the
        # child inherits a version that hangs on the sentinel workload —
        # the kill then lands mid-job deterministically.
        import repro.serve.workers as workers_mod

        real_dispatch = workers_mod.dispatch_batch

        def hanging_dispatch(key, payloads, defaults):
            if payloads and payloads[0].get("workload") == "__hang__":
                time.sleep(600)
            return real_dispatch(key, payloads, defaults)

        monkeypatch.setattr(workers_mod, "dispatch_batch", hanging_dispatch)

        async def body(pool):
            key = ("predict", "p7", 1)
            worker = pool.route(key)
            job = asyncio.get_running_loop().create_task(
                pool.dispatch(key, [{"workload": "__hang__"}])
            )
            await asyncio.sleep(0.05)      # let the job reach the worker
            worker.process.kill()
            with pytest.raises(WorkerCrashed):
                await job
            # The replacement comes up and serves the same key.
            deadline = asyncio.get_running_loop().time() + 30.0
            while asyncio.get_running_loop().time() < deadline:
                try:
                    results = await pool.dispatch(key, [{"workload": "EP"}])
                    break
                except WorkerCrashed:
                    await asyncio.sleep(0.05)
            assert results[0]["workload"] == "EP"
            assert pool.depths() == [0, 0]

        self.run_pool(body)
        assert tracer.counters()["serve.worker.restarts"] >= 1.0

    def test_sticky_routing_and_spill(self, tracer):
        async def body(pool):
            key = ("predict", "p7", 1)
            preferred = pool.route(key)
            assert pool.route(key) is preferred     # sticky while idle
            # Simulate the preferred worker being mid-dispatch.
            preferred.inflight_jobs += 1
            preferred.inflight_requests += 8
            spilled = pool.route(key)
            assert spilled is not preferred
            preferred.inflight_jobs -= 1
            preferred.inflight_requests -= 8

        self.run_pool(body)
        assert tracer.counters()["serve.worker.spills"] == 1.0

    def test_overloaded_sheds_on_routed_worker_depth(self, tracer):
        async def body(pool):
            key = ("predict", "p7", 1)
            worker = pool.route(key)
            assert not pool.overloaded(key)
            worker.inflight_requests = pool.max_inflight_per_worker
            assert pool.overloaded(key)
            assert pool.load(key) == pool.max_inflight_per_worker
            worker.inflight_requests = 0

        self.run_pool(body, max_inflight_per_worker=4)


class TestServingStats:
    def test_repro_stats_summarizes_worker_and_hotkey_counters(self, tracer, make_server):
        bg = make_server(pooled_config())
        with ServeClient(bg.host, bg.port, timeout_s=120.0) as client:
            client.predict("EP")
            client.predict("EP")     # hot-cache hit
        bg.stop()
        summary = summarize_tracer(tracer)
        rows = summary.worker_stats()
        assert rows and sum(r["requests"] for r in rows) >= 1.0
        assert summary.hot_key_hit_rate() == pytest.approx(0.5)
        report = render_summary(summary)
        assert "serving workers" in report
        assert "hot-key cache" in report
        assert "mean batch" in report
