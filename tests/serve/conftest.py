"""Shared serving-test fixtures.

Every server a test starts goes through :func:`make_server`, which
enforces the one rule that keeps parallel CI runs from colliding: test
servers bind port 0 (an ephemeral port chosen by the kernel) and the
*bound* address is plumbed back through the fixture — never a
hard-coded port.
"""

import pytest

from repro.obs import configure
from repro.serve import BackgroundServer, ServeClient, ServeConfig


@pytest.fixture
def tracer():
    tracer = configure(enabled=True)
    tracer.reset()
    yield tracer
    configure(enabled=False)
    tracer.reset()


@pytest.fixture
def make_server():
    """Factory: start a :class:`BackgroundServer` on an ephemeral port.

    Returns the started server (its ``host``/``port`` are the bound
    address).  Every server is stopped at teardown even if the test
    already stopped it (stop is idempotent).
    """
    started = []

    def factory(config: ServeConfig = None) -> BackgroundServer:
        config = config or ServeConfig()
        assert config.port == 0, (
            "test servers must bind port 0 (ephemeral) so parallel CI "
            f"runs cannot collide; got a fixed port {config.port}"
        )
        bg = BackgroundServer(config).start()
        assert bg.port not in (None, 0)
        started.append(bg)
        return bg

    yield factory
    for bg in started:
        bg.stop()


@pytest.fixture(scope="module")
def server():
    # A generous linger so concurrent clients reliably coalesce.
    config = ServeConfig(max_linger_ms=100.0, max_batch=32,
                         session={"seed": 11})
    with BackgroundServer(config) as bg:
        yield bg


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c
