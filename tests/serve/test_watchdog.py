"""Watchdog supervision: hang detection, quarantine, close hygiene.

The liveness contract from docs/robustness.md: a worker holding
in-flight jobs with no progress for ``hang_timeout_s`` is declared
hung — its jobs fail with retryable :class:`WorkerHung`, the process
is killed, and the ordinary crash path respawns it.  Idle silence is
never a hang.  Repeat offenders blow the restart budget and are
quarantined (routed around) for an exponentially growing sentence.
"""

import asyncio
import threading
import time

import pytest

from repro.serve import WorkerHung, WorkerPool, WorkerWatchdog
from repro.serve.workers import WorkerCrashed

SESSION = {"seed": 11, "use_cache": False}


def run_pool(coro_fn, **pool_kwargs):
    async def main():
        kwargs = dict(session_defaults=SESSION, start_method="fork")
        kwargs.update(pool_kwargs)
        pool = WorkerPool(2, **kwargs).start()
        try:
            return await coro_fn(pool)
        finally:
            pool.close(timeout_s=5.0)

    return asyncio.run(main())


def patch_hanging_dispatch(monkeypatch):
    """Make the ``__hang__`` sentinel workload sleep forever in workers.

    Patched *before* the pool forks so the children inherit it — the
    deterministic stand-in for a deadlocked solver.
    """
    import repro.serve.workers as workers_mod

    real_dispatch = workers_mod.dispatch_batch

    def hanging_dispatch(key, payloads, defaults):
        if payloads and payloads[0].get("workload") == "__hang__":
            time.sleep(600)
        return real_dispatch(key, payloads, defaults)

    monkeypatch.setattr(workers_mod, "dispatch_batch", hanging_dispatch)


class TestHangDetection:
    def test_hung_worker_failed_killed_and_respawned(self, tracer, monkeypatch):
        patch_hanging_dispatch(monkeypatch)

        async def body(pool):
            watchdog = WorkerWatchdog(
                pool, hang_timeout_s=0.2, poll_interval_s=0.05
            ).start()
            try:
                key = ("predict", "p7", 1)
                job = asyncio.get_running_loop().create_task(
                    pool.dispatch(key, [{"workload": "__hang__"}])
                )
                with pytest.raises(WorkerHung):
                    await asyncio.wait_for(job, timeout=10.0)
                # The respawned worker serves the same sticky key again.
                deadline = asyncio.get_running_loop().time() + 30.0
                results = None
                while asyncio.get_running_loop().time() < deadline:
                    try:
                        results = await pool.dispatch(key, [{"workload": "EP"}])
                        break
                    except (WorkerCrashed, WorkerHung):
                        await asyncio.sleep(0.05)
                assert results is not None
                assert results[0]["workload"] == "EP"
                assert pool.depths() == [0, 0]
            finally:
                await watchdog.stop()

        run_pool(body)
        counters = tracer.counters()
        assert counters["serve.watchdog.hangs"] >= 1.0
        assert counters["serve.watchdog.kills"] >= 1.0
        assert counters["serve.worker.restarts"] >= 1.0

    def test_sweep_is_deterministic_and_idle_is_never_hung(
            self, tracer, monkeypatch):
        patch_hanging_dispatch(monkeypatch)

        async def body(pool):
            # Not started: sweeps are driven by hand with injected clocks.
            watchdog = WorkerWatchdog(pool, hang_timeout_s=5.0)
            # Idle workers are never hung, however stale they look.
            assert all(w.inflight_jobs == 0 for w in pool._workers)
            assert watchdog.sweep(now=time.monotonic() + 3600.0) == 0

            job = asyncio.get_running_loop().create_task(
                pool.dispatch(("predict", "p7", 1), [{"workload": "__hang__"}])
            )
            await asyncio.sleep(0.1)        # the job reaches the worker
            # Within the silence budget: healthy.
            assert watchdog.sweep(now=time.monotonic()) == 0
            # Past it: declared hung; the waiting job fails retryable.
            assert watchdog.sweep(now=time.monotonic() + 10.0) == 1
            with pytest.raises(WorkerHung):
                await asyncio.wait_for(job, timeout=10.0)

        run_pool(body)
        assert tracer.counters()["serve.watchdog.hangs"] == 1.0

    def test_watchdog_validates_timeout(self):
        with pytest.raises(ValueError):
            WorkerWatchdog(object(), hang_timeout_s=0.0)


class TestQuarantine:
    def test_restart_budget_quarantines_repeat_offenders(self, tracer):
        async def body(pool):
            offender = pool._workers[0]
            sibling = pool._workers[1]
            for _ in range(pool.restart_budget):
                pool._note_restart(offender)
            assert not offender.quarantined()       # within budget
            pool._note_restart(offender)            # one over
            assert offender.quarantined()
            assert pool.quarantined_count() == 1
            assert not pool.all_quarantined()
            first_sentence = offender.quarantined_until - time.monotonic()
            pool._note_restart(offender)            # repeat offense
            second_sentence = offender.quarantined_until - time.monotonic()
            # Exponential re-admit: the sentence grows with each offense.
            assert second_sentence > first_sentence
            # Routing avoids the quarantined worker entirely...
            for i in range(6):
                assert pool.route(("predict", "p7", i)) is sibling
                assert pool.route(("ping", i)) is sibling
            # ...and admission reads the healthy sibling's depth.
            assert pool.load(("predict", "p7", 0)) == sibling.inflight_requests

        run_pool(body, quarantine_base_s=30.0)
        assert tracer.counters()["serve.watchdog.quarantines"] == 2.0

    def test_all_quarantined_still_routes_somewhere(self, tracer):
        async def body(pool):
            for worker in pool._workers:
                for _ in range(pool.restart_budget + 1):
                    pool._note_restart(worker)
            assert pool.all_quarantined()
            # Serving degraded beats serving nothing: routing falls back
            # to the full fleet and dispatch still answers.
            assert pool.route(("ping", 0)) in pool._workers
            results = await pool.dispatch(("ping", 1), [{}])
            assert results == [{"pong": True}]
            # Sentences lapse: quarantine is a routing state, not death.
            for worker in pool._workers:
                worker.quarantined_until = 0.0
            assert pool.quarantined_count() == 0
            assert not pool.all_quarantined()

        run_pool(body, quarantine_base_s=30.0)

    def test_restart_budget_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(2, restart_budget=0)


class TestCloseHygiene:
    def test_close_is_idempotent_and_reaps_everything(self):
        async def body(pool):
            await pool.dispatch(("ping", 0), [{}])
            pool.close(timeout_s=5.0)
            pool.close(timeout_s=5.0)       # second close: silent no-op
            for worker in pool._workers:
                assert not worker.process.is_alive()
                assert not worker.reader.is_alive()
            with pytest.raises(WorkerCrashed):
                await pool.dispatch(("ping", 1), [{}])

        run_pool(body)      # run_pool's own close is the third no-op

    def test_close_fails_inflight_jobs_instead_of_stranding_them(
            self, monkeypatch):
        patch_hanging_dispatch(monkeypatch)

        async def body(pool):
            job = asyncio.get_running_loop().create_task(
                pool.dispatch(("predict", "p7", 1), [{"workload": "__hang__"}])
            )
            await asyncio.sleep(0.1)        # the job reaches the worker
            pool.close(timeout_s=0.5)       # worker is asleep: terminated
            with pytest.raises(WorkerCrashed):
                await asyncio.wait_for(job, timeout=10.0)

        run_pool(body)

    def test_close_counts_readers_that_outlive_it(self, tracer):
        async def body(pool):
            await pool.dispatch(("ping", 0), [{}])
            # Swap in a reader stand-in that ignores close — the
            # pathological stuck-pipe case the counter exists for.
            straggler = threading.Thread(
                target=time.sleep, args=(8.0,), daemon=True
            )
            straggler.start()
            pool._workers[0].reader = straggler
            pool.close(timeout_s=5.0)

        run_pool(body)
        assert tracer.counters()["serve.worker.close_leaks"] == 1.0
