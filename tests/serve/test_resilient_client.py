"""The resilient client: retry schedule, circuit breaker, hedging.

Unit tests drive the retry loop against a stubbed ``_attempt`` (no
network), so every branch — retryable error, transport error, final
client error, open breaker, budget exhaustion — is deterministic; one
e2e test proves the resilient surface answers identically to the naive
client against a live server.
"""

import random
import threading
import time

import pytest

from repro.serve import (
    CircuitBreaker,
    CircuitOpenError,
    ClientRetryPolicy,
    ResilientClient,
    ServeClient,
)
from repro.serve.client import (
    InternalError,
    InvalidRequestError,
    OverloadedError,
)


class TestClientRetryPolicy:
    def test_exponential_with_cap_and_jitter_bounds(self):
        policy = ClientRetryPolicy(
            base_backoff_ms=10.0, backoff_mult=2.0,
            max_backoff_ms=40.0, jitter=0.5,
        )
        rng = random.Random(0)
        for attempt, base in ((1, 10.0), (2, 20.0), (3, 40.0), (4, 40.0)):
            for _ in range(20):
                delay = policy.delay_ms(attempt, None, rng)
                assert base <= delay <= base * 1.5

    def test_server_hint_floors_the_delay(self):
        policy = ClientRetryPolicy(base_backoff_ms=10.0, jitter=0.0)
        rng = random.Random(0)
        # A large hint wins over the exponent...
        assert policy.delay_ms(1, 500.0, rng) == 500.0
        # ...but a tiny hint never shrinks the backoff.
        assert policy.delay_ms(1, 1.0, rng) == 10.0

    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(base_backoff_ms=-1.0),
        dict(backoff_mult=0.5),
        dict(jitter=2.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ClientRetryPolicy(**bad)


class TestCircuitBreaker:
    def test_opens_at_threshold_then_probe_recovers(self, tracer):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.05)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.allow()              # one failure: still closed
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_ms() > 0
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.allow()              # the single probe
        assert not breaker.allow()          # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert tracer.counters()["client.breaker_opens"] == 1.0

    def test_failed_probe_reopens_for_a_full_timeout(self, tracer):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow()              # the probe goes out...
        breaker.record_failure()            # ...and fails
        assert breaker.state == "open"
        assert not breaker.allow()
        assert tracer.counters()["client.breaker_opens"] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)


def stub_client(script, **kwargs):
    """A ResilientClient whose attempts replay ``script`` (no sockets).

    ``script`` is a list of outcomes, one per attempt (the last repeats):
    an Exception instance is raised, anything else returned.
    """
    client = ResilientClient("127.0.0.1", 1, **kwargs)
    calls = []

    def fake_attempt(op, params, deadline_ms):
        calls.append(op)
        outcome = script[min(len(calls), len(script)) - 1]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._attempt = fake_attempt
    return client, calls


class TestRequestLoop:
    def test_retries_then_succeeds(self, tracer):
        client, calls = stub_client(
            [
                OverloadedError("busy", retry_after_ms=1.0),
                OverloadedError("busy", retry_after_ms=1.0),
                {"pong": True},
            ],
            policy=ClientRetryPolicy(
                max_attempts=5, base_backoff_ms=1.0, max_backoff_ms=2.0,
            ),
        )
        assert client.request("ping") == {"pong": True}
        assert len(calls) == 3
        assert tracer.counters()["client.retries"] == 2.0
        client.close()

    def test_transport_errors_reconnect_and_retry(self, tracer):
        client, calls = stub_client(
            [ConnectionError("server closed the connection"), {"pong": True}],
            policy=ClientRetryPolicy(max_attempts=3, base_backoff_ms=0.0),
        )
        assert client.request("ping") == {"pong": True}
        assert len(calls) == 2
        client.close()

    def test_gives_up_after_max_attempts(self, tracer):
        client, calls = stub_client(
            [InternalError("boom")],
            policy=ClientRetryPolicy(max_attempts=3, base_backoff_ms=0.0),
            breaker=CircuitBreaker(failure_threshold=10),
        )
        with pytest.raises(InternalError):
            client.request("ping")
        assert len(calls) == 3
        assert tracer.counters()["client.giveups"] == 1.0
        client.close()

    def test_client_errors_are_final(self, tracer):
        client, calls = stub_client([InvalidRequestError("bad params")])
        with pytest.raises(InvalidRequestError):
            client.request("predict", {})
        assert len(calls) == 1              # no retry for a doomed request
        assert "client.retries" not in tracer.counters()
        client.close()

    def test_open_breaker_refuses_without_touching_the_network(self, tracer):
        client, calls = stub_client(
            [InternalError("boom")],
            policy=ClientRetryPolicy(max_attempts=5, base_backoff_ms=0.0),
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0),
        )
        with pytest.raises(CircuitOpenError) as exc_info:
            client.request("ping")
        assert exc_info.value.retry_after_ms > 0
        assert len(calls) == 1              # the breaker stopped attempt #2
        client.close()

    def test_total_budget_bounds_the_whole_request(self, tracer):
        client, calls = stub_client(
            [OverloadedError("busy", retry_after_ms=10_000.0)],
            policy=ClientRetryPolicy(max_attempts=5, total_budget_ms=50.0),
        )
        with pytest.raises(OverloadedError):
            client.request("ping")
        assert len(calls) == 1              # the hinted delay blows the budget
        client.close()

    def test_hedge_after_ms_validated(self):
        with pytest.raises(ValueError):
            ResilientClient("127.0.0.1", 1, hedge_after_ms=-1.0)


class TestHedging:
    def test_slow_primary_is_hedged_and_first_response_wins(self, tracer):
        client = ResilientClient("127.0.0.1", 1, hedge_after_ms=10.0)
        lock = threading.Lock()
        order = []

        def fake_attempt(op, params, deadline_ms):
            with lock:
                order.append(op)
                n = len(order)
            if n == 1:
                time.sleep(0.3)
                return "slow"
            return "fast"

        client._attempt = fake_attempt
        assert client.request("predict", {}) == "fast"
        counters = tracer.counters()
        assert counters["client.hedges"] == 1.0
        assert counters["client.hedge_wins"] == 1.0
        client.close()

    def test_fast_primary_never_hedges(self, tracer):
        client = ResilientClient("127.0.0.1", 1, hedge_after_ms=200.0)
        client._attempt = lambda op, params, deadline_ms: "primary"
        assert client.request("ping") == "primary"
        assert "client.hedges" not in tracer.counters()
        client.close()


class TestEndToEnd:
    def test_same_answers_as_the_naive_client(self, server):
        with ResilientClient(server.host, server.port) as resilient, \
                ServeClient(server.host, server.port) as naive:
            assert resilient.ping() is True
            assert resilient.predict("EP") == naive.predict("EP")
            summary = resilient.sweep(workloads=["EP"], levels=[1, 4])
            assert summary["levels"] == [1, 4]
