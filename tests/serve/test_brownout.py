"""Brownout degradation: answer worse instead of refusing.

Gate semantics (hold / cool / once-per-episode activation) are unit
tested with injected clocks; the degraded lane's cap and flagging are
unit tested directly; and one e2e test proves a sustained-overload
server answers ``predict`` with a ``degraded: true`` surrogate payload
where a brownout-disabled server sheds with ``overloaded``.
"""

import asyncio
import time

import pytest

from repro.serve import (
    BrownoutGate,
    DegradedResponder,
    OverloadedError,
    ServeClient,
    ServeConfig,
)

SESSION = {"seed": 11, "use_cache": False, "threshold": 0.07}


class TestBrownoutGate:
    def test_momentary_spike_never_engages(self):
        gate = BrownoutGate(hold_s=5.0, cool_s=1.0)
        assert gate.signal(now=100.0) is False
        assert not gate.active
        # A second gust after a quiet spell starts a fresh episode.
        assert gate.signal(now=110.0) is False
        assert not gate.active

    def test_sustained_overload_engages_once_per_episode(self, tracer):
        gate = BrownoutGate(hold_s=2.0, cool_s=1.0)
        assert gate.signal(now=100.0) is False
        assert gate.signal(now=101.0) is False
        assert gate.signal(now=102.0) is True      # held for hold_s
        assert gate.signal(now=102.5) is True
        assert tracer.counters()["serve.brownout.activations"] == 1.0
        # Quiet past cool_s disengages; re-engaging is a new episode.
        assert gate.signal(now=110.0) is False
        for t in (110.5, 111.0, 111.5):
            gate.signal(now=t)
        assert gate.signal(now=112.0) is True
        assert tracer.counters()["serve.brownout.activations"] == 2.0

    def test_zero_hold_engages_on_first_signal(self):
        gate = BrownoutGate(hold_s=0.0)
        assert gate.signal(now=1.0) is True
        assert gate.active

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutGate(hold_s=-1.0)


class TestDegradedResponder:
    def test_only_predict_is_degradable(self):
        responder = DegradedResponder(SESSION)
        try:
            assert responder.eligible("predict")
            assert not responder.eligible("sweep")
            assert not responder.eligible("score")
            assert not responder.eligible("ping")
        finally:
            responder.close()

    def test_inflight_cap_bounds_the_lane(self):
        responder = DegradedResponder(SESSION, max_inflight=2)
        try:
            assert responder.try_reserve()
            assert responder.try_reserve()
            assert not responder.try_reserve()      # saturated
        finally:
            responder._inflight = 0
            responder.close()
        with pytest.raises(ValueError):
            DegradedResponder(SESSION, max_inflight=0)

    def test_degraded_answer_is_flagged_and_releases_its_slot(self):
        responder = DegradedResponder(SESSION)
        try:
            assert responder.try_reserve()
            result = asyncio.run(responder.respond({"workload": "EP"}))
            assert result["degraded"] is True
            assert result["workload"] == "EP"
            assert "recommended_level" in result
            assert responder._inflight == 0         # slot released
        finally:
            responder.close()

    def test_handler_errors_propagate_and_release(self):
        from repro.serve.handlers import HandlerError

        responder = DegradedResponder(SESSION)
        try:
            assert responder.try_reserve()
            with pytest.raises(HandlerError):
                asyncio.run(responder.respond({"workload": ""}))
            assert responder._inflight == 0
        finally:
            responder.close()


def _occupy_dispatcher(client: ServeClient) -> None:
    """Fill the single dispatch slot and the queue_size=1 queue."""
    client._send(
        "sweep", {"levels": [1, 2, 4], "strategy": "serial"}, None,
    )
    time.sleep(0.3)          # let the collector take the slow sweep
    client._send(
        "sweep", {"workloads": ["EP"], "levels": [1], "strategy": "serial"},
        None,
    )


class TestBrownoutEndToEnd:
    def test_sustained_overload_serves_degraded_answers(
            self, tracer, make_server):
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0,
            brownout_hold_s=0.0,            # engage on the first shed
            session=SESSION,
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            _occupy_dispatcher(slow)
            result = fast.predict("EP")
        assert result.get("degraded") is True
        assert result["workload"] == "EP"
        bg.stop()
        counters = tracer.counters()
        assert counters["serve.brownout.activations"] >= 1.0
        assert counters["serve.brownout.degraded"] >= 1.0
        # Degraded answers bypass admission like hot-cache hits: the
        # settlement ledger never sees them (and still balances).
        assert counters["serve.admitted"] == counters["serve.settled"]

    def test_ineligible_ops_still_shed_during_brownout(
            self, tracer, make_server):
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0,
            brownout_hold_s=0.0,
            session=SESSION,
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            _occupy_dispatcher(slow)
            with pytest.raises(OverloadedError):
                fast.sweep(workloads=["EP"], levels=[1])

    def test_brownout_disabled_sheds_with_429(self, make_server):
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0, brownout=False,
            session={"seed": 11, "use_cache": False},
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            _occupy_dispatcher(slow)
            with pytest.raises(OverloadedError) as exc_info:
                fast.predict("EP")
            assert exc_info.value.retry_after_ms > 0
