"""End-to-end tests of the prediction service.

The server runs in-process (:class:`BackgroundServer` on a daemon
thread); clients are real blocking TCP clients.  The suite covers the
acceptance criteria of the serving layer: concurrent responses match
direct :mod:`repro.api` answers, concurrent requests are actually
coalesced (mean batch size > 1, proven via telemetry counters),
a full admission queue rejects with backpressure, expired deadlines
fail instead of serving late, and shutdown drains admitted work.
"""

import threading

import pytest

import repro.api as api
from repro.obs import configure
from repro.serve import (
    BackgroundServer,
    DeadlineExceededError,
    OverloadedError,
    ServeClient,
    ServeConfig,
    ServeError,
)

WORKLOADS = ("EP", "CG", "SSCA2", "Swim", "Dedup", "Equake", "Stream", "LU")


@pytest.fixture
def tracer():
    tracer = configure(enabled=True)
    tracer.reset()
    yield tracer
    configure(enabled=False)
    tracer.reset()


@pytest.fixture(scope="module")
def server():
    # A generous linger so concurrent clients reliably coalesce.
    config = ServeConfig(max_linger_ms=100.0, max_batch=32,
                         session={"seed": 11})
    with BackgroundServer(config) as bg:
        yield bg


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


class TestBasics:
    def test_ping(self, client):
        assert client.ping() is True

    def test_predict_matches_direct_api(self, client):
        served = client.predict("EP")
        direct = api.predict("EP", "p7").payload()
        assert served["workload"] == direct["workload"]
        assert served["recommended_level"] == direct["recommended_level"]
        assert served["smtsm"] == pytest.approx(direct["smtsm"], rel=1e-9)
        assert served["threshold"] == pytest.approx(direct["threshold"], rel=1e-9)

    def test_sweep(self, client):
        summary = client.sweep(workloads=["EP", "CG"], levels=[1, 4])
        assert set(summary["workloads"]) == {"EP", "CG"}
        assert summary["levels"] == [1, 4]

    def test_score_counters(self, client):
        events = {"CYCLES": 1e9, "INSTRUCTIONS": 6e8, "DISP_HELD_RES": 2e8,
                  "LD_CMPL": 2.2e8, "ST_CMPL": 1.1e8, "BR_CMPL": 9e7,
                  "FX_CMPL": 1.5e8, "VS_CMPL": 3e7}
        served = client.score_counters(
            events, smt_level=2, wall_time_s=1.0,
            avg_thread_cpu_s=0.9, n_software_threads=8)
        direct = api.score_counters(
            events, "p7", smt_level=2, wall_time_s=1.0,
            avg_thread_cpu_s=0.9, n_software_threads=8)
        assert served["smtsm"] == pytest.approx(direct.value, rel=1e-12)

    def test_invalid_workload_is_client_error(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.predict("doom")
        assert exc_info.value.code == "invalid_request"

    def test_unknown_op_is_rejected(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.request("explode", {})
        assert exc_info.value.code == "invalid_request"


class TestCoalescing:
    def test_concurrent_clients_coalesce_and_match_direct(self, server, tracer):
        """N concurrent clients; answers correct; requests batched."""
        results = {}
        errors = []
        barrier = threading.Barrier(len(WORKLOADS))

        def worker(name):
            try:
                with ServeClient(server.host, server.port) as c:
                    barrier.wait(timeout=10)
                    results[name] = c.predict(name)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in WORKLOADS]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert set(results) == set(WORKLOADS)

        for name in WORKLOADS:
            direct = api.predict(name, "p7").payload()
            assert results[name]["recommended_level"] == \
                direct["recommended_level"], name
            assert results[name]["smtsm"] == \
                pytest.approx(direct["smtsm"], rel=1e-9), name

        counters = tracer.counters()
        batches = counters.get("serve.batches", 0)
        batched_requests = counters.get("serve.batched_requests", 0)
        assert batches >= 1
        mean_batch_size = batched_requests / batches
        assert mean_batch_size > 1.0, (
            f"requests were not coalesced: {batched_requests} requests "
            f"in {batches} batches"
        )


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, tracer):
        # queue_size=1 and a slow in-flight sweep: while the worker is
        # busy, the queue holds one request and the rest must bounce.
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0,
            session={"seed": 11, "use_cache": False},
        )
        with BackgroundServer(config) as bg:
            with ServeClient(bg.host, bg.port) as slow, \
                    ServeClient(bg.host, bg.port) as fast:
                # Occupy the single dispatch slot with a serial sweep.
                slow_id = slow._send(
                    "sweep",
                    {"workloads": list(WORKLOADS), "levels": [1, 2, 4],
                     "strategy": "serial"},
                    None,
                )
                # Pipeline predictions without reading responses; with
                # the dispatcher busy, at most one fits in the queue.
                ids = [fast._send("predict", {"workload": "EP"}, None)
                       for _ in range(8)]
                responses = [fast._recv(i) for i in ids]
                rejected = [r for r in responses if not r.get("ok")]
                assert rejected, "no request was rejected under overload"
                for r in rejected:
                    assert r["error"]["code"] == "overloaded"
                    assert r["error"]["retry_after_ms"] > 0
                # The occupying sweep still completes correctly.
                sweep_response = slow._recv(slow_id)
                assert sweep_response["ok"]
        assert tracer.counters().get("serve.rejections", 0) >= 1

    def test_client_raises_typed_overloaded_error(self):
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0,
            session={"seed": 11, "use_cache": False},
        )
        with BackgroundServer(config) as bg:
            with ServeClient(bg.host, bg.port) as slow, \
                    ServeClient(bg.host, bg.port) as fast:
                slow._send(
                    "sweep",
                    {"workloads": list(WORKLOADS), "levels": [1, 2, 4],
                     "strategy": "serial"},
                    None,
                )
                with pytest.raises(OverloadedError) as exc_info:
                    for _ in range(8):
                        fast.predict("EP")
                assert exc_info.value.retry_after_ms > 0


class TestDeadlines:
    def test_expired_deadline_fails_instead_of_serving_late(self):
        config = ServeConfig(
            max_linger_ms=0.0, session={"seed": 11, "use_cache": False},
        )
        with BackgroundServer(config) as bg:
            with ServeClient(bg.host, bg.port) as slow, \
                    ServeClient(bg.host, bg.port) as fast:
                slow._send(
                    "sweep",
                    {"workloads": list(WORKLOADS), "levels": [1, 2, 4],
                     "strategy": "serial"},
                    None,
                )
                # Queued behind the sweep with a 1ms deadline: must fail.
                with pytest.raises(DeadlineExceededError):
                    fast.predict("EP", deadline_ms=1.0)


class TestGracefulDrain:
    def test_admitted_work_finishes_during_drain(self):
        config = ServeConfig(max_linger_ms=0.0,
                             session={"seed": 11, "use_cache": False})
        bg = BackgroundServer(config).start()
        outcome = {}

        def request_sweep():
            with ServeClient(bg.host, bg.port) as c:
                outcome["summary"] = c.sweep(
                    workloads=["EP", "CG"], levels=[1, 4], strategy="serial"
                )

        worker = threading.Thread(target=request_sweep)
        try:
            worker.start()
            import time
            time.sleep(0.2)          # let the sweep be admitted
            bg.stop()                # graceful drain blocks until done
            worker.join(timeout=30)
            assert not worker.is_alive()
            assert set(outcome["summary"]["workloads"]) == {"EP", "CG"}
        finally:
            bg.stop()

    def test_listener_closed_after_stop(self):
        bg = BackgroundServer(ServeConfig()).start()
        host, port = bg.host, bg.port
        bg.stop()
        with pytest.raises(OSError):
            ServeClient(host, port, timeout_s=2.0)
