"""End-to-end tests of the prediction service.

The server runs in-process (:class:`BackgroundServer` on a daemon
thread); clients are real blocking TCP clients.  The suite covers the
acceptance criteria of the serving layer: concurrent responses match
direct :mod:`repro.api` answers, concurrent requests are actually
coalesced (mean batch size > 1, proven via telemetry counters),
a full admission queue rejects with backpressure, expired deadlines
fail instead of serving late, and shutdown drains admitted work.
"""

import threading
import time

import pytest

import repro.api as api
from repro.serve import (
    BackgroundServer,
    DeadlineExceededError,
    OverloadedError,
    ServeClient,
    ServeConfig,
    ServeError,
)

WORKLOADS = ("EP", "CG", "SSCA2", "Swim", "Dedup", "Equake", "Stream", "LU")

# Fixtures (tracer, make_server, server, client) live in conftest.py:
# every test server binds port 0 and plumbs the bound address through.


def _occupy_dispatcher(client: ServeClient) -> str:
    """Fill the single dispatch slot *and* the queue_size=1 queue.

    Sweep A (the full default catalog, serial, cold cache — seconds of
    work) is sent and given time to be collected (the collector pops it
    immediately and blocks on the executor until it finishes); then
    sweep B parks in the admission queue.  From that point every further
    request must bounce with ``overloaded`` — deterministically, for as
    long as A keeps the worker busy.  Returns A's request id.
    """
    slow_id = client._send(
        "sweep", {"levels": [1, 2, 4], "strategy": "serial"}, None,
    )
    time.sleep(0.3)          # let the collector take A off the queue
    client._send(
        "sweep", {"workloads": ["EP"], "levels": [1], "strategy": "serial"},
        None,
    )
    return slow_id


class TestBasics:
    def test_ping(self, client):
        assert client.ping() is True

    def test_predict_matches_direct_api(self, client):
        served = client.predict("EP")
        direct = api.predict("EP", "p7").payload()
        assert served["workload"] == direct["workload"]
        assert served["recommended_level"] == direct["recommended_level"]
        assert served["smtsm"] == pytest.approx(direct["smtsm"], rel=1e-9)
        assert served["threshold"] == pytest.approx(direct["threshold"], rel=1e-9)

    def test_sweep(self, client):
        summary = client.sweep(workloads=["EP", "CG"], levels=[1, 4])
        assert set(summary["workloads"]) == {"EP", "CG"}
        assert summary["levels"] == [1, 4]

    def test_score_counters(self, client):
        events = {"CYCLES": 1e9, "INSTRUCTIONS": 6e8, "DISP_HELD_RES": 2e8,
                  "LD_CMPL": 2.2e8, "ST_CMPL": 1.1e8, "BR_CMPL": 9e7,
                  "FX_CMPL": 1.5e8, "VS_CMPL": 3e7}
        served = client.score_counters(
            events, smt_level=2, wall_time_s=1.0,
            avg_thread_cpu_s=0.9, n_software_threads=8)
        direct = api.score_counters(
            events, "p7", smt_level=2, wall_time_s=1.0,
            avg_thread_cpu_s=0.9, n_software_threads=8)
        assert served["smtsm"] == pytest.approx(direct.value, rel=1e-12)

    def test_invalid_workload_is_client_error(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.predict("doom")
        assert exc_info.value.code == "invalid_request"

    def test_unknown_op_is_rejected(self, client):
        with pytest.raises(ServeError) as exc_info:
            client.request("explode", {})
        assert exc_info.value.code == "invalid_request"


class TestCoalescing:
    def test_concurrent_clients_coalesce_and_match_direct(self, server, tracer):
        """N concurrent clients; answers correct; requests batched."""
        results = {}
        errors = []
        barrier = threading.Barrier(len(WORKLOADS))

        def worker(name):
            try:
                with ServeClient(server.host, server.port) as c:
                    barrier.wait(timeout=10)
                    results[name] = c.predict(name)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in WORKLOADS]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert set(results) == set(WORKLOADS)

        for name in WORKLOADS:
            direct = api.predict(name, "p7").payload()
            assert results[name]["recommended_level"] == \
                direct["recommended_level"], name
            assert results[name]["smtsm"] == \
                pytest.approx(direct["smtsm"], rel=1e-9), name

        counters = tracer.counters()
        batches = counters.get("serve.batches", 0)
        batched_requests = counters.get("serve.batched_requests", 0)
        assert batches >= 1
        mean_batch_size = batched_requests / batches
        assert mean_batch_size > 1.0, (
            f"requests were not coalesced: {batched_requests} requests "
            f"in {batches} batches"
        )


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, tracer, make_server):
        # queue_size=1: with the worker busy on sweep A and sweep B
        # parked in the queue, every prediction must bounce.
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0,
            session={"seed": 11, "use_cache": False},
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            slow_id = _occupy_dispatcher(slow)
            ids = [fast._send("predict", {"workload": "EP"}, None)
                   for _ in range(8)]
            responses = [fast._recv(i) for i in ids]
            rejected = [r for r in responses if not r.get("ok")]
            assert len(rejected) == len(responses), (
                "every request should be rejected while the slot and "
                "queue are both occupied"
            )
            for r in rejected:
                assert r["error"]["code"] == "overloaded"
                assert r["error"]["retry_after_ms"] > 0
            # The occupying sweep still completes correctly.
            sweep_response = slow._recv(slow_id)
            assert sweep_response["ok"]
        assert tracer.counters().get("serve.rejections", 0) >= 8

    def test_client_raises_typed_overloaded_error(self, make_server):
        config = ServeConfig(
            queue_size=1, max_linger_ms=0.0,
            session={"seed": 11, "use_cache": False},
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            _occupy_dispatcher(slow)
            with pytest.raises(OverloadedError) as exc_info:
                fast.predict("EP")
            assert exc_info.value.retry_after_ms > 0

    def test_parallel_servers_get_distinct_ephemeral_ports(self, make_server):
        # The port-0 discipline is what lets parallel CI runs coexist:
        # two servers started the same way never collide.
        a = make_server(ServeConfig(session={"seed": 11}))
        b = make_server(ServeConfig(session={"seed": 11}))
        assert a.port != b.port
        with ServeClient(a.host, a.port) as ca, \
                ServeClient(b.host, b.port) as cb:
            assert ca.ping() and cb.ping()


class TestDeadlines:
    def test_expired_deadline_fails_instead_of_serving_late(self, make_server):
        config = ServeConfig(
            max_linger_ms=0.0, session={"seed": 11, "use_cache": False},
        )
        bg = make_server(config)
        with ServeClient(bg.host, bg.port) as slow, \
                ServeClient(bg.host, bg.port) as fast:
            slow._send(
                "sweep",
                {"workloads": list(WORKLOADS), "levels": [1, 2, 4],
                 "strategy": "serial"},
                None,
            )
            # Queued behind the sweep with a 1ms deadline: must fail.
            with pytest.raises(DeadlineExceededError):
                fast.predict("EP", deadline_ms=1.0)


class TestGracefulDrain:
    def test_admitted_work_finishes_during_drain(self, make_server):
        config = ServeConfig(max_linger_ms=0.0,
                             session={"seed": 11, "use_cache": False})
        bg = make_server(config)
        outcome = {}

        def request_sweep():
            with ServeClient(bg.host, bg.port) as c:
                outcome["summary"] = c.sweep(
                    workloads=["EP", "CG"], levels=[1, 4], strategy="serial"
                )

        worker = threading.Thread(target=request_sweep)
        worker.start()
        time.sleep(0.2)          # let the sweep be admitted
        bg.stop()                # graceful drain blocks until done
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert set(outcome["summary"]["workloads"]) == {"EP", "CG"}

    def test_listener_closed_after_stop(self, make_server):
        bg = make_server(ServeConfig())
        host, port = bg.host, bg.port
        bg.stop()
        with pytest.raises(OSError):
            ServeClient(host, port, timeout_s=2.0)
