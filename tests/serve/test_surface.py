"""Boundary tests: the service speaks to the model only via repro.api.

The handlers module is the single bridge between the serving layer and
the reproduction; an import creeping past the facade would silently
couple the service to internals the facade is meant to insulate it
from.  This test parses the module and pins the rule.
"""

import ast
import sys
from pathlib import Path

import repro.serve.handlers as handlers

#: Non-repro modules the handlers may use freely.
_STDLIB_OK = {"__future__", "typing"}


def _imported_modules(path: Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            yield node.module or ""


class TestHandlerImportSurface:
    def test_handlers_import_only_repro_api(self):
        source = Path(handlers.__file__)
        for module in _imported_modules(source):
            root = module.split(".")[0]
            if root == "repro":
                assert module == "repro.api", (
                    f"handlers.py imports {module!r}; the service may only "
                    f"touch the model through the repro.api facade"
                )
            else:
                assert root in _STDLIB_OK or root in sys.stdlib_module_names, (
                    f"handlers.py imports non-stdlib module {module!r}"
                )

    def test_protocol_module_is_dependency_free(self):
        import repro.serve.protocol as protocol

        source = Path(protocol.__file__)
        for module in _imported_modules(source):
            root = module.split(".")[0]
            assert root in _STDLIB_OK or root in sys.stdlib_module_names, (
                f"protocol.py must stay stdlib-only, imports {module!r}"
            )
