"""JSONL round-trip and the aggregation behind ``repro stats``."""

import json

import pytest

from repro.obs import (
    JsonlSink,
    Tracer,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
    summarize_tracer,
)
from repro.obs.sink import latest_telemetry_file


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def traced_session(path):
    """Record a small two-sweep session to ``path``; returns the tracer."""
    clock = FakeClock()
    tracer = Tracer(enabled=True, sink=JsonlSink(path), clock=clock)
    for workload, duration in [("EP", 0.010), ("SSCA2", 0.030)]:
        with tracer.span("runner.run_catalog", runs=2):
            with tracer.span("run", workload=workload, level=4):
                clock.tick(duration)
    tracer.add("runcache.hits", 3)
    tracer.add("runcache.misses", 1)
    tracer.gauge("batch.width", 4)
    tracer.close()
    return tracer


class TestJsonlRoundTrip:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        traced_session(path)
        events = read_events(path)
        kinds = [e["type"] for e in events]
        assert kinds[0] == "meta"
        assert kinds.count("span") == 4
        assert kinds.count("counter") == 2
        assert kinds.count("gauge") == 1
        run_spans = [e for e in events if e["type"] == "span" and e["name"] == "run"]
        assert {s["attrs"]["workload"] for s in run_spans} == {"EP", "SSCA2"}
        assert all(s["path"] == "runner.run_catalog/run" for s in run_spans)

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"type": "counter", "name": "x", "value": 1.0}),
                    "{not json",
                    json.dumps(["a", "list"]),
                    json.dumps({"no_type": True}),
                    "",
                    json.dumps({"type": "gauge", "name": "g", "value": 2.0}),
                ]
            )
        )
        events = read_events(path)
        assert [e["type"] for e in events] == ["counter", "gauge"]

    def test_sink_truncates_per_session(self, tmp_path):
        path = tmp_path / "t.jsonl"
        traced_session(path)
        traced_session(path)
        events = read_events(path)
        # One session's worth, not two appended.
        assert sum(e["type"] == "meta" for e in events) == 1
        assert sum(e["type"] == "span" for e in events) == 4

    def test_sink_failure_is_silent(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("")  # a *file* where the sink wants a directory
        tracer = Tracer(enabled=True, sink=JsonlSink(target / "t.jsonl"))
        with tracer.span("s"):
            pass
        tracer.close()  # no exception

    def test_latest_telemetry_file(self, tmp_path):
        assert latest_telemetry_file(tmp_path / "absent") is None
        old = tmp_path / "a.jsonl"
        new = tmp_path / "b.jsonl"
        old.write_text("")
        new.write_text("")
        import os

        os.utime(old, (1, 1))
        os.utime(new, (2, 2))
        assert latest_telemetry_file(tmp_path) == new


class TestSummaries:
    def test_summarize_file_aggregates_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        traced_session(path)
        summary = summarize_file(path)
        run = summary.span_stats["runner.run_catalog/run"]
        assert run.count == 2
        assert run.total_s == pytest.approx(0.040)
        assert run.max_s == pytest.approx(0.030)
        assert run.mean_s == pytest.approx(0.020)
        assert run.depth == 1
        assert summary.counters["runcache.hits"] == 3.0
        assert summary.gauges["batch.width"] == 4.0

    def test_cache_hit_rate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        traced_session(path)
        assert summarize_file(path).cache_hit_rate() == pytest.approx(0.75)
        assert summarize_events([]).cache_hit_rate() is None

    def test_slowest_runs_sorted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        traced_session(path)
        slowest = summarize_file(path).slowest_runs()
        assert [s["attrs"]["workload"] for s in slowest] == ["SSCA2", "EP"]

    def test_summarize_tracer_matches_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = traced_session(path)
        live = summarize_tracer(tracer)
        from_file = summarize_file(path)
        assert live.counters == from_file.counters
        assert {p: s.count for p, s in live.span_stats.items()} == {
            p: s.count for p, s in from_file.span_stats.items()
        }

    def test_render_summary_sections(self, tmp_path):
        path = tmp_path / "t.jsonl"
        traced_session(path)
        text = render_summary(summarize_file(path))
        assert "span tree" in text
        assert "  run" in text  # indented child under the sweep span
        assert "runcache.hits" in text
        assert "3 hits / 1 misses (75.0% hit rate)" in text
        assert "SSCA2@SMT4" in text

    def test_render_empty(self):
        assert render_summary(summarize_events([])) == "no telemetry events"
