"""Tracer unit behaviour: span nesting, counters, disabled no-op mode."""

import pytest

from repro.obs import (
    NULL_SPAN,
    ListSink,
    Tracer,
    telemetry_enabled_by_env,
)
from repro.obs.core import ENV_TELEMETRY


class FakeClock:
    """Deterministic monotonic clock: advances only when told to."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(enabled=True, clock=clock)


class TestSpans:
    def test_duration_from_monotonic_clock(self, tracer, clock):
        with tracer.span("work"):
            clock.tick(2.5)
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.duration_s == pytest.approx(2.5)

    def test_nesting_builds_paths_and_depths(self, tracer, clock):
        with tracer.span("sweep"):
            with tracer.span("simulate"):
                with tracer.span("solve"):
                    clock.tick(1.0)
            with tracer.span("store"):
                clock.tick(1.0)
        paths = {r.path: r.depth for r in tracer.spans()}
        assert paths == {
            "sweep/simulate/solve": 2,
            "sweep/simulate": 1,
            "sweep/store": 1,
            "sweep": 0,
        }

    def test_children_close_before_parents(self, tracer, clock):
        with tracer.span("outer"):
            clock.tick(1.0)
            with tracer.span("inner"):
                clock.tick(2.0)
        inner, outer = tracer.spans()
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.duration_s == pytest.approx(3.0)
        assert inner.duration_s == pytest.approx(2.0)

    def test_attrs_at_open_and_via_set(self, tracer):
        with tracer.span("sweep", runs=84) as span:
            span.set(cache_hits=84, cache_misses=0)
        (record,) = tracer.spans()
        assert record.attrs == {"runs": 84, "cache_hits": 84, "cache_misses": 0}

    def test_start_offsets_are_relative_to_tracer_creation(self, tracer, clock):
        clock.tick(5.0)
        with tracer.span("late"):
            pass
        (record,) = tracer.spans()
        assert record.start_s == pytest.approx(5.0)

    def test_exception_still_closes_span(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                clock.tick(1.0)
                raise RuntimeError("x")
        (record,) = tracer.spans()
        assert record.duration_s == pytest.approx(1.0)
        assert tracer._stack == []


class TestCountersAndGauges:
    def test_counters_accumulate(self, tracer):
        tracer.add("hits")
        tracer.add("hits", 2)
        tracer.add("misses", 0.5)
        assert tracer.counters() == {"hits": 3.0, "misses": 0.5}

    def test_gauges_keep_last_value(self, tracer):
        tracer.gauge("depth", 4)
        tracer.gauge("depth", 7)
        assert tracer.gauges() == {"depth": 7.0}

    def test_snapshot_and_reset(self, tracer, clock):
        tracer.add("n")
        tracer.gauge("g", 1)
        with tracer.span("s"):
            clock.tick(1.0)
        snap = tracer.snapshot()
        assert snap["counters"] == {"n": 1.0}
        assert snap["gauges"] == {"g": 1.0}
        assert [e["name"] for e in snap["spans"]] == ["s"]
        tracer.reset()
        assert tracer.snapshot() == {"counters": {}, "gauges": {}, "spans": []}


class TestDisabledMode:
    def test_span_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", runs=3)
        assert span is NULL_SPAN
        with span as s:
            assert s.set(more=1) is s
        assert tracer.spans() == []

    def test_counters_and_gauges_are_noops(self):
        tracer = Tracer(enabled=False)
        tracer.add("hits")
        tracer.gauge("g", 1)
        assert tracer.counters() == {}
        assert tracer.gauges() == {}

    def test_nothing_reaches_the_sink(self):
        sink = ListSink()
        tracer = Tracer(enabled=False, sink=sink)
        with tracer.span("s"):
            pass
        tracer.add("n")
        tracer.flush()
        assert sink.events == []

    def test_env_gate_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True), ("on", True), ("TRUE", True), ("yes", True),
            ("0", False), ("", False), ("off", False), ("no", False),
        ]:
            monkeypatch.setenv(ENV_TELEMETRY, value)
            assert telemetry_enabled_by_env() is expected
        monkeypatch.delenv(ENV_TELEMETRY)
        assert telemetry_enabled_by_env() is False


class TestSinkStreaming:
    def test_spans_stream_counters_aggregate_until_flush(self, clock):
        sink = ListSink()
        tracer = Tracer(enabled=True, sink=sink, clock=clock)
        tracer.add("hits", 2)
        with tracer.span("s"):
            clock.tick(1.0)
        assert [e["type"] for e in sink.events] == ["span"]
        tracer.flush()
        kinds = [(e["type"], e.get("name")) for e in sink.events]
        assert ("counter", "hits") in kinds
        counter = next(e for e in sink.events if e["type"] == "counter")
        assert counter["value"] == 2.0
