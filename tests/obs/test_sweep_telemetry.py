"""Integration: a columnar catalog sweep emits consistent telemetry.

Runs a small POWER7 sweep twice against a run cache in a temporary
directory with the global tracer enabled: the cold pass must record one
``runcache.misses`` per run (and the table-engine counters that prove
work happened), the warm pass one ``runcache.hits`` per run and nothing
else.
"""

import pytest

from repro.experiments.runner import run_catalog
from repro.experiments.systems import p7_system
from repro.obs import configure, get_tracer
from repro.sim import engine
from repro.sim.runcache import RunCache
from repro.workloads.catalog import all_workloads

LEVELS = (1, 4)
NAMES = ("EP", "SSCA2")


@pytest.fixture
def tracer():
    tracer = configure(enabled=True)
    tracer.reset()
    yield tracer
    configure(enabled=False)
    tracer.reset()


@pytest.fixture
def sweep(tmp_path):
    system = p7_system()
    specs = all_workloads()
    catalog = {name: specs[name] for name in NAMES}
    cache = RunCache(tmp_path / "runcache")

    def run():
        engine._SERIAL_RATE_CACHE.clear()
        return run_catalog(system, catalog, LEVELS, cache=cache)

    return run


N_RUNS = len(NAMES) * len(LEVELS)


class TestColdPass:
    def test_cold_pass_counters(self, tracer, sweep):
        sweep()
        counters = tracer.counters()
        assert counters["runcache.misses"] == N_RUNS
        assert counters["runcache.puts"] == N_RUNS
        assert "runcache.hits" not in counters
        # The table engine actually simulated: whole-table solves and
        # bandwidth bisection happened over every run of the sweep.
        assert counters["table.tables"] == 1
        assert counters["table.runs"] == N_RUNS
        assert counters["table.rows"] >= N_RUNS
        assert counters["table.solves"] > 0
        assert counters["table.bisection_steps"] > 0
        # Serial-rate warming still goes through the core batch solver.
        assert counters["core_batch.solves"] > 0
        assert counters["engine.serial_memo_misses"] == len(NAMES)

    def test_cold_pass_spans(self, tracer, sweep):
        sweep()
        by_name = {}
        for record in tracer.spans():
            by_name.setdefault(record.name, []).append(record)
        (top,) = by_name["runner.run_catalog"]
        assert top.attrs["runs"] == N_RUNS
        assert top.attrs["cache_hits"] == 0
        assert top.attrs["cache_misses"] == N_RUNS
        (simulate,) = by_name["simulate"]
        assert simulate.attrs["runs"] == N_RUNS
        assert simulate.path.startswith("runner.run_catalog/")
        assert by_name["table.simulate_many"]


class TestWarmPass:
    def test_warm_pass_is_all_hits(self, tracer, sweep):
        cold = sweep()
        tracer.reset()
        warm = sweep()
        counters = tracer.counters()
        assert counters["runcache.hits"] == N_RUNS
        assert counters.get("runcache.misses", 0) == 0
        assert counters.get("runcache.puts", 0) == 0
        # No simulation at all on the warm pass.
        assert "table.tables" not in counters
        assert "table.solves" not in counters
        assert "core_batch.solves" not in counters
        (top,) = [r for r in tracer.spans()
                  if r.name == "runner.run_catalog"]
        assert top.attrs["cache_hits"] == N_RUNS
        assert top.attrs["cache_misses"] == 0
        # And the cached results agree with the simulated ones.
        for name in NAMES:
            for level in LEVELS:
                assert warm.runs[name][level].wall_time_s == pytest.approx(
                    cold.runs[name][level].wall_time_s)

    def test_disabled_tracer_records_nothing(self, sweep):
        tracer = get_tracer()
        configure(enabled=False)
        tracer.reset()
        sweep()
        assert tracer.snapshot() == {"counters": {}, "gauges": {}, "spans": []}
