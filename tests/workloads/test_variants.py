"""Tests for input-scaled workload variants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import get_workload
from repro.workloads.variants import MISS_SCALE_EXPONENT, scaled_input


class TestScaledInput:
    def test_identity_at_scale_one(self):
        base = get_workload("Equake")
        scaled = scaled_input(base, 1.0)
        assert scaled.stream.memory.l1_mpki == pytest.approx(base.stream.memory.l1_mpki)

    def test_smaller_input_fewer_misses(self):
        base = get_workload("Equake")
        small = scaled_input(base, 0.1)
        assert small.stream.memory.l1_mpki < base.stream.memory.l1_mpki
        expected = base.stream.memory.l1_mpki * 0.1 ** MISS_SCALE_EXPONENT
        assert small.stream.memory.l1_mpki == pytest.approx(expected)

    def test_larger_input_more_misses(self):
        base = get_workload("BT")
        big = scaled_input(base, 10.0)
        assert big.stream.memory.l3_mpki > base.stream.memory.l3_mpki

    def test_mix_and_sync_invariant(self):
        base = get_workload("SSCA2")
        scaled = scaled_input(base, 4.0)
        assert scaled.stream.mix == base.stream.mix
        assert scaled.sync == base.sync
        assert scaled.stream.ilp == base.stream.ilp

    def test_name_and_size_labelled(self):
        scaled = scaled_input(get_workload("EP"), 2.0)
        assert scaled.name == "EP@x2"
        assert "scaled" in scaled.problem_size

    def test_custom_label(self):
        scaled = scaled_input(get_workload("EP"), 2.0, label="EP-big")
        assert scaled.name == "EP-big"

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scaled_input(get_workload("EP"), 0.0)

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30)
    def test_hierarchy_stays_monotone(self, scale):
        mem = scaled_input(get_workload("Swim"), scale).stream.memory
        assert mem.l1_mpki >= mem.l2_mpki >= mem.l3_mpki
