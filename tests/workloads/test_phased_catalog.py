"""Tests for the phased composite workloads."""

import pytest

from repro.core.metric import smtsm
from repro.experiments.systems import p7_system
from repro.sim.online import SteadyApp
from repro.workloads.phased_catalog import (
    dedup_pipeline,
    ft_compute_transpose,
    graph_analytics,
    jbb_rampup,
    phased_catalog,
)


class TestCatalogStructure:
    def test_all_composites_present(self):
        catalog = phased_catalog()
        assert set(catalog) == {
            "FT-compute-transpose", "dedup-pipeline", "specjbb-rampup",
            "graph-analytics",
        }

    def test_total_work_positive(self):
        for workload in phased_catalog().values():
            assert workload.total_work > 0
            assert len(workload.phases) >= 2

    def test_phases_have_distinct_behaviour(self):
        for workload in phased_catalog().values():
            names = {p.spec.name for p in workload.phases}
            assert len(names) >= 2, workload.name


class TestPhaseVisibility:
    """Each composite's phases must be distinguishable via SMTsm."""

    @pytest.mark.parametrize("builder,factor", [
        (graph_analytics, 2.0),
        (jbb_rampup, 1.8),   # contention vs steady jbb: ~2x separation
    ])
    def test_contention_phases_move_the_metric(self, builder, factor):
        system = p7_system()
        workload = builder()
        app = SteadyApp(system, 4, workload.phases[0].spec,
                        phases=workload, seed=5)
        values_by_phase = {}
        for _ in range(400):
            sample = app.advance(0.02)
            values_by_phase.setdefault(app.phase_name, []).append(
                smtsm(sample).value
            )
        means = {k: sum(v) / len(v) for k, v in values_by_phase.items()}
        assert len(means) >= 2
        assert max(means.values()) > factor * min(means.values())

    def test_ft_transpose_raises_dispatch_held(self):
        system = p7_system()
        workload = ft_compute_transpose()
        app = SteadyApp(system, 4, workload.phases[0].spec,
                        phases=workload, seed=5)
        held = {}
        for _ in range(400):
            sample = app.advance(0.02)
            held.setdefault(app.phase_name, []).append(
                sample.dispatch_held_fraction
            )
        means = {k: sum(v) / len(v) for k, v in held.items()}
        assert means["FT-transpose"] > means["FT"]

    def test_dedup_pipeline_phases_alternate_scalability(self):
        system = p7_system()
        workload = dedup_pipeline()
        app = SteadyApp(system, 4, workload.phases[0].spec,
                        phases=workload, seed=5)
        scal = {}
        for _ in range(400):
            sample = app.advance(0.02)
            scal.setdefault(app.phase_name, []).append(sample.scalability_ratio)
        means = {k: sum(v) / len(v) for k, v in scal.items()}
        # The I/O stage sleeps more than the hash stage.
        assert means["Dedup"] > means["dedup-hash"]
