"""Calibration snapshot: the catalog's qualitative anchors.

The workload parameters were calibrated against the paper's published
numbers (Fig. 1 bars, the Fig. 7 speedup ladder, Streamcluster's
profile, the 93%/86% success rates).  This module pins the *anchors* —
if a future parameter edit moves a benchmark across a qualitative
boundary, these tests catch it before the benches do.

Deliberately coarse: bands, not exact values, so legitimate retuning
within a band does not churn the suite.
"""

import pytest

from repro.experiments.runner import run_catalog
from repro.core.metric import smtsm_from_run
from repro.sim.results import speedup


@pytest.fixture(scope="module")
def p7(p7_catalog_runs=None):
    return run_catalog("p7", seed=11)


@pytest.fixture(scope="module")
def nh():
    return run_catalog("nehalem", seed=11)


def s41(runs, name):
    by_level = runs.runs[name]
    return speedup(by_level[4], by_level[1])


def s21(runs, name):
    by_level = runs.runs[name]
    return speedup(by_level[2], by_level[1])


def metric4(runs, name):
    return smtsm_from_run(runs.runs[name][4]).value


class TestFig1Anchors:
    def test_equake_degrades(self, p7):
        assert s41(p7, "Equake") < 0.65

    def test_mg_oblivious(self, p7):
        assert 0.85 < s41(p7, "MG") < 1.15

    def test_ep_excels(self, p7):
        assert s41(p7, "EP") > 1.7


class TestFig7Ladder:
    def test_blackscholes_band(self, p7):
        assert 1.6 < s41(p7, "Blackscholes") < 2.0   # paper: 1.82

    def test_fluidanimate_band(self, p7):
        assert 1.2 < s41(p7, "Fluidanimate") < 1.8   # paper: 1.35

    def test_dedup_band(self, p7):
        assert 0.75 < s41(p7, "Dedup") < 1.0         # paper: 0.86

    def test_ssca2_band(self, p7):
        assert 0.6 < s41(p7, "SSCA2") < 0.9          # paper: 0.78

    def test_jbb_contention_band(self, p7):
        assert s41(p7, "SPECjbb_contention") < 0.45  # paper: 0.25


class TestThresholdSides:
    SMT4_FRIENDLY = ("EP", "EP_MPI", "Blackscholes", "Wupwise", "Fma3d",
                     "LU_MPI", "FT_MPI", "CG_MPI", "Daytrader", "SPECjbb",
                     "Fluidanimate", "BT")
    SMT1_PREFERRING = ("Equake", "Swim", "Mgrid", "Applu", "Ammp", "Apsi",
                       "IS_MPI", "SSCA2", "SPECjbb_contention", "Dedup",
                       "Streamcluster", "Stream")

    def test_friendly_set_below_threshold_and_fast(self, p7):
        for name in self.SMT4_FRIENDLY:
            assert metric4(p7, name) <= 0.07, name
            assert s41(p7, name) > 1.0, name

    def test_hostile_set_above_threshold_and_slow(self, p7):
        for name in self.SMT1_PREFERRING:
            assert metric4(p7, name) > 0.065, name
            assert s41(p7, name) < 1.01, name

    def test_borderliners_hover_at_one(self, p7):
        for name in ("Gafort", "IS"):
            assert 0.9 < s41(p7, name) < 1.1, name
            assert metric4(p7, name) <= 0.07, name


class TestNehalemAnchors:
    def test_streamcluster_profile(self, nh):
        # §IV-A: high load fraction drives the metric far right while
        # memory-boundness keeps SMT2 winning.
        m = smtsm_from_run(nh.runs["Streamcluster"][2])
        assert m.mix_deviation > 0.28
        assert s21(nh, "Streamcluster") > 1.0

    def test_streamcluster_l3_mpki_near_paper(self, nh):
        # §IV-A: "8 L3 Misses per thousand retired instructions".
        sample = nh.runs["Streamcluster"][2].counter_sample()
        assert 4.0 < sample.l3_mpki < 12.0

    def test_most_prefer_smt2(self, nh):
        from repro.workloads.catalog import NEHALEM_SET
        winners = sum(1 for n in NEHALEM_SET if s21(nh, n) >= 1.0)
        assert winners >= len(NEHALEM_SET) - 5

    def test_ep_gains_modestly(self, nh):
        assert 1.2 < s21(nh, "EP") < 1.7
