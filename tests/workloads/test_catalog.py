"""Tests for the Table I workload catalog."""

import pytest

from repro.workloads import (
    all_workloads,
    get_workload,
    nehalem_catalog,
    power7_catalog,
)
from repro.workloads.catalog import NEHALEM_SET, NEHALEM_SMT1_SET, POWER7_SET, table1_rows


class TestCatalogStructure:
    def test_power7_set_size(self):
        # The paper's POWER7 experiments cover 28 labelled benchmarks.
        assert len(POWER7_SET) == 28
        assert len(power7_catalog()) == 28

    def test_nehalem_fig10_set_size(self):
        # Fig. 10 plots 21 benchmarks.
        assert len(NEHALEM_SET) == 21

    def test_nehalem_fig12_set(self):
        # Fig. 12 includes canneal and drops five entries.
        assert "canneal" in NEHALEM_SMT1_SET
        assert len(NEHALEM_SMT1_SET) == 17

    def test_no_duplicate_names(self):
        specs = all_workloads()
        assert len(specs) == len({s.name for s in specs.values()})

    def test_lookup_by_name(self):
        assert get_workload("EP").suite == "NAS"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("doom")

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == len(all_workloads())
        labels = [r[0] for r in rows]
        assert labels == sorted(labels)

    def test_every_spec_has_description(self):
        for spec in all_workloads().values():
            assert spec.description
            assert spec.suite


class TestPaperCharacteristics:
    """Spot checks on the paper's documented workload traits."""

    def test_streamcluster_load_heavy(self):
        # §IV-A: "an unusually high number of loads" (~40%), few stores.
        from repro.arch.classes import InstrClass
        mix = get_workload("Streamcluster").stream.mix
        assert mix[InstrClass.LOAD] >= 0.35
        assert mix[InstrClass.STORE] <= 0.08

    def test_ssca2_lock_heavy(self):
        # Table I: "Lock heavy".
        sync = get_workload("SSCA2").sync
        assert sync.lock_serial_fraction > 0

    def test_jbb_contention_single_warehouse(self):
        sync = get_workload("SPECjbb_contention").sync
        assert sync.lock_serial_fraction > get_workload("SPECjbb").sync.lock_serial_fraction

    def test_dedup_heavy_io(self):
        assert get_workload("Dedup").sync.io_wait > 0.2

    def test_stream_is_streaming(self):
        mem = get_workload("Stream").stream.memory
        assert mem.l3_mpki > 30
        assert mem.locality_alpha < 0.3

    def test_ep_scalable_and_light(self):
        spec = get_workload("EP")
        assert spec.stream.memory.l3_mpki < 0.5
        assert spec.sync.serial_fraction == 0.0

    def test_specomp_suite_fp_heavy(self):
        from repro.arch.classes import InstrClass
        for name in ("Applu", "Mgrid", "Swim", "Equake"):
            assert get_workload(name).stream.mix[InstrClass.VS] >= 0.45

    def test_mpi_variants_do_not_share(self):
        for name in ("EP_MPI", "IS_MPI", "CG_MPI", "FT_MPI", "LU_MPI", "MG_MPI"):
            assert get_workload(name).stream.memory.data_sharing == 0.0

    def test_catalog_sets_exist_in_all(self):
        specs = all_workloads()
        for name in POWER7_SET + NEHALEM_SET + NEHALEM_SMT1_SET:
            assert name in specs
