"""Tests for synthetic builders and phased workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import RngStream
from repro.workloads.phases import Phase, PhasedWorkload, alternating
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import (
    bandwidth_bound_workload,
    compute_bound_workload,
    make_stream,
    random_workload,
    spin_bound_workload,
)


class TestMakeStream:
    def test_vs_defaults_to_remainder(self):
        s = make_stream(loads=0.2, stores=0.1, branches=0.1, fx=0.3)
        from repro.arch.classes import InstrClass
        assert s.mix[InstrClass.VS] == pytest.approx(0.3)

    def test_rejects_fractions_over_one(self):
        with pytest.raises(ValueError, match="exceed 1"):
            make_stream(loads=0.5, stores=0.4, branches=0.3, fx=0.3)

    def test_mpkis_clamped_monotone(self):
        s = make_stream(l1_mpki=5, l2_mpki=10, l3_mpki=20)
        assert s.memory.l1_mpki >= s.memory.l2_mpki >= s.memory.l3_mpki


class TestArchetypes:
    def test_archetypes_build(self):
        for builder in (compute_bound_workload, bandwidth_bound_workload, spin_bound_workload):
            spec = builder()
            assert isinstance(spec, WorkloadSpec)

    def test_spin_archetype_configurable(self):
        spec = spin_bound_workload(lock_serial_fraction=0.5)
        assert spec.sync.lock_serial_fraction == 0.5

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_workload_always_valid(self, seed):
        spec = random_workload(RngStream(seed))
        assert spec.stream.mix.vector.sum() == pytest.approx(1.0)
        assert spec.stream.memory.l1_mpki >= spec.stream.memory.l3_mpki


class TestPhasedWorkload:
    def make(self):
        return alternating(
            "ab", compute_bound_workload("a"), spin_bound_workload("b"),
            work_per_phase=100.0, repeats=2,
        )

    def test_total_work(self):
        assert self.make().total_work == 400.0

    def test_phase_at_boundaries(self):
        w = self.make()
        assert w.phase_at(0.0).spec.name == "a"
        assert w.phase_at(150.0).spec.name == "b"
        assert w.phase_at(250.0).spec.name == "a"
        assert w.phase_at(399.0).spec.name == "b"

    def test_phase_at_past_end_returns_last(self):
        w = self.make()
        assert w.phase_at(10_000.0).spec.name == "b"

    def test_phase_at_rejects_negative(self):
        with pytest.raises(ValueError):
            self.make().phase_at(-1.0)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PhasedWorkload("empty", ())

    def test_zero_work_phase_rejected(self):
        with pytest.raises(ValueError):
            Phase(compute_bound_workload(), 0.0)

    def test_alternating_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            alternating("x", compute_bound_workload(), spin_bound_workload(),
                        work_per_phase=1.0, repeats=0)

    def test_iteration(self):
        assert len(list(self.make())) == 4
