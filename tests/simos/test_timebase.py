"""Tests for wall/CPU time accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.simos.sync import NO_SYNC, SyncProfile
from repro.simos.timebase import TimeAccounting, account_run


class TestTimeAccountingValidation:
    def test_cpu_cannot_exceed_wall_times_threads(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            TimeAccounting(
                wall_time_s=1.0, serial_time_s=0.0, parallel_time_s=1.0,
                total_cpu_s=5.0, n_threads=4,
            )

    def test_scalability_ratio(self):
        t = TimeAccounting(1.0, 0.0, 1.0, total_cpu_s=2.0, n_threads=4)
        assert t.avg_thread_cpu_s == pytest.approx(0.5)
        assert t.scalability_ratio == pytest.approx(2.0)


class TestAccountRun:
    def test_fully_parallel_ratio_is_one(self):
        t = account_run(1e9, parallel_useful_rate=1e9, serial_rate=1e8,
                        sync=NO_SYNC, n_threads=8)
        assert t.scalability_ratio == pytest.approx(1.0)
        assert t.serial_time_s == 0.0

    def test_serial_fraction_raises_ratio(self):
        sync = SyncProfile(serial_fraction=0.5)
        t = account_run(1e9, parallel_useful_rate=8e8, serial_rate=1e8,
                        sync=sync, n_threads=8)
        # During the serial phase 7 of 8 threads sleep.
        assert t.scalability_ratio > 1.5

    def test_blocking_raises_ratio(self):
        sync = SyncProfile(block_coeff=0.5, block_half=1.0)
        t = account_run(1e9, parallel_useful_rate=1e9, serial_rate=1e8,
                        sync=sync, n_threads=16)
        assert t.scalability_ratio > 1.5

    def test_spin_does_not_raise_ratio(self):
        # Spinning threads are on-CPU: the paper's factor 3 must not see them.
        sync = SyncProfile(spin_coeff=0.8, spin_half=1.0)
        t = account_run(1e9, parallel_useful_rate=1e9, serial_rate=1e8,
                        sync=sync, n_threads=16)
        assert t.scalability_ratio == pytest.approx(1.0)

    def test_wall_is_serial_plus_parallel(self):
        sync = SyncProfile(serial_fraction=0.2)
        t = account_run(1e9, parallel_useful_rate=4e9, serial_rate=1e9,
                        sync=sync, n_threads=4)
        assert t.wall_time_s == pytest.approx(t.serial_time_s + t.parallel_time_s)
        assert t.serial_time_s == pytest.approx(0.2)
        assert t.parallel_time_s == pytest.approx(0.2)

    @given(
        st.floats(min_value=0.0, max_value=0.8),
        st.floats(min_value=0.0, max_value=0.8),
        st.integers(min_value=1, max_value=64),
    )
    def test_ratio_at_least_one(self, serial, block, n):
        sync = SyncProfile(serial_fraction=serial, block_coeff=block)
        t = account_run(1e9, parallel_useful_rate=1e9, serial_rate=5e8,
                        sync=sync, n_threads=n)
        assert t.scalability_ratio >= 1.0 - 1e-9

    def test_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            account_run(0.0, 1e9, 1e9, NO_SYNC, 4)
