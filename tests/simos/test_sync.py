"""Tests for synchronization/scalability profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.simos.sync import MAX_WAIT_FRACTION, NO_SYNC, SyncProfile


class TestValidation:
    def test_default_is_scalable(self):
        assert NO_SYNC.spin_fraction(64) == 0.0
        assert NO_SYNC.blocked_fraction(64) == 0.0

    def test_rejects_bad_serial_fraction(self):
        with pytest.raises(ValueError):
            SyncProfile(serial_fraction=1.5)

    def test_rejects_serial_fraction_above_cap(self):
        with pytest.raises(ValueError, match="parallel phase"):
            SyncProfile(serial_fraction=0.95)

    def test_rejects_negative_pingpong(self):
        with pytest.raises(ValueError):
            SyncProfile(lock_pingpong_coeff=-0.1)

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            NO_SYNC.spin_fraction(0)


class TestSpinLaw:
    def test_single_thread_never_spins(self):
        p = SyncProfile(spin_coeff=0.8)
        assert p.spin_fraction(1) == 0.0

    def test_monotone_in_threads(self):
        p = SyncProfile(spin_coeff=0.6, spin_half=8)
        values = [p.spin_fraction(n) for n in (2, 4, 8, 16, 32, 64)]
        assert values == sorted(values)

    def test_saturates_below_coeff(self):
        p = SyncProfile(spin_coeff=0.6, spin_half=8)
        assert p.spin_fraction(10_000) < 0.6

    def test_half_is_half(self):
        p = SyncProfile(spin_coeff=0.6, spin_half=8)
        # n-1 == half -> half the asymptote
        assert p.spin_fraction(9) == pytest.approx(0.3)


class TestBlockingLaw:
    def test_io_wait_independent_of_threads(self):
        p = SyncProfile(io_wait=0.3)
        assert p.blocked_fraction(1) == pytest.approx(0.3)
        assert p.blocked_fraction(64) == pytest.approx(0.3)

    def test_blocked_capped(self):
        p = SyncProfile(block_coeff=0.9, io_wait=0.5)
        assert p.blocked_fraction(1000) == MAX_WAIT_FRACTION

    def test_runnable_complements_blocked(self):
        p = SyncProfile(block_coeff=0.4, io_wait=0.1)
        for n in (1, 8, 32):
            assert p.runnable_fraction(n) == pytest.approx(1 - p.blocked_fraction(n))


class TestLockCap:
    def test_no_lock_means_unbounded(self):
        assert NO_SYNC.lock_throughput_cap(1e9, 32) == float("inf")

    def test_cap_is_holder_rate_over_fraction(self):
        p = SyncProfile(lock_serial_fraction=0.25)
        assert p.lock_throughput_cap(1e9, 1) == pytest.approx(4e9)

    def test_pingpong_degrades_cap_with_threads(self):
        p = SyncProfile(lock_serial_fraction=0.25, lock_pingpong_coeff=1.0, lock_pingpong_half=8)
        assert p.lock_throughput_cap(1e9, 32) < p.lock_throughput_cap(1e9, 8)

    def test_slower_holder_lowers_cap(self):
        # The SMT4 mechanism: the lock holder itself runs slower.
        p = SyncProfile(lock_serial_fraction=0.25)
        assert p.lock_throughput_cap(0.5e9, 8) == pytest.approx(
            0.5 * p.lock_throughput_cap(1e9, 8)
        )

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SyncProfile(lock_serial_fraction=0.25).lock_throughput_cap(0.0, 8)


class TestWorkInflation:
    def test_single_thread_no_inflation(self):
        p = SyncProfile(work_inflation_coeff=0.5)
        assert p.work_inflation(1) == pytest.approx(1.0)

    def test_saturates_at_one_plus_coeff(self):
        p = SyncProfile(work_inflation_coeff=0.5, work_inflation_half=4)
        assert 1.0 < p.work_inflation(64) < 1.5

    @given(st.integers(min_value=1, max_value=256))
    def test_inflation_at_least_one(self, n):
        p = SyncProfile(work_inflation_coeff=0.8, work_inflation_half=16)
        assert p.work_inflation(n) >= 1.0

    @given(st.integers(min_value=2, max_value=128))
    def test_monotone(self, n):
        p = SyncProfile(work_inflation_coeff=0.8, work_inflation_half=16)
        assert p.work_inflation(n) <= p.work_inflation(n + 1)
