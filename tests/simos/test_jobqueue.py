"""Tests for the batch job queue."""

import pytest

from repro.core.predictor import SmtPredictor
from repro.experiments.systems import p7_system
from repro.simos.jobqueue import BatchJob, BatchScheduler
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def scheduler():
    return BatchScheduler(p7_system(), seed=3)


@pytest.fixture(scope="module")
def jobs():
    return [
        BatchJob(get_workload("EP"), 1e10),
        BatchJob(get_workload("SPECjbb_contention"), 1e10),
    ]


def predictors():
    return {
        1: SmtPredictor(threshold=0.07, high_level=4, low_level=1),
        2: SmtPredictor(threshold=0.07, high_level=4, low_level=2),
    }


class TestValidation:
    def test_job_work_positive(self):
        with pytest.raises(ValueError):
            BatchJob(get_workload("EP"), 0.0)

    def test_probe_fraction_bounds(self):
        with pytest.raises(ValueError):
            BatchScheduler(p7_system(), probe_fraction=1.0)

    def test_static_level_validated(self, scheduler, jobs):
        with pytest.raises(ValueError):
            scheduler.run_static(jobs, 3)


class TestPolicies:
    def test_static_runs_all_jobs(self, scheduler, jobs):
        outcome = scheduler.run_static(jobs, 4)
        assert len(outcome.records) == 2
        assert all(r.level == 4 for r in outcome.records)
        assert outcome.makespan_s > 0

    def test_oracle_picks_per_job_best(self, scheduler, jobs):
        outcome = scheduler.run_oracle(jobs)
        by_name = {r.name: r for r in outcome.records}
        assert by_name["EP"].level == 4
        assert by_name["SPECjbb_contention"].level in (1, 2)

    def test_smtsm_policy_splits_decisions(self, scheduler, jobs):
        outcome = scheduler.run_smtsm(jobs, predictors())
        by_name = {r.name: r for r in outcome.records}
        assert by_name["EP"].level == 4
        assert by_name["SPECjbb_contention"].level == 1
        assert all(r.measured_metric is not None for r in outcome.records)

    def test_oracle_never_worse_than_static(self, scheduler, jobs):
        oracle = scheduler.run_oracle(jobs)
        for level in (1, 2, 4):
            static = scheduler.run_static(jobs, level)
            assert oracle.makespan_s <= static.makespan_s * 1.05

    def test_smtsm_between_default_and_oracle(self, scheduler, jobs):
        smtsm = scheduler.run_smtsm(jobs, predictors())
        default = scheduler.run_static(jobs, 4)
        oracle = scheduler.run_oracle(jobs)
        assert smtsm.makespan_s < default.makespan_s
        assert smtsm.makespan_s >= oracle.makespan_s * 0.95
