"""Tests for runtime SMT-level control."""

import pytest

from repro.arch import nehalem, power7
from repro.simos.smtctl import SmtController


class TestSmtController:
    def test_defaults_to_highest_level(self):
        # Paper §IV-B: the highest SMT level is always the default.
        assert SmtController(power7()).level == 4
        assert SmtController(nehalem()).level == 2

    def test_explicit_initial_level(self):
        assert SmtController(power7(), initial_level=2).level == 2

    def test_rejects_invalid_initial(self):
        with pytest.raises(ValueError):
            SmtController(power7(), initial_level=3)

    def test_switch_changes_level_and_charges_cost(self):
        ctl = SmtController(power7(), switch_cost_s=0.01)
        record = ctl.switch(1, at_time_s=5.0)
        assert ctl.level == 1
        assert record.cost_s == 0.01
        assert record.from_level == 4

    def test_noop_switch_is_free(self):
        ctl = SmtController(power7(), switch_cost_s=0.01)
        record = ctl.switch(4)
        assert record.cost_s == 0.0
        assert ctl.n_switches() == 0

    def test_history_and_totals(self):
        ctl = SmtController(power7(), switch_cost_s=0.01)
        ctl.switch(1)
        ctl.switch(1)
        ctl.switch(4)
        assert ctl.n_switches() == 2
        assert ctl.total_switch_cost_s == pytest.approx(0.02)
        assert len(ctl.history) == 3

    def test_offline_only_architecture_refuses(self):
        # The paper's Nehalem requires a BIOS change + reboot.
        ctl = SmtController(nehalem(), allow_online_switch=False)
        with pytest.raises(RuntimeError, match="online SMT switching"):
            ctl.switch(1)

    def test_rejects_unsupported_target(self):
        ctl = SmtController(power7())
        with pytest.raises(ValueError):
            ctl.switch(3)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            SmtController(power7(), switch_cost_s=-1.0)
