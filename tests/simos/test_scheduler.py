"""Tests for thread placement."""

import pytest

from repro.arch import nehalem, power7
from repro.simos.scheduler import place_threads
from repro.simos.system import SystemSpec


class TestSystemSpec:
    def test_contexts_at_levels(self):
        sys1 = SystemSpec(power7(), 1)
        assert sys1.contexts_at(1) == 8
        assert sys1.contexts_at(2) == 16
        assert sys1.contexts_at(4) == 32

    def test_two_chip_contexts(self):
        sys2 = SystemSpec(power7(), 2)
        assert sys2.total_cores == 16
        assert sys2.contexts_at(4) == 64

    def test_bandwidth_pools_across_chips(self):
        one = SystemSpec(power7(), 1)
        two = SystemSpec(power7(), 2)
        assert two.mem_bandwidth_gbps() == pytest.approx(2 * one.mem_bandwidth_gbps())

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            SystemSpec(power7(), 0)


class TestPlacement:
    def test_full_smt4_placement(self):
        placement = place_threads(SystemSpec(power7(), 1), 4, 32)
        assert placement.threads_per_core == (4,) * 8
        assert placement.core_modes() == (4,) * 8

    def test_one_thread_per_core_reverts_to_smt1_mode(self):
        # The paper's Nehalem protocol: SMT enabled, one thread per core.
        placement = place_threads(SystemSpec(nehalem(), 1), 2, 4)
        assert placement.threads_per_core == (1,) * 4
        assert placement.core_modes() == (1,) * 4

    def test_breadth_first_spreads_before_stacking(self):
        placement = place_threads(SystemSpec(power7(), 1), 4, 10)
        # 10 threads on 8 cores: two cores get 2, six get 1.
        assert sorted(placement.threads_per_core) == [1] * 6 + [2] * 2

    def test_partial_fill_mode_is_occupancy(self):
        placement = place_threads(SystemSpec(power7(), 1), 4, 24)
        # 24 threads on 8 cores -> 3 per core -> SMT4 hardware mode.
        assert placement.threads_per_core == (3,) * 8
        assert placement.core_modes() == (4,) * 8

    def test_two_chips_balanced(self):
        placement = place_threads(SystemSpec(power7(), 2), 1, 16)
        assert placement.threads_per_chip() == (8, 8)

    def test_two_chips_odd_count_spreads_across_chips(self):
        placement = place_threads(SystemSpec(power7(), 2), 1, 2)
        assert placement.threads_per_chip() == (1, 1)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="exceed"):
            place_threads(SystemSpec(power7(), 1), 1, 9)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            place_threads(SystemSpec(power7(), 1), 1, 0)

    def test_occupied_cores(self):
        placement = place_threads(SystemSpec(power7(), 1), 4, 6)
        assert placement.occupied_cores == 6
