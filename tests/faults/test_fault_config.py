"""Tests for the fault model configuration."""

import pytest

from repro.faults import FaultConfig, noise_profile

pytestmark = pytest.mark.faults


class TestValidation:
    def test_defaults_are_clean(self):
        cfg = FaultConfig()
        assert not cfg.any_faults

    @pytest.mark.parametrize("field", [
        "noise_rel", "heavy_tail_prob", "dropout_prob", "stale_prob",
    ])
    def test_rejects_out_of_range_fractions(self, field):
        with pytest.raises(ValueError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultConfig(**{field: -0.1})

    def test_rejects_shrinking_heavy_tail(self):
        with pytest.raises(ValueError):
            FaultConfig(heavy_tail_scale=0.5)

    def test_rejects_nonpositive_saturation(self):
        with pytest.raises(ValueError):
            FaultConfig(saturation_count=0.0)

    def test_rejects_damping_spike(self):
        with pytest.raises(ValueError):
            FaultConfig(phase_spike_mult=0.9)

    def test_any_faults_flags_each_axis(self):
        assert FaultConfig(noise_rel=0.1).any_faults
        assert FaultConfig(heavy_tail_prob=0.1).any_faults
        assert FaultConfig(dropout_prob=0.1).any_faults
        assert FaultConfig(stale_prob=0.1).any_faults
        assert FaultConfig(saturation_count=1e6).any_faults
        assert FaultConfig(phase_spike_mult=2.0).any_faults


class TestScaled:
    def test_scales_probabilities(self):
        cfg = FaultConfig(noise_rel=0.2, dropout_prob=0.4)
        half = cfg.scaled(0.5)
        assert half.noise_rel == pytest.approx(0.1)
        assert half.dropout_prob == pytest.approx(0.2)

    def test_clamps_at_one(self):
        cfg = FaultConfig(dropout_prob=0.6)
        assert cfg.scaled(10.0).dropout_prob == 1.0

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            FaultConfig().scaled(-1.0)


class TestNoiseProfile:
    def test_zero_severity_is_clean(self):
        assert not noise_profile(0.0).any_faults

    def test_severity_scales_every_axis(self):
        low, high = noise_profile(0.2), noise_profile(0.8)
        assert high.noise_rel > low.noise_rel > 0
        assert high.heavy_tail_prob > low.heavy_tail_prob > 0
        assert high.dropout_prob > low.dropout_prob > 0
        assert high.stale_prob > low.stale_prob > 0
        assert high.phase_spike_mult > low.phase_spike_mult > 1

    def test_rejects_out_of_range_severity(self):
        with pytest.raises(ValueError):
            noise_profile(1.5)
