"""Unit tests for the serving-chaos fault model (repro.faults.chaos)."""

import pytest

from repro.faults import ChaosConfig, ChaosPlan, ENV_SERVE_CHAOS, chaos_profile
from repro.obs import configure


class TestChaosConfig:
    def test_defaults_are_no_chaos(self):
        config = ChaosConfig()
        assert not config.any_chaos

    def test_any_chaos_per_axis(self):
        assert ChaosConfig(hang_prob=0.1).any_chaos
        assert ChaosConfig(crash_prob=0.1).any_chaos
        assert ChaosConfig(slow_prob=0.1).any_chaos
        assert ChaosConfig(corrupt_prob=0.1).any_chaos

    @pytest.mark.parametrize("field", [
        "hang_prob", "crash_prob", "slow_prob", "corrupt_prob",
    ])
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            ChaosConfig(**{field: -0.1})

    def test_durations_must_be_positive(self):
        with pytest.raises(ValueError):
            ChaosConfig(hang_s=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(slow_s=-1.0)

    def test_scaled_caps_at_one(self):
        config = ChaosConfig(hang_prob=0.4, crash_prob=0.6, seed=3)
        doubled = config.scaled(2.0)
        assert doubled.hang_prob == pytest.approx(0.8)
        assert doubled.crash_prob == 1.0
        assert doubled.seed == 3          # non-probability fields untouched
        with pytest.raises(ValueError):
            config.scaled(-1.0)

    def test_dict_round_trip(self):
        config = ChaosConfig(hang_prob=0.02, crash_prob=0.04,
                             slow_prob=0.2, slow_s=0.01,
                             corrupt_prob=0.1, seed=7)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestParse:
    def test_explicit_assignments(self):
        config = ChaosConfig.parse("hang=0.02,crash=0.04,slow=0.2,corrupt=0.1,seed=7")
        assert config.hang_prob == pytest.approx(0.02)
        assert config.crash_prob == pytest.approx(0.04)
        assert config.slow_prob == pytest.approx(0.2)
        assert config.corrupt_prob == pytest.approx(0.1)
        assert config.seed == 7

    def test_severity_composite_matches_profile(self):
        assert ChaosConfig.parse("severity=0.4") == chaos_profile(0.4)

    def test_explicit_overrides_severity(self):
        config = ChaosConfig.parse("severity=0.4,crash=0.0,seed=9")
        base = chaos_profile(0.4)
        assert config.crash_prob == 0.0
        assert config.seed == 9
        assert config.hang_prob == base.hang_prob
        assert config.slow_prob == base.slow_prob

    def test_preset_worker_hang(self):
        config = ChaosConfig.parse("worker_hang")
        assert config.hang_prob > 0
        assert config.crash_prob == 0.0
        assert config.corrupt_prob == 0.0
        assert config.any_chaos

    def test_empty_spec_is_no_chaos(self):
        assert not ChaosConfig.parse("").any_chaos

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            ChaosConfig.parse("hang")
        with pytest.raises(ValueError):
            ChaosConfig.parse("warp_core_breach=1.0")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_SERVE_CHAOS, raising=False)
        assert ChaosConfig.from_env() is None
        monkeypatch.setenv(ENV_SERVE_CHAOS, "severity=0.0")
        assert ChaosConfig.from_env() is None     # no-op config -> None
        monkeypatch.setenv(ENV_SERVE_CHAOS, "worker_hang")
        config = ChaosConfig.from_env()
        assert config is not None and config.hang_prob > 0


class TestChaosProfile:
    def test_zero_severity_is_healthy(self):
        assert not chaos_profile(0.0).any_chaos

    def test_axes_scale_together(self):
        lo, hi = chaos_profile(0.2), chaos_profile(0.4)
        assert hi.hang_prob == pytest.approx(2 * lo.hang_prob)
        assert hi.crash_prob == pytest.approx(2 * lo.crash_prob)
        assert hi.slow_prob == pytest.approx(2 * lo.slow_prob)
        assert hi.corrupt_prob == pytest.approx(2 * lo.corrupt_prob)

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            chaos_profile(1.5)


class TestChaosPlan:
    def test_corruption_is_deterministic_per_seed_and_worker(self):
        config = ChaosConfig(corrupt_prob=0.5, seed=7)
        results = [{"v": i} for i in range(4)]
        runs = []
        for _ in range(2):
            plan = ChaosPlan(config, worker_index=1)
            runs.append([plan.maybe_corrupt(list(results)) for _ in range(20)])
        assert runs[0] == runs[1]
        # Different workers draw from different streams.
        other = ChaosPlan(config, worker_index=2)
        other_run = [other.maybe_corrupt(list(results)) for _ in range(20)]
        assert other_run != runs[0]

    def test_respawn_generation_draws_a_fresh_schedule(self):
        # A respawned worker must not replay its predecessor's stream —
        # otherwise a first-draw crash becomes a permanent poison pill.
        config = ChaosConfig(corrupt_prob=0.5, seed=7)
        results = [{"v": i} for i in range(4)]
        gen0 = ChaosPlan(config, 1, generation=0)
        gen1 = ChaosPlan(config, 1, generation=1)
        run0 = [gen0.maybe_corrupt(list(results)) for _ in range(20)]
        run1 = [gen1.maybe_corrupt(list(results)) for _ in range(20)]
        assert run0 != run1
        # But a given incarnation is still fully deterministic.
        again = ChaosPlan(config, 1, generation=1)
        assert [again.maybe_corrupt(list(results)) for _ in range(20)] == run1

    def test_corruption_mangles_shape_or_body(self):
        plan = ChaosPlan(ChaosConfig(corrupt_prob=1.0, seed=1), 0)
        results = [{"v": 1}, {"v": 2}, {"v": 3}]
        saw_short = saw_junk = False
        for _ in range(50):
            mangled = plan.maybe_corrupt(list(results))
            if len(mangled) != len(results):
                saw_short = True
            elif all(isinstance(r, str) for r in mangled):
                saw_junk = True
        assert saw_short and saw_junk

    def test_no_corruption_when_disabled(self):
        plan = ChaosPlan(ChaosConfig(corrupt_prob=0.0, seed=1), 0)
        results = [{"v": 1}]
        assert plan.maybe_corrupt(results) is results

    def test_slow_jobs_counted_and_bounded(self):
        import time

        tracer = configure(enabled=True)
        tracer.reset()
        try:
            plan = ChaosPlan(
                ChaosConfig(slow_prob=1.0, slow_s=0.001, seed=5), 0
            )
            t0 = time.monotonic()
            for _ in range(5):
                plan.before_job()
            elapsed = time.monotonic() - t0
            assert tracer.counters()["serve.chaos.slow"] == 5.0
            # Uniform in [slow_s, 2*slow_s] per job.
            assert 0.005 <= elapsed < 0.5
        finally:
            configure(enabled=False)
            tracer.reset()
