"""Tests for the seeded fault-injection wrapper."""

import pytest

from repro.arch import power7
from repro.counters.pmu import CounterSample
from repro.faults import PROTECTED_EVENTS, FaultConfig, FaultyApp

pytestmark = pytest.mark.faults


class StationaryApp:
    """Fake app producing exact, rate-proportional counters."""

    def __init__(self, ipc=1.0, freq=1e9):
        self.arch = power7()
        self.freq = freq
        self.ipc = ipc
        self.phase_name = "steady"
        self.smt_level = 4
        self.switched_to = []

    def switch_level(self, level):
        self.switched_to.append(level)
        self.smt_level = level

    def advance(self, wall_seconds):
        cycles = wall_seconds * self.freq
        instrs = cycles * self.ipc
        events = {
            "CYCLES": cycles,
            "INSTRUCTIONS": instrs,
            "DISP_HELD_RES": 0.1 * cycles,
            "LD_CMPL": 0.2 * instrs,
            "ST_CMPL": 0.1 * instrs,
            "BR_CMPL": 0.15 * instrs,
            "FX_CMPL": 0.3 * instrs,
            "VS_CMPL": 0.25 * instrs,
            "L1_DMISS": 0.01 * instrs,
            "L2_MISS": 0.002 * instrs,
            "L3_MISS": 0.0005 * instrs,
            "BR_MISPRED": 0.001 * instrs,
        }
        return CounterSample(
            arch=self.arch,
            smt_level=self.smt_level,
            events=events,
            wall_time_s=wall_seconds,
            avg_thread_cpu_s=wall_seconds * 0.95,
            n_software_threads=32,
        )


SEVERE = FaultConfig(
    noise_rel=0.2, heavy_tail_prob=0.5, heavy_tail_scale=5.0,
    dropout_prob=0.5, stale_prob=0.2,
)


def stream(config, seed=7, n=20):
    app = FaultyApp(StationaryApp(), config, seed=seed)
    return [app.advance(0.1) for _ in range(n)], app


class TestPassthrough:
    def test_clean_config_is_identity(self):
        faulty = FaultyApp(StationaryApp(), FaultConfig(), seed=3)
        exact = StationaryApp().advance(0.1)
        sample = faulty.advance(0.1)
        assert dict(sample.events) == dict(exact.events)
        assert faulty.injections == {}

    def test_phase_name_forwarded(self):
        app = StationaryApp()
        faulty = FaultyApp(app, FaultConfig(), seed=3)
        assert faulty.phase_name == "steady"

    def test_switch_level_forwarded(self):
        app = StationaryApp()
        faulty = FaultyApp(app, FaultConfig(), seed=3)
        faulty.switch_level(2)
        assert app.switched_to == [2]


class TestDeterminism:
    def test_same_seed_same_corruption(self):
        a, _ = stream(SEVERE, seed=7)
        b, _ = stream(SEVERE, seed=7)
        for sa, sb in zip(a, b):
            assert dict(sa.events) == dict(sb.events)

    def test_different_seed_differs(self):
        a, _ = stream(SEVERE, seed=7)
        b, _ = stream(SEVERE, seed=8)
        assert any(
            dict(sa.events) != dict(sb.events) for sa, sb in zip(a, b)
        )


class TestDropout:
    def test_protected_events_always_survive(self):
        samples, app = stream(FaultConfig(dropout_prob=1.0), n=30)
        assert app.injections.get("dropout", 0) > 0
        for sample in samples:
            for name in PROTECTED_EVENTS:
                assert name in sample.events

    def test_drops_whole_groups(self):
        samples, _ = stream(FaultConfig(dropout_prob=1.0), n=30)
        exact = set(StationaryApp().advance(0.1).events)
        assert any(set(s.events) < exact for s in samples)


class TestOtherAxes:
    def test_saturation_clips(self):
        cap = 5e7
        samples, app = stream(FaultConfig(saturation_count=cap))
        assert app.injections.get("saturated", 0) > 0
        for sample in samples:
            assert max(sample.events.values()) <= cap

    def test_stale_returns_previous_interval(self):
        samples, app = stream(FaultConfig(stale_prob=1.0), n=3)
        assert app.injections.get("stale", 0) == 2
        # Every sample after the first repeats the first one.
        assert dict(samples[1].events) == dict(samples[0].events)
        assert dict(samples[2].events) == dict(samples[0].events)

    def test_noise_perturbs_each_event(self):
        samples, _ = stream(FaultConfig(noise_rel=0.1), n=1)
        exact = StationaryApp().advance(0.1)
        assert samples[0].events["CYCLES"] != pytest.approx(
            exact.events["CYCLES"], abs=1e-9
        )

    def test_heavy_tail_inflates_one_counter(self):
        samples, app = stream(
            FaultConfig(heavy_tail_prob=1.0, heavy_tail_scale=50.0), n=10
        )
        assert app.injections.get("heavy_tail", 0) > 0
        exact = StationaryApp().advance(0.1)
        blowups = 0
        for sample in samples:
            inflated = [
                name for name, v in sample.events.items()
                if v > 3.0 * exact.events[name]
            ]
            blowups += len(inflated)
            assert len(inflated) <= 1  # a glitch hits a single event
        assert blowups > 0

    def test_phase_spike_on_transition(self):
        app = StationaryApp()
        faulty = FaultyApp(
            app, FaultConfig(phase_spike_mult=3.0, phase_spike_intervals=1),
            seed=3,
        )
        before = faulty.advance(0.1)
        app.phase_name = "next-phase"
        spiked = faulty.advance(0.1)
        after = faulty.advance(0.1)
        assert spiked.events["DISP_HELD_RES"] == pytest.approx(
            3.0 * before.events["DISP_HELD_RES"]
        )
        assert after.events["DISP_HELD_RES"] == pytest.approx(
            before.events["DISP_HELD_RES"]
        )
        assert faulty.injections.get("phase_spike", 0) == 1

    def test_inner_app_always_advances(self):
        app = StationaryApp()
        seen = []
        original = app.advance

        def tracking(wall):
            seen.append(wall)
            return original(wall)

        app.advance = tracking
        faulty = FaultyApp(app, SEVERE, seed=7)
        for _ in range(5):
            faulty.advance(0.1)
        assert seen == [0.1] * 5
