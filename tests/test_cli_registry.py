"""Registry-driven CLI surface: no hardcoded architecture lists.

Regression tests for the bug where ``--system``/``--arch`` carried a
hardcoded ``choices=["p7", "power7", "nehalem"]``: registering a new
architecture must make it reachable from every CLI entry point without
touching ``cli.py``.
"""

import pytest

from repro.arch import armsmt
from repro.arch.registry import _BUILDERS, register_architecture
from repro.cli import _system, _system_help, _system_names, build_parser, main


@pytest.fixture()
def throwaway_arch():
    name = "tmp_cli_arch"
    register_architecture(name, lambda: armsmt(cores_per_chip=2))
    try:
        yield name
    finally:
        del _BUILDERS[name]


class TestSystemNames:
    def test_aliases_plus_registry(self):
        names = _system_names()
        assert names[:2] == ["p7", "p7x2"]
        for expected in ("power7", "nehalem", "armsmt",
                         "biglittle.big", "biglittle.little"):
            assert expected in names
        assert _system_help() == " | ".join(names)

    def test_new_arch_appears_everywhere(self, throwaway_arch):
        assert throwaway_arch in _system_names()
        # ``repro run --system`` resolves it...
        assert _system(throwaway_arch).arch.name == "ARMv8-SMT2"
        # ...and the robustness ``--arch`` choices pick it up because
        # the parser derives them from the registry at build time.
        parser = build_parser()
        args = parser.parse_args(
            ["robustness", "--arch", throwaway_arch, "--trials", "1"])
        assert args.arch == [throwaway_arch]

    def test_unknown_system_lists_registry(self):
        with pytest.raises(SystemExit) as excinfo:
            _system("sparc")
        message = str(excinfo.value)
        assert "armsmt" in message and "biglittle.big" in message


class TestRunOnNewArchs:
    def test_run_on_armsmt(self, capsys):
        assert main(["run", "EP", "--system", "armsmt", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "SMT2" in out and "SMT4" not in out

    def test_run_on_cluster(self, capsys):
        assert main(["run", "SSCA2", "--system", "biglittle.little",
                     "--smt", "2", "--no-cache"]) == 0
        assert "SMT2" in capsys.readouterr().out


class TestFleetNodes:
    def test_nodes_is_an_arch_mix_alias(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "--nodes", "power7:1,armsmt:1"])
        assert args.nodes == "power7:1,armsmt:1"
        assert args.arch_mix is None

    def test_nodes_and_arch_mix_conflict(self):
        with pytest.raises(SystemExit, match="pass one, not both"):
            main(["fleet", "--nodes", "power7:1",
                  "--arch-mix", "nehalem:1"])

    def test_hetero_nodes_run(self, capsys):
        assert main(["fleet", "--nodes", "biglittle:1", "--chips", "2",
                     "--jobs", "40"]) == 0
        out = capsys.readouterr().out
        assert "biglittle.big" in out and "biglittle.little" in out


class TestExperimentRegistry:
    def test_new_experiments_listed(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "armsmt-transfer" in out and "hetero" in out
