"""Tests for the stable public facade (:mod:`repro.api`)."""

import json

import pytest

import repro
import repro.api as api
from repro.core.metric import smtsm_from_run
from repro.experiments.runner import run_catalog
from repro.sim.results import speedup

EVENTS = {
    "CYCLES": 1e9, "INSTRUCTIONS": 6e8, "DISP_HELD_RES": 2e8,
    "LD_CMPL": 2.2e8, "ST_CMPL": 1.1e8, "BR_CMPL": 9e7,
    "FX_CMPL": 1.5e8, "VS_CMPL": 3e7,
}


@pytest.fixture(scope="module")
def session():
    return api.Session("p7", seed=11)


class TestPredict:
    def test_prediction_shape(self, session):
        p = session.predict("EP")
        assert p.workload == "EP"
        assert p.arch == "POWER7"
        assert p.measure_level == 4          # default: the max SMT level
        assert p.recommended_level in (p.high_level, p.low_level)
        assert (p.high_level, p.low_level) == (4, 1)
        assert p.smtsm >= 0.0
        assert p.wall_time_s > 0.0

    def test_payload_is_json_able(self, session):
        payload = session.predict("EP").payload()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["workload"] == "EP"
        assert set(round_tripped["factors"]) == {
            "mix_deviation", "dispatch_held", "scalability_ratio"
        }

    def test_recommendation_matches_threshold_rule(self, session):
        p = session.predict("EP")
        expected = p.high_level if p.smtsm <= p.threshold else p.low_level
        assert p.recommended_level == expected

    def test_predict_many_matches_singles(self, session):
        queries = [
            api.PredictQuery("EP"),
            api.PredictQuery("SSCA2", level=2),
            api.PredictQuery("CG", seed=13),
        ]
        batch = session.predict_many(queries)
        singles = [
            session.predict("EP"),
            session.predict("SSCA2", level=2),
            session.predict("CG", seed=13),
        ]
        for got, want in zip(batch, singles):
            assert got.workload == want.workload
            assert got.measure_level == want.measure_level
            assert got.smtsm == pytest.approx(want.smtsm, rel=1e-9)
            assert got.recommended_level == want.recommended_level

    def test_predict_many_accepts_dicts(self, session):
        (p,) = session.predict_many([{"workload": "EP", "level": 2}])
        assert p.measure_level == 2

    def test_unknown_workload_raises(self, session):
        with pytest.raises(KeyError):
            session.predict("doom")

    def test_fixed_threshold_skips_fitting(self):
        fixed = api.Session("p7", threshold=0.5)
        p = fixed.predict("EP")
        assert p.threshold == 0.5
        assert fixed._fit_runs is None       # no catalog sweep happened

    def test_fitted_predictor_matches_paper_fit(self, session):
        # The session's lazily fitted predictor reproduces what fitting
        # directly on the same catalog observations yields.
        from repro.core.predictor import Observation, SmtPredictor

        runs = run_catalog("p7", seed=11)
        observations = [
            Observation(
                name=name,
                metric=smtsm_from_run(runs.runs[name][4]).value,
                speedup=speedup(runs.runs[name][4], runs.runs[name][1]),
            )
            for name in runs.complete_names((1, 4))
        ]
        direct = SmtPredictor.fit(observations, high_level=4, low_level=1)
        assert session.predictor().threshold == pytest.approx(
            direct.threshold, rel=1e-12
        )


class TestSweep:
    def test_sweep_summary_shape(self, session):
        summary = session.sweep_summary(["EP", "CG"], (1, 4))
        assert summary["arch"] == "POWER7"
        assert summary["levels"] == [1, 4]
        assert set(summary["workloads"]) == {"EP", "CG"}
        cell = summary["workloads"]["EP"]["4"]
        assert cell["wall_time_s"] > 0
        assert cell["instructions_per_second"] > 0
        assert cell["smtsm"] >= 0
        json.dumps(summary)                  # wire-format safe

    def test_sweep_returns_catalog_runs(self, session):
        runs = session.sweep(["EP"], (1, 4))
        assert set(runs.runs) == {"EP"}
        assert set(runs.runs["EP"]) == {1, 4}


class TestScoreCounters:
    def test_matches_direct_metric(self, session):
        result = session.score_counters(
            EVENTS, smt_level=2, wall_time_s=1.0,
            avg_thread_cpu_s=0.9, n_software_threads=8,
        )
        assert result.value == pytest.approx(
            result.mix_deviation * result.dispatch_held
            * result.scalability_ratio
        )
        assert result.smt_level == 2

    def test_missing_events_raise(self, session):
        with pytest.raises((KeyError, ValueError)):
            session.score_counters(
                {"CYCLES": 1e9}, smt_level=2, wall_time_s=1.0,
                avg_thread_cpu_s=0.9, n_software_threads=8,
            )


class TestModuleLevel:
    def test_shared_session_is_reused(self):
        assert api.get_session("p7", seed=11) is api.get_session("p7", seed=11)
        assert api.get_session("p7", seed=11) is not api.get_session("p7", seed=12)

    def test_top_level_reexports(self):
        assert repro.Session is api.Session
        assert repro.predict is api.predict
        assert repro.sweep is api.sweep
        assert repro.score_counters is api.score_counters

    def test_module_level_predict(self):
        p = api.predict("EP", "p7")
        assert p.workload == "EP"
        assert p.recommended_level in (1, 4)
