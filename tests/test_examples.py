"""Smoke tests: the example scripts run end-to-end.

The slowest examples (full-suite characterization, the optimizer demo)
are exercised through their underlying experiment tests; here we run
the quick ones as real subprocesses to catch import/CLI drift.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "EP")
        assert proc.returncode == 0, proc.stderr
        assert "SMTsm @SMT4" in proc.stdout
        assert "recommend SMT4" in proc.stdout

    def test_quickstart_contended_workload(self):
        proc = run_example("quickstart.py", "SPECjbb_contention")
        assert proc.returncode == 0, proc.stderr
        assert "recommend SMT1" in proc.stdout

    def test_port_the_metric(self):
        proc = run_example("port_the_metric.py")
        assert proc.returncode == 0, proc.stderr
        assert "Fictional4W" in proc.stdout
        assert "Gini" in proc.stdout and "PPI" in proc.stdout

    def test_perf_sampling(self):
        proc = run_example("perf_sampling.py")
        assert proc.returncode == 0, proc.stderr
        assert "PHASE CHANGE" in proc.stdout
