"""Tests for the heterogeneous (per-thread stream) system solver."""

import pytest

from repro.sim.chip import solve_chip, solve_system
from repro.simos.scheduler import Placement, place_threads
from repro.simos.system import SystemSpec
from repro.arch import power7

from tests.sim.helpers import balanced_stream, fx_heavy_stream, memory_stream


P7 = SystemSpec(power7(), 1)


class TestSolveSystem:
    def test_matches_homogeneous_solver(self):
        placement = place_threads(P7, 4, 32)
        stream = balanced_stream()
        hetero = solve_system(placement, [stream] * 32)
        homo = solve_chip(placement, stream)
        assert hetero.aggregate_ipc == pytest.approx(homo.aggregate_ipc, rel=1e-6)
        assert hetero.mem_latency_mult == pytest.approx(homo.mem_latency_mult, rel=1e-3)

    def test_stream_count_must_match(self):
        placement = place_threads(P7, 4, 8)
        with pytest.raises(ValueError, match="one stream per thread"):
            solve_system(placement, [balanced_stream()] * 7)

    def test_requires_assignment(self):
        placement = Placement(P7, 2, 2, (2,) + (0,) * 7, assignment=())
        with pytest.raises(ValueError, match="assignment"):
            solve_system(placement, [balanced_stream()] * 2)

    def test_thread_values_follow_thread_order(self):
        # Two threads on one core: a compute stream and a memory stream;
        # the compute thread must show the higher IPC regardless of slot.
        placement = Placement(
            P7, 2, 2, (2,) + (0,) * 7, assignment=(0, 0)
        )
        fast, slow = balanced_stream(), memory_stream()
        sol = solve_system(placement, [fast, slow])
        assert sol.thread_ipc(0) > sol.thread_ipc(1)
        sol_swapped = solve_system(placement, [slow, fast])
        assert sol_swapped.thread_ipc(1) > sol_swapped.thread_ipc(0)

    def test_heterogeneous_cores_differ(self):
        # Core 0 runs two FX-heavy threads (port contention), core 1 a
        # complementary pair: the complementary core should out-run it.
        placement = Placement(
            P7, 2, 4, (2, 2) + (0,) * 6, assignment=(0, 0, 1, 1)
        )
        fx = fx_heavy_stream()
        bal = balanced_stream()
        sol = solve_system(placement, [fx, fx, fx, bal])
        contended = sol.core_outputs[0]
        mixed = sol.core_outputs[1]
        assert contended.port_scale <= mixed.port_scale

    def test_per_thread_ipc_length(self):
        placement = place_threads(P7, 2, 10)
        sol = solve_system(placement, [balanced_stream()] * 10)
        assert len(sol.per_thread_ipc()) == 10
