"""Tests for the cache-sharing model."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import nehalem, power7
from repro.sim.cache import (
    MAX_PRESSURE_SCALE,
    CacheModel,
    SharingContext,
    effective_sharers,
)
from repro.sim.stream import MemoryBehavior

from tests.sim.helpers import balanced_stream, memory_stream, thrashy_fp_stream


class TestSharingContext:
    def test_rejects_chip_below_core(self):
        with pytest.raises(ValueError):
            SharingContext(threads_per_core=4, threads_per_chip=2)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            SharingContext(threads_per_core=0, threads_per_chip=0)


class TestEffectiveSharers:
    def test_no_sharing_full_pressure(self):
        assert effective_sharers(4, 0.0) == 4.0

    def test_full_sharing_no_pressure(self):
        assert effective_sharers(4, 1.0) == 1.0

    def test_partial(self):
        assert effective_sharers(5, 0.5) == 3.0


class TestPressureScale:
    def setup_method(self):
        self.model = CacheModel(power7())

    def test_identity_at_reference(self):
        assert self.model.pressure_scale(32.0, 32.0, 0.5) == 1.0

    def test_less_capacity_more_misses(self):
        assert self.model.pressure_scale(32.0, 8.0, 1.0) == pytest.approx(4.0)

    def test_more_capacity_fewer_misses(self):
        assert self.model.pressure_scale(32.0, 64.0, 1.0) == pytest.approx(0.5)

    def test_streaming_alpha_zero_insensitive(self):
        assert self.model.pressure_scale(32.0, 1.0, 0.0) == 1.0

    def test_capped(self):
        assert self.model.pressure_scale(32.0, 0.001, 2.0) == MAX_PRESSURE_SCALE

    @given(st.floats(min_value=0.1, max_value=100.0), st.floats(min_value=0.0, max_value=2.0))
    def test_always_positive_and_bounded(self, c_actual, alpha):
        s = self.model.pressure_scale(32.0, c_actual, alpha)
        assert 1.0 / MAX_PRESSURE_SCALE <= s <= MAX_PRESSURE_SCALE


class TestEffectiveRates:
    def setup_method(self):
        self.model = CacheModel(power7())

    def test_monotone_hierarchy_enforced(self):
        rates = self.model.effective_rates(
            thrashy_fp_stream().memory, SharingContext(4, 32)
        )
        assert rates.l1_mpki >= rates.l2_mpki >= rates.l3_mpki

    def test_more_core_sharers_more_l1_misses(self):
        mem = thrashy_fp_stream().memory
        r1 = self.model.effective_rates(mem, SharingContext(1, 8))
        r4 = self.model.effective_rates(mem, SharingContext(4, 32))
        assert r4.l1_mpki > r1.l1_mpki

    def test_streaming_workload_insensitive(self):
        mem = memory_stream().memory
        r1 = self.model.effective_rates(mem, SharingContext(1, 8))
        r4 = self.model.effective_rates(mem, SharingContext(4, 32))
        assert r4.l3_mpki == pytest.approx(r1.l3_mpki, rel=0.10)

    def test_data_sharing_damps_pressure(self):
        base = thrashy_fp_stream().memory
        shared = MemoryBehavior(
            base.l1_mpki, base.l2_mpki, base.l3_mpki, base.locality_alpha, 0.9
        )
        r_priv = self.model.effective_rates(base, SharingContext(4, 32))
        r_shared = self.model.effective_rates(shared, SharingContext(4, 32))
        assert r_shared.l1_mpki < r_priv.l1_mpki

    def test_nehalem_smaller_l3_raises_l3_misses(self):
        # The Streamcluster mechanism (paper §IV-A): Nehalem's 2 MB/thread
        # L3 vs POWER7's 4 MB/core.
        mem = MemoryBehavior(30, 15, 3, locality_alpha=1.2, data_sharing=0.2)
        p7 = CacheModel(power7()).effective_rates(mem, SharingContext(1, 8))
        nh = CacheModel(nehalem()).effective_rates(mem, SharingContext(1, 4))
        assert nh.l3_mpki > p7.l3_mpki

    def test_exclusive_hit_rates(self):
        rates = self.model.effective_rates(balanced_stream().memory, SharingContext(1, 8))
        assert rates.l2_hit_mpki == pytest.approx(rates.l1_mpki - rates.l2_mpki)
        assert rates.l3_hit_mpki >= 0


class TestStalls:
    def setup_method(self):
        self.model = CacheModel(power7())
        self.sharing = SharingContext(1, 8)

    def test_low_miss_stream_small_stall(self):
        s = balanced_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        assert self.model.memory_stall_per_instruction(rates, s) < 0.1

    def test_memory_stream_large_stall(self):
        s = memory_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        assert self.model.memory_stall_per_instruction(rates, s) > 1.0

    def test_latency_multiplier_increases_stall(self):
        s = memory_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        base = self.model.memory_stall_per_instruction(rates, s)
        inflated = self.model.memory_stall_per_instruction(rates, s, mem_latency_mult=2.0)
        assert inflated > 1.5 * base

    def test_numa_extra_latency_increases_stall(self):
        s = memory_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        base = self.model.memory_stall_per_instruction(rates, s)
        remote = self.model.memory_stall_per_instruction(rates, s, extra_mem_latency=100.0)
        assert remote > base

    def test_mlp_divides_stall(self):
        lo = memory_stream(mlp=1.0)
        hi = memory_stream(mlp=8.0)
        rates = self.model.effective_rates(lo.memory, self.sharing)
        assert self.model.memory_stall_per_instruction(
            rates, lo
        ) == pytest.approx(8 * self.model.memory_stall_per_instruction(rates, hi))

    def test_long_stall_excludes_l2(self):
        s = memory_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        assert self.model.long_stall_per_instruction(
            rates, s
        ) <= self.model.memory_stall_per_instruction(rates, s)

    def test_rejects_mult_below_one(self):
        s = memory_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        with pytest.raises(ValueError):
            self.model.memory_stall_per_instruction(rates, s, mem_latency_mult=0.5)

    def test_traffic_proportional_to_l3_misses(self):
        s = memory_stream()
        rates = self.model.effective_rates(s.memory, self.sharing)
        traffic = self.model.traffic_bytes_per_instruction(rates, s.memory)
        expected = rates.l3_mpki / 1000 * 128 * 1.3
        assert traffic == pytest.approx(expected)
