"""Tests for the fast (mean-value-analysis) core solver."""

import numpy as np
import pytest

from repro.arch import nehalem, power7
from repro.sim.fast_core import CoreInput, effective_smt_mode, solve_core

from tests.sim.helpers import (
    balanced_stream,
    fx_heavy_stream,
    memory_stream,
    thrashy_fp_stream,
)


def core(arch, smt, stream, k=None, **kwargs):
    k = k if k is not None else smt
    defaults = dict(threads_per_chip=k)
    defaults.update(kwargs)
    return solve_core(CoreInput(arch, smt, tuple([stream] * k), **defaults))


class TestValidation:
    def test_rejects_too_many_streams(self):
        with pytest.raises(ValueError, match="exceed"):
            core(power7(), 2, balanced_stream(), k=3)

    def test_rejects_empty_streams(self):
        with pytest.raises(ValueError, match="at least one"):
            solve_core(CoreInput(power7(), 1, (), threads_per_chip=1))

    def test_rejects_bad_latency_mult(self):
        with pytest.raises(ValueError):
            core(power7(), 1, balanced_stream(), mem_latency_mult=0.9)

    def test_rejects_unsupported_level(self):
        with pytest.raises(ValueError):
            core(nehalem(), 4, balanced_stream(), k=1)


class TestSingleThread:
    def test_balanced_ipc_near_ilp(self):
        out = core(power7(), 1, balanced_stream())
        # Low stalls: IPC should approach the stream's ILP.
        assert 1.2 < out.ipc[0] <= 1.8

    def test_memory_bound_ipc_low(self):
        out = core(power7(), 1, memory_stream())
        assert out.ipc[0] < 0.8

    def test_no_saturation_single_thread(self):
        out = core(power7(), 1, balanced_stream())
        assert out.port_scale == 1.0

    def test_port_utilization_shape_and_bounds(self):
        out = core(power7(), 1, balanced_stream())
        assert out.port_utilization.shape == (4,)
        assert np.all(out.port_utilization >= 0)
        assert np.all(out.port_utilization <= 1.0 + 1e-9)


class TestSmtScaling:
    def test_balanced_gains_from_smt(self):
        solo = core(power7(), 1, balanced_stream())
        smt4 = core(power7(), 4, balanced_stream())
        assert 1.5 < smt4.core_ipc / solo.core_ipc < 3.0

    def test_fx_heavy_saturates_ports(self):
        smt4 = core(power7(), 4, fx_heavy_stream())
        assert smt4.port_scale < 1.0

    def test_fx_heavy_gains_less_than_balanced(self):
        gain_fx = core(power7(), 4, fx_heavy_stream()).core_ipc / core(
            power7(), 1, fx_heavy_stream()
        ).core_ipc
        gain_bal = core(power7(), 4, balanced_stream()).core_ipc / core(
            power7(), 1, balanced_stream()
        ).core_ipc
        assert gain_fx < gain_bal

    def test_per_thread_ipc_drops_with_smt(self):
        solo = core(power7(), 1, balanced_stream())
        smt4 = core(power7(), 4, balanced_stream())
        assert smt4.ipc[0] < solo.ipc[0]

    def test_nehalem_smt2_gains(self):
        solo = core(nehalem(), 1, balanced_stream(), threads_per_chip=4)
        smt2 = core(nehalem(), 2, balanced_stream(), threads_per_chip=8)
        assert 1.1 < smt2.core_ipc / solo.core_ipc < 2.0


class TestDispatchHeld:
    def test_low_for_balanced(self):
        assert core(power7(), 4, balanced_stream()).dispatch_held_fraction < 0.1

    def test_high_for_memory_bound(self):
        assert core(power7(), 4, memory_stream()).dispatch_held_fraction > 0.5

    def test_rises_with_port_saturation(self):
        solo = core(power7(), 1, fx_heavy_stream())
        smt4 = core(power7(), 4, fx_heavy_stream())
        assert smt4.dispatch_held_fraction > solo.dispatch_held_fraction + 0.2

    def test_bounded(self):
        for stream in (balanced_stream(), memory_stream(), fx_heavy_stream()):
            out = core(power7(), 4, stream)
            assert 0.0 <= out.dispatch_held_fraction <= 1.0


class TestMemoryCoupling:
    def test_latency_mult_lowers_throughput(self):
        base = core(power7(), 4, memory_stream())
        slow = core(power7(), 4, memory_stream(), mem_latency_mult=3.0)
        assert slow.core_ipc < base.core_ipc

    def test_traffic_positive_for_memory_stream(self):
        assert core(power7(), 1, memory_stream()).traffic_bytes_per_cycle > 1.0

    def test_traffic_negligible_for_compute(self):
        assert core(power7(), 1, balanced_stream()).traffic_bytes_per_cycle < 0.1

    def test_l3_sharing_hurts_thrashy_stream(self):
        few = core(power7(), 4, thrashy_fp_stream(), threads_per_chip=4)
        many = core(power7(), 4, thrashy_fp_stream(), threads_per_chip=32)
        assert many.core_ipc < few.core_ipc


class TestEffectiveSmtMode:
    def test_one_thread_is_smt1(self):
        assert effective_smt_mode(power7(), 1) == 1

    def test_three_threads_need_smt4(self):
        assert effective_smt_mode(power7(), 3) == 4

    def test_overflow_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            effective_smt_mode(nehalem(), 3)
