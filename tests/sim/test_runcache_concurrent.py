"""Concurrent multi-process runcache writers: no torn reads, no losses.

The serving tier's worker pool points N processes at one cache
directory with no coordination beyond the cache's own atomic-publish
protocol (mkstemp + os.replace, schema-checked reads).  These tests
hammer that protocol from real child processes — every worker writes
and re-reads the *same* key set simultaneously — and assert the three
guarantees docs/scaling.md relies on:

* no torn reads: every ``get`` returns either ``None`` or a complete,
  schema-valid payload (``runcache.corrupt`` and
  ``runcache.schema_mismatch`` stay zero in every process);
* no lost entries: after the storm, every key resolves to the exact
  result any single process would have written;
* no stray state: no orphaned ``*.tmp`` files survive a clean run, and
  ``clear()`` sweeps ones a killed writer would leave.
"""

import json
import multiprocessing
import os

import pytest

from repro.sim.engine import RunSpec, simulate_run
from repro.sim.runcache import PAYLOAD_SCHEMA, RunCache, run_cache_key
from repro.simos import SystemSpec
from repro.util.rng import RngStream
from repro.workloads.synthetic import random_workload

N_PROCS = 4
N_KEYS = 6
ROUNDS = 8


def make_specs(n=N_KEYS):
    from repro.arch import power7

    arch = power7()
    specs = []
    for i in range(n):
        workload = random_workload(RngStream(100 + i))
        specs.append(RunSpec(
            system=SystemSpec(arch, 1),
            smt_level=2,
            stream=workload.stream,
            sync=workload.sync,
            seed=11,
        ))
    return specs


def _storm_worker(cache_dir, result_q, barrier):
    """One writer/reader process: put+get every key, ROUNDS times over."""
    from repro.obs import detach_in_subprocess

    tracer = detach_in_subprocess(enabled=True)
    cache = RunCache(cache_dir)
    specs = make_specs()
    results = [simulate_run(spec) for spec in specs]
    barrier.wait()          # all processes enter the storm together
    torn = 0
    for _ in range(ROUNDS):
        for spec, result in zip(specs, results):
            cache.put(spec, result)
            got = cache.get(spec)
            # A concurrent writer may have unlinked/replaced the entry,
            # so None is legal — a *wrong* result is not.
            if got is not None and got.useful_instructions != result.useful_instructions:
                torn += 1
    counters = tracer.counters()
    result_q.put({
        "pid": os.getpid(),
        "torn": torn,
        "corrupt": counters.get("runcache.corrupt", 0.0),
        "schema_mismatch": counters.get("runcache.schema_mismatch", 0.0),
        "hits": counters.get("runcache.hits", 0.0),
        "puts": counters.get("runcache.puts", 0.0),
    })


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "runcache"


class TestConcurrentWriters:
    def test_storm_no_torn_reads_no_lost_entries(self, cache_dir):
        ctx = multiprocessing.get_context("fork")
        result_q = ctx.Queue()
        barrier = ctx.Barrier(N_PROCS)
        procs = [
            ctx.Process(target=_storm_worker,
                        args=(str(cache_dir), result_q, barrier))
            for _ in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        reports = [result_q.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        # No process ever saw a torn, corrupt or mis-schema'd entry.
        for report in reports:
            assert report["torn"] == 0, report
            assert report["corrupt"] == 0, report
            assert report["schema_mismatch"] == 0, report
            assert report["puts"] == N_KEYS * ROUNDS, report
        # With every process writing before reading, the overwhelming
        # majority of reads must have been served (hits), proving the
        # writers actually interleaved on live entries.
        total_hits = sum(r["hits"] for r in reports)
        assert total_hits > 0

        # No lost entries: every key is present and exactly equal to a
        # fresh single-process read.
        cache = RunCache(cache_dir)
        specs = make_specs()
        for spec in specs:
            got = cache.get(spec)
            assert got is not None, "entry lost after concurrent storm"
            expected = simulate_run(spec)
            assert got.useful_instructions == expected.useful_instructions
            assert dict(got.events) == dict(expected.events)
            assert got.per_thread_ipc == expected.per_thread_ipc
        assert len(cache) == N_KEYS

        # Atomic publish leaves no temp droppings behind.
        assert list(cache_dir.glob("*.tmp")) == []

    def test_interleaved_readers_see_valid_schema_only(self, cache_dir):
        # Readers racing a writer never observe a partially-written
        # payload: each on-disk entry parses and carries the schema
        # stamp at every instant after its first publish.
        cache = RunCache(cache_dir)
        spec = make_specs(1)[0]
        result = simulate_run(spec)
        cache.put(spec, result)
        path = cache_dir / f"{run_cache_key(spec)}.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == PAYLOAD_SCHEMA

    def test_clear_sweeps_orphaned_tmp_files(self, cache_dir):
        # A writer killed mid-put leaves an exclusive *.tmp file; clear()
        # removes it along with the entries.
        cache = RunCache(cache_dir)
        spec = make_specs(1)[0]
        cache.put(spec, simulate_run(spec))
        orphan = cache_dir / "deadbeef.tmp"
        orphan.write_text("{\"partial")
        removed = cache.clear()
        assert removed == 1
        assert not orphan.exists()
        assert list(cache_dir.glob("*")) == []
