"""The columnar ScenarioTable engine vs the serial reference.

Every test drives the same :class:`RunSpec` set down both paths and
holds the table's results to the repository-wide 1e-9 equivalence bound
via the differential pillar's ``compare_runs`` — including the shapes
the lockstep solver finds hardest: ragged batches mixing architectures,
SMT levels, thread counts and chip counts; and degenerate single-row
tables where no lockstep amortization exists at all.
"""

import pytest

from repro.arch import nehalem, power7
from repro.check.differential import REL_TOL, compare_runs
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.table import ScenarioTable, simulate_many_columnar
from repro.simos import SystemSpec
from repro.workloads import all_workloads

from .helpers import balanced_stream, memory_stream, thrashy_fp_stream


#: One shared instance per architecture: a ScenarioTable groups rows by
#: Architecture identity, exactly as run_catalog and the api session do.
P7 = power7()
NHM = nehalem()


def _catalog_spec(name, level, *, arch=None, n_chips=1, seed=11, **kwargs):
    workload = all_workloads()[name]
    system = SystemSpec(arch if arch is not None else P7, n_chips)
    return RunSpec(system=system, smt_level=level, stream=workload.stream,
                   sync=workload.sync, seed=seed, **kwargs)


def assert_equivalent(specs, results):
    assert len(results) == len(specs)
    for spec, got in zip(specs, results):
        diffs = compare_runs(simulate_run(spec), got, REL_TOL)
        assert not diffs, (spec.smt_level, diffs)


class TestRoundTrip:
    def test_single_row_table(self):
        specs = [_catalog_spec("EP", 4)]
        assert_equivalent(specs, simulate_many_columnar(specs))

    def test_catalog_batch(self):
        specs = [
            _catalog_spec(name, level)
            for name in ("EP", "SSCA2", "Fluidanimate", "SPECjbb_contention")
            for level in (1, 2, 4)
        ]
        assert_equivalent(specs, simulate_many_columnar(specs))

    def test_ragged_batch_mixed_archs_levels_and_chips(self):
        p7, nhm = P7, NHM
        specs = [
            _catalog_spec("EP", 4, arch=p7),
            _catalog_spec("SSCA2", 1, arch=nhm, seed=3),
            _catalog_spec("Fluidanimate", 2, arch=p7, n_chips=2),
            _catalog_spec("IS", 2, arch=nhm, n_chips=2, seed=7),
            _catalog_spec("SPECjbb_contention", 4, arch=p7,
                          n_threads=3, noise_rel=0.0),
            _catalog_spec("EP", 1, arch=p7, seed=5),
        ]
        assert_equivalent(specs, simulate_many_columnar(specs))

    def test_synthetic_streams_round_trip(self):
        arch = P7
        workload = all_workloads()["SPECjbb_contention"]
        specs = [
            RunSpec(system=SystemSpec(arch, 1), smt_level=level,
                    stream=stream, sync=workload.sync, seed=11)
            for stream in (balanced_stream(), memory_stream(),
                           thrashy_fp_stream())
            for level in (1, 4)
        ]
        assert_equivalent(specs, simulate_many_columnar(specs))

    def test_empty_batch(self):
        assert simulate_many_columnar([]) == []

    def test_input_order_preserved_across_arch_groups(self):
        # Interleave the two architecture groups: results must come back
        # in input order even though the table solves them group-wise.
        p7, nhm = P7, NHM
        specs = [
            _catalog_spec("EP", 4, arch=p7),
            _catalog_spec("EP", 2, arch=nhm),
            _catalog_spec("SSCA2", 4, arch=p7),
            _catalog_spec("SSCA2", 2, arch=nhm),
        ]
        results = simulate_many_columnar(specs)
        for spec, got in zip(specs, results):
            assert got.n_threads == spec.resolved_threads()
        assert_equivalent(specs, results)


class TestScenarioTable:
    def test_table_run_matches_serial(self):
        specs = [_catalog_spec("EP", level) for level in (1, 2, 4)]
        table = ScenarioTable(specs)
        assert_equivalent(specs, table.run())

    def test_table_rejects_mixed_architectures(self):
        specs = [_catalog_spec("EP", 4, arch=P7),
                 _catalog_spec("EP", 2, arch=NHM)]
        with pytest.raises(ValueError):
            ScenarioTable(specs)

    def test_run_is_repeatable(self):
        specs = [_catalog_spec("SSCA2", 4)]
        table = ScenarioTable(specs)
        first = table.run()[0]
        second = ScenarioTable(specs).run()[0]
        assert compare_runs(first, second, rel_tol=0.0) == []
