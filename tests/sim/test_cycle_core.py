"""Tests for the cycle-accurate pipeline engine."""

import pytest

from repro.arch import nehalem, power7
from repro.arch.classes import InstrClass
from repro.sim.cycle_core import CycleCore, InstructionGenerator
from repro.sim.cache import CacheModel, SharingContext
from repro.sim.queues import IssueQueue, QueueEntry
from repro.util.rng import RngStream

from tests.sim.helpers import balanced_stream, fx_heavy_stream, memory_stream


def make_core(arch=None, smt=1, stream=None, k=None, seed=5):
    arch = arch or power7()
    stream = stream or balanced_stream()
    k = k or smt
    return CycleCore(arch, smt, [stream] * k, seed=seed)


class TestIssueQueue:
    def test_per_thread_limit(self):
        q = IssueQueue(2, 2)
        q.insert(QueueEntry(0, 0, InstrClass.FX, 0, None, 0.0, False))
        q.insert(QueueEntry(1, 0, InstrClass.FX, 0, None, 0.0, False))
        assert not q.has_room(0)
        assert q.has_room(1)
        with pytest.raises(RuntimeError, match="full"):
            q.insert(QueueEntry(2, 0, InstrClass.FX, 0, None, 0.0, False))

    def test_ready_respects_dependences(self):
        q = IssueQueue(1, 8)
        q.insert(QueueEntry(0, 0, InstrClass.FX, 0, None, 0.0, False))
        q.insert(QueueEntry(1, 0, InstrClass.FX, 0, dep_seq=0, extra_latency=0.0, mispredict=False))
        # Producer not completed: only seq 0 is ready.
        ready = list(q.ready_for_port(0, {0: {}}, now=5))
        assert [e.seq for e in ready] == [0]
        # Producer completed at cycle 3 -> dependant ready from cycle 4.
        ready = list(q.ready_for_port(0, {0: {0: 3.0}}, now=5))
        assert any(e.seq == 1 for e in ready)

    def test_retire_frees_entries(self):
        q = IssueQueue(1, 2)
        e = QueueEntry(0, 0, InstrClass.FX, 0, None, 0.0, False)
        q.insert(e)
        e.issued = True
        e.finish_cycle = 3.0
        assert q.retire_finished(2.0) == []
        done = q.retire_finished(3.0)
        assert done == [e]
        assert q.has_room(0)

    def test_long_latency_outstanding(self):
        q = IssueQueue(1, 4)
        e = QueueEntry(0, 0, InstrClass.LOAD, 0, None, extra_latency=300.0, mispredict=False)
        q.insert(e)
        assert not q.has_long_latency_outstanding(0, 27.0, now=0)
        e.issued = True
        e.finish_cycle = 300.0
        assert q.has_long_latency_outstanding(0, 27.0, now=0)
        assert not q.has_long_latency_outstanding(0, 27.0, now=301)


class TestInstructionGenerator:
    def make_gen(self, stream):
        arch = power7()
        rates = CacheModel(arch).effective_rates(stream.memory, SharingContext(1, 8))
        return InstructionGenerator(stream, rates, arch, RngStream(1), 0)

    def test_sequence_numbers_increase(self):
        gen = self.make_gen(balanced_stream())
        instrs = [gen.next_instruction() for _ in range(10)]
        assert [i.seq for i in instrs] == list(range(10))

    def test_mix_statistics(self):
        gen = self.make_gen(fx_heavy_stream())
        instrs = [gen.next_instruction() for _ in range(3000)]
        fx_frac = sum(1 for i in instrs if i.klass is InstrClass.FX) / len(instrs)
        assert fx_frac == pytest.approx(0.78, abs=0.04)

    def test_memory_stream_generates_misses(self):
        gen = self.make_gen(memory_stream())
        instrs = [gen.next_instruction() for _ in range(3000)]
        long_misses = [i for i in instrs if i.extra_latency >= 300]
        assert len(long_misses) > 50

    def test_compute_stream_rarely_misses(self):
        gen = self.make_gen(balanced_stream())
        instrs = [gen.next_instruction() for _ in range(3000)]
        long_misses = [i for i in instrs if i.extra_latency >= 300]
        assert len(long_misses) < 10

    def test_mispredicts_only_on_branches(self):
        gen = self.make_gen(balanced_stream())
        instrs = [gen.next_instruction() for _ in range(2000)]
        assert all(i.klass is InstrClass.BRANCH for i in instrs if i.mispredict)

    def test_ports_follow_routing(self):
        gen = self.make_gen(balanced_stream())
        arch = power7()
        ls = arch.topology.port_index("LS")
        for instr in (gen.next_instruction() for _ in range(500)):
            if instr.klass in (InstrClass.LOAD, InstrClass.STORE):
                assert instr.port == ls


class TestCycleCore:
    def test_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            CycleCore(power7(), 1, [balanced_stream()] * 2)
        with pytest.raises(ValueError, match="at least one"):
            CycleCore(power7(), 1, [])

    def test_single_thread_reasonable_ipc(self):
        res = make_core().run(3000)
        assert 0.5 < res.core_ipc < 2.5

    def test_smt_increases_core_ipc(self):
        solo = make_core(smt=1).run(3000)
        smt4 = make_core(smt=4).run(3000)
        assert smt4.core_ipc > solo.core_ipc * 1.3

    def test_memory_bound_low_ipc_high_held(self):
        res = make_core(stream=memory_stream(), smt=2, k=2).run(4000)
        assert res.core_ipc < 1.0
        assert res.dispatch_held_fraction > 0.3

    def test_balanced_low_held(self):
        res = make_core(smt=2, k=2).run(4000)
        assert res.dispatch_held_fraction < 0.4

    def test_port_issues_recorded(self):
        res = make_core().run(2000)
        assert sum(res.port_issues) == pytest.approx(sum(res.instructions), rel=0.2)

    def test_counters_reset_after_warmup(self):
        core = make_core()
        res = core.run(1000, warmup=200)
        assert res.cycles == 1000

    def test_deterministic(self):
        a = make_core(seed=9).run(1500)
        b = make_core(seed=9).run(1500)
        assert a.instructions == b.instructions
        assert a.dispatch_held_cycles == b.dispatch_held_cycles

    def test_nehalem_core_runs(self):
        res = make_core(arch=nehalem(), smt=2, k=2).run(2000)
        assert res.core_ipc > 0.3

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            make_core().run(0)
