"""The batched solvers must agree with the scalar reference engines.

`solve_core_batch` and `solve_chip_batch` are pure performance features:
any scenario they accept must produce the same numbers the scalar
`solve_core`/`solve_chip` produce, to floating-point round-off.  The
property suite drives random workloads through both and pins agreement
at <= 1e-9 relative error (observed disagreement is ~1e-15 — the bound
leaves room for reassociation only, never model drift).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import nehalem, power7
from repro.sim.chip import solve_chip, solve_chip_batch
from repro.sim.fast_core import CoreBatch, CoreInput, solve_core, solve_core_batch
from repro.simos import SystemSpec
from repro.simos.scheduler import place_threads
from repro.util.rng import RngStream
from repro.workloads.synthetic import random_workload

REL_TOL = 1e-9

seeds = st.integers(min_value=0, max_value=10_000)

P7 = power7()
NEHALEM = nehalem()


def stream_for(seed):
    return random_workload(RngStream(seed)).stream


def rel_err(a, b):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.max(np.abs(a - b) / (np.abs(a) + 1e-12))) if a.size else 0.0


def assert_outputs_match(scalar, batched):
    assert rel_err(scalar.ipc, batched.ipc) <= REL_TOL
    assert rel_err(scalar.port_utilization, batched.port_utilization) <= REL_TOL
    assert rel_err(scalar.stall_fraction, batched.stall_fraction) <= REL_TOL
    assert rel_err(scalar.long_stall_fraction, batched.long_stall_fraction) <= REL_TOL
    assert rel_err(scalar.branch_rate, batched.branch_rate) <= REL_TOL
    assert rel_err(scalar.port_scale, batched.port_scale) <= REL_TOL
    assert (
        rel_err(scalar.dispatch_held_fraction, batched.dispatch_held_fraction)
        <= REL_TOL
    )
    assert (
        rel_err(scalar.traffic_bytes_per_cycle, batched.traffic_bytes_per_cycle)
        <= REL_TOL
    )
    for sr, br in zip(scalar.miss_rates, batched.miss_rates):
        assert rel_err(sr.l1_mpki, br.l1_mpki) <= REL_TOL
        assert rel_err(sr.l2_mpki, br.l2_mpki) <= REL_TOL
        assert rel_err(sr.l3_mpki, br.l3_mpki) <= REL_TOL


def build_input(arch, seed, level, mult, extra, hetero, with_priorities):
    k = 1 + seed % level if level > 1 else 1
    if hetero:
        streams = tuple(stream_for(seed + 31 * t) for t in range(k))
    else:
        streams = tuple([stream_for(seed)] * k)
    priorities = None
    if with_priorities:
        priorities = tuple(1 + (seed + t) % 6 for t in range(k))
    return CoreInput(
        arch=arch,
        smt_level=level,
        streams=streams,
        threads_per_chip=max(k, (seed % 4 + 1) * k),
        mem_latency_mult=mult,
        extra_mem_latency=extra,
        priorities=priorities,
    )


class TestSolveCoreBatchEquivalence:
    @given(
        seeds,
        st.sampled_from([1, 2, 4]),
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=40.0),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_scenario(self, seed, level, mult, extra, hetero, with_prio):
        inp = build_input(P7, seed, level, mult, extra, hetero, with_prio)
        (batched,) = solve_core_batch([inp])
        assert_outputs_match(solve_core(inp), batched)

    @given(seeds, st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_mixed_batch_padding(self, seed, count):
        # Scenarios of different widths share one padded batch: padded
        # slots must never leak into real outputs.
        inputs = [
            build_input(
                P7,
                seed + 7 * i,
                [1, 2, 4][(seed + i) % 3],
                1.0 + (seed + i) % 5,
                float((seed + i) % 2) * 15.0,
                hetero=bool(i % 2),
                with_priorities=bool((seed + i) % 3 == 0),
            )
            for i in range(count)
        ]
        for inp, batched in zip(inputs, solve_core_batch(inputs)):
            assert_outputs_match(solve_core(inp), batched)

    @given(seeds, st.sampled_from([1, 2]))
    @settings(max_examples=30, deadline=None)
    def test_nehalem(self, seed, level):
        inp = build_input(NEHALEM, seed, level, 1.0 + seed % 7, 0.0, False, False)
        (batched,) = solve_core_batch([inp])
        assert_outputs_match(solve_core(inp), batched)

    def test_empty_batch(self):
        assert solve_core_batch([]) == []

    def test_rejects_mixed_architectures(self):
        s = stream_for(3)
        a = CoreInput(power7(), 1, (s,), threads_per_chip=1)
        b = CoreInput(power7(), 1, (s,), threads_per_chip=1)
        with pytest.raises(ValueError, match="one Architecture instance"):
            CoreBatch([a, b])

    def test_reuses_precomputation_across_mults(self):
        inputs = [build_input(P7, 11 + i, 4, 1.0, 0.0, False, False) for i in range(4)]
        batch = CoreBatch(inputs)
        for mult in (1.0, 2.5, 8.7):
            outs = batch.outputs(np.full(len(inputs), mult))
            for inp, out in zip(inputs, outs):
                scalar = solve_core(
                    CoreInput(
                        arch=inp.arch,
                        smt_level=inp.smt_level,
                        streams=inp.streams,
                        threads_per_chip=inp.threads_per_chip,
                        mem_latency_mult=mult,
                        extra_mem_latency=inp.extra_mem_latency,
                        priorities=inp.priorities,
                    )
                )
                assert_outputs_match(scalar, out)


class TestSolveChipBatchEquivalence:
    @given(st.lists(seeds, min_size=1, max_size=6, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_fixed_point(self, seed_list):
        system = SystemSpec(P7, 1)
        jobs = []
        for seed in seed_list:
            level = [1, 2, 4][seed % 3]
            placement = place_threads(system, level, system.contexts_at(level))
            jobs.append((placement, stream_for(seed)))
        for (placement, stream), batched in zip(jobs, solve_chip_batch(jobs)):
            scalar = solve_chip(placement, stream)
            assert scalar.core_occupancy == batched.core_occupancy
            assert rel_err(scalar.mem_latency_mult, batched.mem_latency_mult) <= REL_TOL
            assert rel_err(scalar.traffic_gbps, batched.traffic_gbps) <= REL_TOL
            assert rel_err(scalar.mem_utilization, batched.mem_utilization) <= REL_TOL
            assert (
                rel_err(scalar.per_thread_ipc(), batched.per_thread_ipc()) <= REL_TOL
            )
            assert (
                rel_err(scalar.mean_dispatch_held, batched.mean_dispatch_held)
                <= REL_TOL
            )

    def test_uneven_occupancy(self):
        # 5 threads on a 4-core Nehalem: one core runs 2, three run 1.
        system = SystemSpec(NEHALEM, 1)
        placement = place_threads(system, 2, 5)
        stream = stream_for(17)
        (batched,) = solve_chip_batch([(placement, stream)])
        scalar = solve_chip(placement, stream)
        assert scalar.core_occupancy == batched.core_occupancy
        assert rel_err(scalar.per_thread_ipc(), batched.per_thread_ipc()) <= REL_TOL

    def test_empty_jobs(self):
        assert solve_chip_batch([]) == []
