"""Shared stream fixtures for simulator tests."""

from repro.arch.classes import InstrClass, Mix
from repro.sim.stream import MemoryBehavior, StreamParams


def balanced_stream(**overrides):
    """EP-like: diverse mix, modest ILP, tiny footprint, scalable."""
    kwargs = dict(
        mix=Mix({InstrClass.LOAD: 0.16, InstrClass.STORE: 0.10,
                 InstrClass.BRANCH: 0.12, InstrClass.FX: 0.30, InstrClass.VS: 0.32}),
        ilp=1.6,
        memory=MemoryBehavior(l1_mpki=2.0, l2_mpki=0.5, l3_mpki=0.1,
                              locality_alpha=0.4, data_sharing=0.2),
        branch_mispredict_rate=0.01,
    )
    kwargs.update(overrides)
    return StreamParams(**kwargs)


def memory_stream(**overrides):
    """STREAM-like: bandwidth-bound, compulsory misses, high MLP."""
    kwargs = dict(
        mix=Mix({InstrClass.LOAD: 0.35, InstrClass.STORE: 0.20,
                 InstrClass.BRANCH: 0.05, InstrClass.FX: 0.15, InstrClass.VS: 0.25}),
        ilp=2.5,
        memory=MemoryBehavior(l1_mpki=45.0, l2_mpki=42.0, l3_mpki=40.0,
                              locality_alpha=0.05, data_sharing=0.0),
        branch_mispredict_rate=0.005,
        mlp=8.0,
    )
    kwargs.update(overrides)
    return StreamParams(**kwargs)


def fx_heavy_stream(**overrides):
    """Homogeneous integer mix that saturates the FX ports under SMT."""
    kwargs = dict(
        mix=Mix({InstrClass.LOAD: 0.10, InstrClass.STORE: 0.05,
                 InstrClass.BRANCH: 0.05, InstrClass.FX: 0.78, InstrClass.VS: 0.02}),
        ilp=2.5,
        memory=MemoryBehavior(l1_mpki=1.0, l2_mpki=0.3, l3_mpki=0.05,
                              locality_alpha=0.3, data_sharing=0.2),
        branch_mispredict_rate=0.005,
    )
    kwargs.update(overrides)
    return StreamParams(**kwargs)


def thrashy_fp_stream(**overrides):
    """Swim-like: VS-heavy, cache-sensitive, bandwidth-hungry."""
    kwargs = dict(
        mix=Mix({InstrClass.LOAD: 0.28, InstrClass.STORE: 0.12,
                 InstrClass.BRANCH: 0.03, InstrClass.FX: 0.07, InstrClass.VS: 0.50}),
        ilp=2.2,
        memory=MemoryBehavior(l1_mpki=22.0, l2_mpki=10.0, l3_mpki=5.0,
                              locality_alpha=0.9, data_sharing=0.1),
        branch_mispredict_rate=0.005,
        mlp=4.0,
    )
    kwargs.update(overrides)
    return StreamParams(**kwargs)
