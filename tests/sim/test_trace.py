"""Tests for pipeline tracing."""

import pytest

from repro.arch import power7
from repro.sim.cycle_core import CycleCore
from repro.sim.trace import PipelineTracer

from tests.sim.helpers import balanced_stream, memory_stream


def traced_run(stream, cycles=600, smt=2, k=2, max_instructions=10_000):
    tracer = PipelineTracer(max_instructions=max_instructions)
    core = CycleCore(power7(), smt, [stream] * k, seed=7, tracer=tracer)
    result = core.run(cycles, warmup=0)
    return tracer, result, core


class TestTracerCollection:
    def test_instruction_lifecycle_ordering(self):
        tracer, _, _ = traced_run(balanced_stream())
        completed = tracer.completed()
        assert completed, "expected completed instructions in 600 cycles"
        for r in completed:
            assert r.dispatch_cycle <= r.issue_cycle
            assert r.issue_cycle < r.complete_cycle

    def test_completed_count_matches_counters(self):
        tracer, result, _ = traced_run(balanced_stream())
        assert len(tracer.completed()) == pytest.approx(
            sum(result.instructions), abs=2
        )

    def test_held_cycles_match_counter(self):
        tracer, result, _ = traced_run(memory_stream(), smt=2, k=2)
        assert len(tracer.held_cycles) == result.dispatch_held_cycles

    def test_queue_latency_nonnegative(self):
        tracer, _, _ = traced_run(balanced_stream())
        assert tracer.mean_queue_latency() >= 0.0

    def test_memory_stream_waits_longer(self):
        fast_tracer, _, _ = traced_run(balanced_stream())
        slow_tracer, _, _ = traced_run(memory_stream())
        assert (slow_tracer.mean_queue_latency()
                > fast_tracer.mean_queue_latency())

    def test_capacity_bound_drops_excess(self):
        tracer, _, _ = traced_run(balanced_stream(), max_instructions=50)
        assert len(tracer.instructions()) == 50
        assert tracer.dropped > 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PipelineTracer(max_instructions=0)

    def test_empty_tracer_latency_raises(self):
        with pytest.raises(ValueError, match="no issued"):
            PipelineTracer().mean_queue_latency()


class TestRendering:
    def test_render_contains_ports_and_classes(self):
        tracer, _, core = traced_run(balanced_stream())
        text = tracer.render(core.arch.topology.port_names)
        assert "pipeline trace" in text
        assert "dispatch" in text and "queue wait" in text

    def test_render_respects_limit(self):
        tracer, _, core = traced_run(balanced_stream())
        text = tracer.render(core.arch.topology.port_names, limit=5)
        # Header/title lines + 5 rows.
        assert len(text.splitlines()) <= 10
