"""The calibrated surrogate fast path: fit, persist, verify, fall back.

The surrogate is only allowed to answer when it can *prove* the answer:
leverage inside the calibration envelope and a fixed-point residual
within ``EPS_RHO``.  These tests pin both sides of that contract — the
accepted answers against the full solver at the 1% documented bound,
and the refusals (out-of-calibration queries) falling back to results
bit-identical to the columnar solver — plus the persistence layer
(fingerprint-stamped model files next to the runcache) and the
``model_fingerprint`` memoization that keeps the hot path cheap.
"""

import numpy as np
import pytest

from repro.arch import power7
from repro.arch.classes import InstrClass, Mix
from repro.check.differential import compare_runs
from repro.obs import configure
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.stream import MemoryBehavior, StreamParams
from repro.sim.surrogate import (
    LEVERAGE_SLACK,
    SurrogateModel,
    clear_surrogate_cache,
    fit_surrogate,
    get_surrogate,
    load_surrogate,
    save_surrogate,
    simulate_many_surrogate,
    surrogate_path,
)
from repro.sim.table import simulate_many_columnar
from repro.simos import SystemSpec
from repro.workloads import all_workloads

P7 = power7()


@pytest.fixture(autouse=True)
def isolated_models(tmp_path, monkeypatch):
    """Every test gets its own model store and a cold in-process cache."""
    monkeypatch.setenv("REPRO_RUNCACHE_DIR", str(tmp_path / "runcache"))
    clear_surrogate_cache()
    yield
    clear_surrogate_cache()


@pytest.fixture
def tracer():
    tracer = configure(enabled=True)
    tracer.reset()
    yield tracer
    configure(enabled=False)
    tracer.reset()


def _spec(name="EP", level=4, seed=11, **kwargs):
    workload = all_workloads()[name]
    return RunSpec(system=SystemSpec(P7, 1), smt_level=level,
                   stream=workload.stream, sync=workload.sync, seed=seed,
                   **kwargs)


def _out_of_calibration_spec():
    """A stream far outside the catalog: the leverage gate must fire."""
    extreme = StreamParams(
        mix=Mix({InstrClass.LOAD: 0.85, InstrClass.STORE: 0.05,
                 InstrClass.BRANCH: 0.05, InstrClass.FX: 0.03,
                 InstrClass.VS: 0.02}),
        ilp=0.6,
        memory=MemoryBehavior(l1_mpki=300.0, l2_mpki=290.0, l3_mpki=280.0,
                              locality_alpha=0.01, data_sharing=0.9),
        branch_mispredict_rate=0.2,
        mlp=1.0,
    )
    sync = all_workloads()["EP"].sync
    return RunSpec(system=SystemSpec(P7, 1), smt_level=4, stream=extreme,
                   sync=sync, seed=11)


class TestPersistence:
    def test_fit_save_load_round_trip(self):
        model = fit_surrogate(P7, 1)
        path = save_surrogate(model)
        assert model.fingerprint in path
        loaded = load_surrogate(P7.name, 1)
        assert loaded is not None
        assert loaded.fingerprint == model.fingerprint
        assert loaded.n_train == model.n_train
        np.testing.assert_allclose(loaded.coef, model.coef)
        np.testing.assert_allclose(loaded.a_inv, model.a_inv)

    def test_load_missing_model_returns_none(self):
        assert load_surrogate(P7.name, 1) is None

    def test_load_rejects_stale_fingerprint(self):
        model = fit_surrogate(P7, 1)
        save_surrogate(model)
        # A model persisted under an older fingerprint must not load,
        # even if a file exists at the stale path.
        import shutil

        stale = surrogate_path(P7.name, 1, "0" * 16)
        shutil.move(surrogate_path(P7.name, 1, model.fingerprint), stale)
        assert load_surrogate(P7.name, 1) is None

    def test_load_revalidates_embedded_fingerprint(self):
        model = fit_surrogate(P7, 1)
        payload = model.to_json()
        payload["fingerprint"] = "0" * 16
        tampered = SurrogateModel.from_json(payload)
        # Write the tampered payload at the *current* fingerprint path.
        import json, os

        path = surrogate_path(P7.name, 1, model.fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump(tampered.to_json(), fh)
        assert load_surrogate(P7.name, 1) is None

    def test_get_surrogate_fits_once_then_memoizes(self, tracer):
        first = get_surrogate(P7, 1)
        second = get_surrogate(P7, 1)
        assert first is second
        counters = tracer.counters()
        assert counters["surrogate.fits"] == 1
        assert counters["surrogate.saves"] == 1

    def test_get_surrogate_loads_from_disk_after_cache_clear(self, tracer):
        get_surrogate(P7, 1)
        clear_surrogate_cache()
        get_surrogate(P7, 1)
        counters = tracer.counters()
        assert counters["surrogate.fits"] == 1
        assert counters["surrogate.loads"] == 1


class TestPrediction:
    def test_accepted_answers_within_documented_bound(self):
        specs = [_spec(name, level)
                 for name in ("EP", "SSCA2", "Fluidanimate")
                 for level in (1, 4)]
        results, accepted = simulate_many_surrogate(specs)
        assert any(accepted), "surrogate must engage on catalog workloads"
        for spec, got, ok in zip(specs, results, accepted):
            bound = 1e-2 if ok else 1e-9
            diffs = compare_runs(simulate_run(spec), got, bound)
            assert not diffs, (ok, diffs)

    def test_out_of_calibration_query_falls_back(self, tracer):
        specs = [_spec("EP", 4), _out_of_calibration_spec()]
        results, accepted = simulate_many_surrogate(specs)
        assert accepted[0] is True
        assert accepted[1] is False
        counters = tracer.counters()
        assert counters["surrogate.leverage_rejects"] >= 1
        assert counters["surrogate.hits"] == 1
        assert counters["surrogate.fallbacks"] == 1
        # The fallback is the full solver: bit-identical to columnar.
        columnar = simulate_many_columnar([specs[1]])[0]
        assert compare_runs(results[1], columnar, rel_tol=0.0) == []

    def test_leverage_gate_is_calibrated_not_arbitrary(self):
        from repro.sim.surrogate import _features
        from repro.sim.table import ScenarioTable

        model = get_surrogate(P7, 1)
        inside = _features(ScenarioTable([_spec("EP", 4)]))
        outside = _features(ScenarioTable([_out_of_calibration_spec()]))
        assert model.leverage(inside)[0] <= LEVERAGE_SLACK * model.max_leverage
        assert model.leverage(outside)[0] > LEVERAGE_SLACK * model.max_leverage

    def test_empty_batch(self):
        assert simulate_many_surrogate([]) == ([], [])


@pytest.mark.surrogate
class TestFullCatalogAccuracy:
    """Slow sweep: the 1% bound over the whole default calibration set."""

    def test_every_catalog_run_within_bound(self):
        specs = [_spec(name, level)
                 for name in all_workloads()
                 for level in (1, 2, 4)]
        results, accepted = simulate_many_surrogate(specs)
        hits = sum(accepted)
        assert hits > len(specs) / 2, f"only {hits}/{len(specs)} accepted"
        for spec, got, ok in zip(specs, results, accepted):
            bound = 1e-2 if ok else 1e-9
            diffs = compare_runs(simulate_run(spec), got, bound)
            assert not diffs, (spec.smt_level, ok, diffs)
