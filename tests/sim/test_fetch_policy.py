"""Tests for SMT fetch policies in the cycle engine."""

import pytest

from repro.arch import power7
from repro.sim.cycle_core import CycleCore

from tests.sim.helpers import balanced_stream, memory_stream


def run_core(policy, streams, cycles=5000, seed=9):
    core = CycleCore(power7(), 4, streams, seed=seed, fetch_policy=policy)
    return core.run(cycles)


class TestPolicySelection:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="fetch_policy"):
            CycleCore(power7(), 1, [balanced_stream()], fetch_policy="lottery")

    def test_both_policies_run(self):
        for policy in ("round_robin", "icount"):
            result = run_core(policy, [balanced_stream()] * 4, cycles=1500)
            assert result.core_ipc > 0.5


class TestIcountBehaviour:
    def test_icount_helps_mixed_stall_workload(self):
        # The classic ICOUNT result: with one memory-stalled thread
        # clogging its queue share, fetch bandwidth shifts to the
        # fast-draining compute threads.
        streams = [memory_stream()] + [balanced_stream()] * 3
        rr = run_core("round_robin", streams)
        ic = run_core("icount", streams)
        assert ic.core_ipc >= rr.core_ipc

    def test_icount_shifts_throughput_to_compute_threads(self):
        streams = [memory_stream()] + [balanced_stream()] * 3
        rr = run_core("round_robin", streams)
        ic = run_core("icount", streams)
        rr_compute = sum(rr.instructions[1:])
        ic_compute = sum(ic.instructions[1:])
        assert ic_compute >= rr_compute

    def test_policies_equivalent_for_single_thread(self):
        rr = CycleCore(power7(), 1, [balanced_stream()], seed=4,
                       fetch_policy="round_robin").run(2000)
        ic = CycleCore(power7(), 1, [balanced_stream()], seed=4,
                       fetch_policy="icount").run(2000)
        assert rr.instructions == ic.instructions

    def test_round_robin_fairness_on_homogeneous_threads(self):
        result = run_core("round_robin", [balanced_stream()] * 4)
        done = result.instructions
        assert max(done) < 1.5 * min(done)
