"""Persistent run-cache correctness: hits, misses, invalidation."""

import dataclasses
import json

import pytest

from repro.arch import nehalem, power7
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.runcache import (
    MODEL_VERSION,
    RunCache,
    cache_enabled_by_default,
    default_cache_dir,
    run_cache_key,
)
from repro.simos import SystemSpec
from repro.util.rng import RngStream
from repro.workloads.synthetic import random_workload


def make_spec(**overrides):
    workload = random_workload(RngStream(5))
    kwargs = dict(
        system=SystemSpec(power7(), 1),
        smt_level=2,
        stream=workload.stream,
        sync=workload.sync,
        seed=11,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def assert_results_equal(a, b):
    assert a.arch is b.arch
    assert a.smt_level == b.smt_level
    assert a.n_threads == b.n_threads
    assert a.n_chips == b.n_chips
    assert a.useful_instructions == b.useful_instructions
    assert dataclasses.asdict(a.times) == dataclasses.asdict(b.times)
    assert dict(a.events) == dict(b.events)
    assert a.spin_fraction == b.spin_fraction
    assert a.blocked_fraction == b.blocked_fraction
    assert a.mem_latency_mult == b.mem_latency_mult
    assert a.mem_utilization == b.mem_utilization
    assert a.per_thread_ipc == b.per_thread_ipc
    assert a.dispatch_held_fraction == b.dispatch_held_fraction


class TestCacheKey:
    def test_deterministic(self):
        spec = make_spec()
        assert run_cache_key(spec) == run_cache_key(spec)

    def test_same_values_same_key_across_instances(self):
        # Content-addressed: two independently built but identical specs
        # share one entry (the point of reusing runs across sessions).
        assert run_cache_key(make_spec()) == run_cache_key(make_spec())

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 12},
            {"smt_level": 4},
            {"useful_instructions": 3e10},
            {"noise_rel": 0.02},
            {"n_threads": 5},
        ],
    )
    def test_spec_field_changes_key(self, override):
        assert run_cache_key(make_spec(**override)) != run_cache_key(make_spec())

    def test_sync_profile_changes_key(self):
        base = make_spec()
        changed = make_spec(
            sync=dataclasses.replace(base.sync, spin_coeff=base.sync.spin_coeff + 0.05)
        )
        assert run_cache_key(changed) != run_cache_key(base)

    def test_stream_changes_key(self):
        base = make_spec()
        changed = make_spec(stream=base.stream.scaled_misses(1.01))
        assert run_cache_key(changed) != run_cache_key(base)

    def test_arch_changes_key(self):
        assert run_cache_key(
            make_spec(system=SystemSpec(nehalem(), 1))
        ) != run_cache_key(make_spec())

    def test_arch_parameter_changes_key(self):
        base_arch = power7()
        tweaked = dataclasses.replace(base_arch, branch_penalty=base_arch.branch_penalty + 1)
        assert run_cache_key(
            make_spec(system=SystemSpec(tweaked, 1))
        ) != run_cache_key(make_spec(system=SystemSpec(base_arch, 1)))

    def test_n_chips_changes_key(self):
        assert run_cache_key(
            make_spec(system=SystemSpec(power7(), 2))
        ) != run_cache_key(make_spec())

    def test_model_version_changes_key(self, monkeypatch):
        import repro.sim.runcache as rc

        spec = make_spec()
        before = run_cache_key(spec)
        monkeypatch.setattr(rc, "MODEL_VERSION", MODEL_VERSION + 1)
        monkeypatch.setattr(rc, "_CONSTANTS_FP_JSON", None)
        after = run_cache_key(spec)
        monkeypatch.setattr(rc, "_CONSTANTS_FP_JSON", None)
        assert before != after


class TestCacheStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = make_spec()
        assert cache.get(spec) is None
        result = simulate_run(spec)
        cache.put(spec, result)
        assert len(cache) == 1
        cached = cache.get(spec)
        assert cached is not None
        assert_results_equal(cached, result)

    def test_different_spec_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = make_spec()
        cache.put(spec, simulate_run(spec))
        assert cache.get(make_spec(seed=99)) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = make_spec()
        cache.put(spec, simulate_run(spec))
        path = tmp_path / f"{run_cache_key(spec)}.json"
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_corrupt_entry_is_deleted_and_counted(self, tmp_path):
        from repro.obs import configure

        cache = RunCache(tmp_path)
        spec = make_spec()
        result = simulate_run(spec)
        cache.put(spec, result)
        path = tmp_path / f"{run_cache_key(spec)}.json"
        path.write_text("{not json")
        tracer = configure(enabled=True)
        tracer.reset()
        try:
            assert cache.get(spec) is None
            counters = tracer.counters()
            assert counters.get("runcache.corrupt") == 1
            assert counters.get("runcache.misses") == 1
        finally:
            configure(enabled=False)
            tracer.reset()
        # The bad entry is gone: a re-put works and the next get hits.
        assert not path.exists()
        cache.put(spec, result)
        cached = cache.get(spec)
        assert cached is not None
        assert_results_equal(cached, result)

    def test_valid_payload_with_missing_key_is_corrupt(self, tmp_path):
        # Malformed means structurally wrong too, not just bad JSON.
        cache = RunCache(tmp_path)
        spec = make_spec()
        cache.put(spec, simulate_run(spec))
        path = tmp_path / f"{run_cache_key(spec)}.json"
        payload = json.loads(path.read_text())
        del payload["times"]
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert not path.exists()

    def test_stale_schema_entry_is_rejected(self, tmp_path):
        # An entry written under a different payload layout may parse
        # cleanly yet mean something else; it must never deserialize.
        from repro.obs import configure
        from repro.sim.runcache import PAYLOAD_SCHEMA

        cache = RunCache(tmp_path)
        spec = make_spec()
        result = simulate_run(spec)
        cache.put(spec, result)
        path = tmp_path / f"{run_cache_key(spec)}.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == PAYLOAD_SCHEMA
        payload["schema"] = PAYLOAD_SCHEMA - 1
        path.write_text(json.dumps(payload))
        tracer = configure(enabled=True)
        tracer.reset()
        try:
            assert cache.get(spec) is None
            counters = tracer.counters()
            assert counters.get("runcache.schema_mismatch") == 1
            assert counters.get("runcache.misses") == 1
            assert counters.get("runcache.corrupt") is None
        finally:
            configure(enabled=False)
            tracer.reset()
        # Deleted on first sight, so a fresh put repopulates cleanly.
        assert not path.exists()
        cache.put(spec, result)
        cached = cache.get(spec)
        assert cached is not None
        assert_results_equal(cached, result)

    def test_pre_versioning_entry_is_rejected(self, tmp_path):
        # Entries from before the schema field existed carry no marker
        # at all — those are exactly the "stale format" class.
        cache = RunCache(tmp_path)
        spec = make_spec()
        cache.put(spec, simulate_run(spec))
        path = tmp_path / f"{run_cache_key(spec)}.json"
        payload = json.loads(path.read_text())
        del payload["schema"]
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = make_spec()
        cache.put(spec, simulate_run(spec))
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(spec) is None

    def test_payload_is_plain_json(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = make_spec()
        cache.put(spec, simulate_run(spec))
        payload = json.loads(
            (tmp_path / f"{run_cache_key(spec)}.json").read_text()
        )
        assert set(payload) >= {"times", "events", "per_thread_ipc"}

    def test_unwritable_root_is_silent(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should go")
        cache = RunCache(blocker / "sub")
        spec = make_spec()
        cache.put(spec, simulate_run(spec))  # must not raise
        assert cache.get(spec) is None


class TestEnvironmentSwitches:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNCACHE", raising=False)
        assert cache_enabled_by_default()

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNCACHE", "0")
        assert not cache_enabled_by_default()

    def test_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNCACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert RunCache().root == tmp_path / "alt"
