"""The heterogeneous-chip simulation layer: exact per-cluster decomposition."""

import pytest

from repro.arch.hetero import get_hetero
from repro.sim.hetero import (
    HeteroRunSpec,
    simulate_hetero,
    simulate_many_hetero,
    solve_hetero_chip,
)
from repro.util.rng import RngStream
from repro.workloads import all_workloads
from repro.workloads.synthetic import random_workload

CHIP = get_hetero("biglittle")
TOL = 1e-9


def _spec(seed=0, levels=None, **kw):
    wl = all_workloads()["EP"]
    return HeteroRunSpec(CHIP, wl.stream, wl.sync,
                         levels=levels or {}, seed=seed, **kw)


class TestSpecValidation:
    def test_unknown_cluster_rejected(self):
        with pytest.raises(ValueError, match="unknown clusters"):
            _spec(levels={"medium": 2})

    def test_over_ceiling_rejected(self):
        with pytest.raises(ValueError, match="SMT levels"):
            _spec(levels={"little": 4})

    def test_n_chips_positive(self):
        with pytest.raises(ValueError, match="n_chips"):
            _spec(n_chips=0)

    def test_defaults_to_max_levels(self):
        assert _spec().resolved_levels() == {"big": 4, "little": 2}


class TestDecomposition:
    def test_work_splits_by_context_count(self):
        spec = _spec()
        subs = dict(spec.cluster_specs())
        # big: 4 cores x SMT4 = 16 contexts; little: 4 x SMT2 = 8.
        assert subs["big"].useful_instructions == pytest.approx(
            spec.useful_instructions * 16 / 24)
        assert subs["little"].useful_instructions == pytest.approx(
            spec.useful_instructions * 8 / 24)
        assert subs["big"].system.arch.name == "POWER7-big"

    def test_per_cluster_seeds_differ(self):
        subs = [s for _, s in _spec(seed=5).cluster_specs()]
        assert len({s.seed for s in subs}) == len(subs)

    def test_mixed_levels(self):
        result = simulate_hetero(_spec(levels={"big": 1, "little": 2}))
        assert result.levels == {"big": 1, "little": 2}
        assert result.cluster_results["big"].smt_level == 1


class TestResultAccounting:
    def test_wall_is_barrier_and_performance_is_work_over_wall(self):
        result = simulate_hetero(_spec())
        walls = [r.times.wall_time_s
                 for r in result.cluster_results.values()]
        assert result.wall_seconds == max(walls)
        total_work = sum(r.useful_instructions
                         for r in result.cluster_results.values())
        assert result.performance == pytest.approx(
            total_work / result.wall_seconds)
        # Idling at the barrier can only lose throughput.
        assert result.performance <= result.aggregate_rate * (1 + TOL)


class TestStrategyAgreement:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_serial_batched_columnar_agree(self, seed):
        wl = random_workload(RngStream(seed))
        spec = HeteroRunSpec(CHIP, wl.stream, wl.sync, seed=seed)
        serial = simulate_hetero(spec, strategy="serial")
        batched = simulate_hetero(spec, strategy="batched")
        columnar = simulate_hetero(spec, strategy="columnar")
        for other in (batched, columnar):
            rel = (abs(other.wall_seconds - serial.wall_seconds)
                   / serial.wall_seconds)
            assert rel <= TOL
            assert other.performance == pytest.approx(
                serial.performance, rel=TOL)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            simulate_hetero(_spec(), strategy="quantum")

    def test_many_flattens_and_regroups(self):
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        results = simulate_many_hetero(specs)
        assert len(results) == 3
        for spec, result in zip(specs, results):
            solo = simulate_hetero(spec)
            assert result.wall_seconds == pytest.approx(
                solo.wall_seconds, rel=TOL)


class TestSolveHeteroChip:
    def test_one_solution_per_cluster(self):
        wl = all_workloads()["SSCA2"]
        solutions = solve_hetero_chip(CHIP, wl.stream)
        assert set(solutions) == {"big", "little"}
        for name, sol in solutions.items():
            arch = CHIP.cluster(name).arch
            assert len(sol.per_thread_ipc()) == (
                arch.cores_per_chip * arch.max_smt)

    def test_respects_level_overrides(self):
        wl = all_workloads()["EP"]
        solutions = solve_hetero_chip(CHIP, wl.stream, levels={"big": 2})
        assert len(solutions["big"].per_thread_ipc()) == 4 * 2
