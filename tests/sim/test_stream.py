"""Tests for stream parameter validation and helpers."""

import pytest

from repro.arch.classes import InstrClass, Mix
from repro.sim.stream import MemoryBehavior, StreamParams

from tests.sim.helpers import balanced_stream


class TestMemoryBehavior:
    def test_valid(self):
        m = MemoryBehavior(10, 5, 1, 0.5, 0.3)
        assert m.l1_mpki == 10

    def test_rejects_non_monotone_mpkis(self):
        with pytest.raises(ValueError, match="monotone"):
            MemoryBehavior(1, 5, 0.5, 0.5, 0.3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MemoryBehavior(-1, -2, -3, 0.5, 0.3)

    def test_rejects_bad_sharing(self):
        with pytest.raises(ValueError):
            MemoryBehavior(10, 5, 1, 0.5, 1.5)

    def test_rejects_writeback_below_one(self):
        with pytest.raises(ValueError, match="writeback"):
            MemoryBehavior(10, 5, 1, 0.5, 0.3, writeback_factor=0.5)


class TestStreamParams:
    def test_rejects_implausible_ilp(self):
        with pytest.raises(ValueError, match="implausible"):
            balanced_stream(ilp=10.0)

    def test_rejects_zero_ilp(self):
        with pytest.raises(ValueError):
            balanced_stream(ilp=0.0)

    def test_rejects_bad_branch_rate(self):
        with pytest.raises(ValueError):
            balanced_stream(branch_mispredict_rate=1.5)

    def test_with_mix_replaces_only_mix(self):
        s = balanced_stream()
        new_mix = Mix({InstrClass.FX: 1.0})
        s2 = s.with_mix(new_mix)
        assert s2.mix == new_mix
        assert s2.ilp == s.ilp
        assert s2.memory is s.memory

    def test_scaled_misses(self):
        s = balanced_stream()
        s2 = s.scaled_misses(2.0)
        assert s2.memory.l1_mpki == pytest.approx(2 * s.memory.l1_mpki)
        assert s2.memory.l3_mpki == pytest.approx(2 * s.memory.l3_mpki)
        assert s2.mix == s.mix

    def test_scaled_misses_rejects_negative(self):
        with pytest.raises(ValueError):
            balanced_stream().scaled_misses(-1.0)
