"""Tests for the bandwidth, NUMA and branch models."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import power7
from repro.arch.classes import InstrClass, Mix
from repro.sim.branch import BranchModel
from repro.sim.memory import (
    MAX_LATENCY_MULT,
    BandwidthModel,
    numa_extra_latency,
    numa_remote_fraction,
)


class TestBandwidthModel:
    def setup_method(self):
        self.bw = BandwidthModel(capacity_gbps=50.0)

    def test_idle_no_inflation(self):
        assert self.bw.latency_multiplier(0.0) == 1.0

    def test_light_load_mild_inflation(self):
        assert self.bw.latency_multiplier(10.0) < 1.2

    def test_heavy_load_strong_inflation(self):
        assert self.bw.latency_multiplier(48.0) > 3.0

    def test_overload_capped(self):
        # Past the utilization cap the multiplier saturates: any further
        # demand produces no additional inflation.
        at_cap = self.bw.latency_multiplier(500.0)
        assert at_cap == self.bw.latency_multiplier(5000.0)
        assert at_cap <= MAX_LATENCY_MULT
        assert at_cap > 5.0

    @given(st.floats(min_value=0.0, max_value=1000.0))
    def test_multiplier_bounds(self, traffic):
        m = self.bw.latency_multiplier(traffic)
        assert 1.0 <= m <= MAX_LATENCY_MULT

    @given(st.floats(min_value=0.0, max_value=100.0), st.floats(min_value=0.0, max_value=100.0))
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert self.bw.latency_multiplier(lo) <= self.bw.latency_multiplier(hi)

    def test_achievable_caps_at_capacity(self):
        assert self.bw.achievable_traffic(80.0) == 50.0
        assert self.bw.achievable_traffic(30.0) == 30.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BandwidthModel(0.0)


class TestNuma:
    def test_single_chip_no_remote(self):
        assert numa_remote_fraction(1, 0.8) == 0.0

    def test_two_chips_half_of_shared(self):
        assert numa_remote_fraction(2, 0.8) == pytest.approx(0.4)

    def test_private_data_stays_local(self):
        assert numa_remote_fraction(2, 0.0) == 0.0

    def test_extra_latency(self):
        assert numa_extra_latency(2, 0.5, 130.0) == pytest.approx(32.5)

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            numa_remote_fraction(0, 0.5)


class TestBranchModel:
    def setup_method(self):
        self.model = BranchModel(power7())

    def test_single_thread_base_rate(self):
        assert self.model.effective_rate(0.02, 1) == pytest.approx(0.02)

    def test_sharing_raises_rate(self):
        assert self.model.effective_rate(0.02, 4) > 0.02

    def test_rate_capped_at_one(self):
        assert self.model.effective_rate(0.9, 4) <= 1.0

    def test_stall_proportional_to_branch_fraction(self):
        branchy = Mix({InstrClass.BRANCH: 0.4, InstrClass.FX: 0.6})
        plain = Mix({InstrClass.BRANCH: 0.1, InstrClass.FX: 0.9})
        assert self.model.stall_per_instruction(
            branchy, 0.05
        ) == pytest.approx(4 * self.model.stall_per_instruction(plain, 0.05))

    def test_mpki(self):
        mix = Mix({InstrClass.BRANCH: 0.2, InstrClass.FX: 0.8})
        assert self.model.mispredicts_per_kilo(mix, 0.05) == pytest.approx(10.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            self.model.effective_rate(1.5, 1)
