"""Tests for chip composition and the full-system engine."""

import numpy as np
import pytest

from repro.arch import nehalem, power7
from repro.sim.chip import solve_chip
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.results import speedup
from repro.simos import NO_SYNC, SyncProfile, SystemSpec
from repro.simos.scheduler import place_threads

from tests.sim.helpers import balanced_stream, fx_heavy_stream, memory_stream


P7 = SystemSpec(power7(), 1)


class TestSolveChip:
    def test_full_smt4(self):
        placement = place_threads(P7, 4, 32)
        sol = solve_chip(placement, balanced_stream())
        assert len(sol.core_outputs) == 8
        assert len(sol.per_thread_ipc()) == 32

    def test_bandwidth_fixed_point_inflates_for_memory_stream(self):
        placement = place_threads(P7, 4, 32)
        sol = solve_chip(placement, memory_stream())
        assert sol.mem_latency_mult > 1.5
        assert sol.mem_utilization > 0.5

    def test_compute_stream_no_inflation(self):
        placement = place_threads(P7, 1, 8)
        sol = solve_chip(placement, balanced_stream())
        assert sol.mem_latency_mult == pytest.approx(1.0, abs=0.05)

    def test_mean_dispatch_held_weighted(self):
        placement = place_threads(P7, 4, 32)
        sol = solve_chip(placement, memory_stream())
        assert 0.0 <= sol.mean_dispatch_held <= 1.0

    def test_uneven_occupancy(self):
        placement = place_threads(P7, 4, 10)
        sol = solve_chip(placement, balanced_stream())
        assert len(sol.per_thread_ipc()) == 10
        assert set(sol.core_occupancy) == {1, 2}


class TestSimulateRun:
    def test_run_result_consistency(self):
        r = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=7))
        assert r.n_threads == 32
        assert r.wall_time_s > 0
        sample = r.counter_sample()
        assert sample.ipc > 0
        assert 0 <= sample.dispatch_held_fraction <= 1

    def test_counters_reflect_mix(self):
        r = simulate_run(RunSpec(P7, 1, balanced_stream(), NO_SYNC, seed=7))
        mix = r.counter_sample().mix()
        for klass in mix.as_dict():
            assert mix[klass] == pytest.approx(balanced_stream().mix[klass], abs=0.02)

    def test_balanced_prefers_smt4(self):
        runs = {l: simulate_run(RunSpec(P7, l, balanced_stream(), NO_SYNC, seed=7))
                for l in (1, 4)}
        assert speedup(runs[4], runs[1]) > 1.4

    def test_lock_bound_prefers_smt1(self):
        sync = SyncProfile(lock_serial_fraction=0.5, lock_pingpong_coeff=1.5,
                           lock_pingpong_half=8)
        runs = {l: simulate_run(RunSpec(P7, l, balanced_stream(), sync, seed=7))
                for l in (1, 4)}
        assert speedup(runs[4], runs[1]) < 0.9

    def test_spin_fraction_grows_with_smt_under_lock(self):
        sync = SyncProfile(lock_serial_fraction=0.3, lock_pingpong_coeff=1.0)
        r1 = simulate_run(RunSpec(P7, 1, balanced_stream(), sync, seed=7))
        r4 = simulate_run(RunSpec(P7, 4, balanced_stream(), sync, seed=7))
        assert r4.spin_fraction > r1.spin_fraction

    def test_spin_pollutes_branch_counters(self):
        sync = SyncProfile(lock_serial_fraction=0.4, lock_pingpong_coeff=1.0)
        clean = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=7))
        spinny = simulate_run(RunSpec(P7, 4, balanced_stream(), sync, seed=7))
        from repro.arch.classes import InstrClass
        assert (
            spinny.counter_sample().mix()[InstrClass.BRANCH]
            > clean.counter_sample().mix()[InstrClass.BRANCH]
        )

    def test_blocking_raises_scalability_ratio(self):
        sync = SyncProfile(block_coeff=0.5, block_half=4)
        r = simulate_run(RunSpec(P7, 4, balanced_stream(), sync, seed=7))
        assert r.counter_sample().scalability_ratio > 1.3

    def test_work_inflation_slows_run(self):
        sync = SyncProfile(work_inflation_coeff=0.5, work_inflation_half=8)
        base = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=7))
        inflated = simulate_run(RunSpec(P7, 4, balanced_stream(), sync, seed=7))
        assert inflated.wall_time_s > base.wall_time_s

    def test_deterministic_given_seed(self):
        a = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=42))
        b = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=42))
        assert a.wall_time_s == b.wall_time_s
        assert a.events == b.events

    def test_seed_changes_noise(self):
        a = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=1))
        b = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=2))
        assert a.wall_time_s != b.wall_time_s

    def test_zero_noise_exact(self):
        a = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=1, noise_rel=0.0))
        b = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=2, noise_rel=0.0))
        assert a.wall_time_s == pytest.approx(b.wall_time_s)

    def test_explicit_thread_count(self):
        r = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, n_threads=8, seed=7))
        assert r.n_threads == 8
        # One thread per core at SMT4: cores revert to SMT1 behaviour.
        r1 = simulate_run(RunSpec(P7, 1, balanced_stream(), NO_SYNC, seed=7))
        assert r.performance == pytest.approx(r1.performance, rel=0.1)

    def test_two_chip_numa_slows_shared_workload(self):
        sys2 = SystemSpec(power7(), 2)
        shared = memory_stream()
        # Same threads per chip; two-chip run sees NUMA extra latency.
        r1 = simulate_run(RunSpec(P7, 4, shared, NO_SYNC, seed=7))
        r2 = simulate_run(RunSpec(sys2, 4, shared, NO_SYNC, seed=7))
        # Per-chip thread count equal, but the data_sharing=0 stream has
        # no remote traffic; use a sharing stream to see the effect.
        from repro.sim.stream import MemoryBehavior, StreamParams
        sharing_stream = StreamParams(
            shared.mix, shared.ilp,
            MemoryBehavior(45, 42, 40, 0.05, 0.8), shared.branch_mispredict_rate,
            mlp=shared.mlp,
        )
        p1 = simulate_run(RunSpec(P7, 4, sharing_stream, NO_SYNC, seed=7))
        p2 = simulate_run(RunSpec(sys2, 4, sharing_stream, NO_SYNC, seed=7))
        # Two chips double both work capacity and bandwidth; per-thread
        # performance should drop due to NUMA latency.
        per_thread_1 = p1.performance / p1.n_threads
        per_thread_2 = p2.performance / p2.n_threads
        assert per_thread_2 < per_thread_1

    def test_nehalem_runs(self):
        nh = SystemSpec(nehalem(), 1)
        runs = {l: simulate_run(RunSpec(nh, l, balanced_stream(), NO_SYNC, seed=7))
                for l in (1, 2)}
        assert speedup(runs[2], runs[1]) > 1.0

    def test_speedup_requires_same_work(self):
        a = simulate_run(RunSpec(P7, 4, balanced_stream(), NO_SYNC, seed=7))
        b = simulate_run(RunSpec(P7, 1, balanced_stream(), NO_SYNC, seed=7,
                                 useful_instructions=1e9))
        with pytest.raises(ValueError, match="same work"):
            speedup(a, b)
