"""Tests for the online-measurement adapter (SteadyApp)."""

import pytest

from repro.core.metric import smtsm
from repro.experiments.systems import p7_system
from repro.sim.online import SteadyApp
from repro.workloads import get_workload
from repro.workloads.phases import Phase, PhasedWorkload


@pytest.fixture(scope="module")
def system():
    return p7_system()


class TestSteadyState:
    def test_counters_linear_in_time(self, system):
        app = SteadyApp(system, 4, get_workload("EP"), seed=1)
        a = app.advance(0.1)
        b = app.advance(0.2)
        assert b.count("INSTRUCTIONS") == pytest.approx(2 * a.count("INSTRUCTIONS"), rel=1e-9)
        assert b.count("CYCLES") == pytest.approx(2 * a.count("CYCLES"), rel=1e-9)

    def test_metric_matches_batch_run(self, system):
        from repro.core.metric import smtsm_from_run
        from repro.sim.engine import RunSpec, simulate_run
        spec = get_workload("SSCA2")
        app = SteadyApp(system, 4, spec, seed=1)
        online = smtsm(app.advance(0.5))
        batch = smtsm_from_run(
            simulate_run(RunSpec(system, 4, spec.stream, spec.sync, seed=1,
                                 noise_rel=0.0))
        )
        assert online.value == pytest.approx(batch.value, rel=0.02)

    def test_rejects_nonpositive_interval(self, system):
        app = SteadyApp(system, 4, get_workload("EP"), seed=1)
        with pytest.raises(ValueError):
            app.advance(0.0)

    def test_rejects_bad_level(self, system):
        with pytest.raises(ValueError):
            SteadyApp(system, 3, get_workload("EP"))


class TestPhasedApp:
    def make_app(self, system):
        phased = PhasedWorkload(
            "two-phase",
            (Phase(get_workload("EP"), 1e10),
             Phase(get_workload("SPECjbb_contention"), 1e10)),
        )
        return SteadyApp(system, 4, phased.phases[0].spec, phases=phased, seed=1)

    def test_starts_in_first_phase(self, system):
        app = self.make_app(system)
        assert app.phase_name == "EP"

    def test_advances_to_second_phase(self, system):
        app = self.make_app(system)
        # Burn through more work than the first phase holds.
        for _ in range(100):
            app.advance(0.05)
            if app.phase_name != "EP":
                break
        assert app.phase_name == "SPECjbb_contention"

    def test_phases_never_regress(self, system):
        # Regression guard: work accounting must be monotone — an early
        # implementation recomputed progress from the current phase's
        # rate and oscillated between phases.
        app = self.make_app(system)
        seen = []
        for _ in range(200):
            app.advance(0.05)
            seen.append(app.phase_name)
        first_contended = seen.index("SPECjbb_contention")
        assert all(name == "SPECjbb_contention" for name in seen[first_contended:])

    def test_metric_shifts_with_phase(self, system):
        app = self.make_app(system)
        early = smtsm(app.advance(0.05)).value
        for _ in range(200):
            app.advance(0.05)
        late = smtsm(app.advance(0.05)).value
        assert late > 10 * early  # EP ~0.001 vs contention ~0.12

    def test_advance_across_phase_boundary(self, system):
        # One long interval that crosses the phase boundary: the sample
        # is attributed to the phase current at the interval's start,
        # the crossing registers on the next advance, and the work
        # account stays continuous (no work lost or double-counted).
        app = self.make_app(system)
        rate = app._reference.performance
        remaining = (1e10 - app.work_done) / rate
        before = app.work_done
        sample = app.advance(remaining + 1.0)
        assert app.phase_name == "EP"  # still the starting phase's rates
        assert app.work_done == pytest.approx(
            before + (remaining + 1.0) * rate
        )
        assert app.work_done > 1e10
        app.advance(0.05)
        assert app.phase_name == "SPECjbb_contention"
        assert sample.count("INSTRUCTIONS") > 0


class TestSwitchLevel:
    def test_switch_changes_thread_count(self, system):
        app = SteadyApp(system, 4, get_workload("EP"), seed=1)
        assert app.advance(0.1).n_software_threads == 32
        app.switch_level(1)
        sample = app.advance(0.1)
        assert app.smt_level == 1
        assert sample.n_software_threads == 8
        assert sample.smt_level == 1

    def test_progress_carries_over(self, system):
        app = SteadyApp(system, 4, get_workload("EP"), seed=1)
        app.advance(0.5)
        elapsed, work = app.elapsed_s, app.work_done
        app.switch_level(2)
        assert app.elapsed_s == elapsed
        assert app.work_done == work

    def test_same_level_is_noop(self, system):
        app = SteadyApp(system, 4, get_workload("EP"), seed=1)
        reference = app._reference
        app.switch_level(4)
        assert app._reference is reference  # no recompute

    def test_rejects_unsupported_level(self, system):
        app = SteadyApp(system, 4, get_workload("EP"), seed=1)
        with pytest.raises(ValueError):
            app.switch_level(3)
