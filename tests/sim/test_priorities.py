"""Tests for hardware-thread priorities (POWER-style, paper §I)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import power7
from repro.sim.fast_core import (
    CoreInput,
    NEUTRAL_PRIORITY,
    _water_fill,
    priority_weight,
    solve_core,
)

from tests.sim.helpers import fx_heavy_stream, balanced_stream


def contended_core(priorities=None):
    """Four FX-heavy threads: the FX ports saturate, so priority matters."""
    stream = fx_heavy_stream()
    return solve_core(
        CoreInput(power7(), 4, tuple([stream] * 4), threads_per_chip=4,
                  priorities=priorities)
    )


class TestPriorityWeight:
    def test_neutral_weight_is_one(self):
        assert priority_weight(NEUTRAL_PRIORITY) == 1.0

    def test_geometric_ladder(self):
        assert priority_weight(5) == 2 * priority_weight(4)
        assert priority_weight(3) == 0.5 * priority_weight(4)

    @pytest.mark.parametrize("bad", [-1, 8])
    def test_range_enforced(self, bad):
        with pytest.raises(ValueError):
            priority_weight(bad)


class TestWaterFill:
    def test_uniform_weights_scale_evenly(self):
        caps = np.array([1.0, 1.0, 1.0, 1.0])
        x = _water_fill(caps, np.ones(4), budget=2.0)
        assert np.allclose(x, 0.5)

    def test_weighted_allocation(self):
        caps = np.array([10.0, 10.0])
        x = _water_fill(caps, np.array([2.0, 1.0]), budget=3.0)
        assert x[0] == pytest.approx(2.0)
        assert x[1] == pytest.approx(1.0)

    def test_caps_respected_and_surplus_redistributed(self):
        caps = np.array([0.5, 10.0])
        x = _water_fill(caps, np.array([3.0, 1.0]), budget=4.0)
        assert x[0] == pytest.approx(0.5)
        assert x[1] == pytest.approx(3.5)

    @given(st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=2, max_size=6),
           st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=50)
    def test_never_exceeds_caps_or_budget(self, caps_list, budget):
        caps = np.array(caps_list)
        weights = np.ones(len(caps))
        x = _water_fill(caps, weights, budget)
        assert np.all(x <= caps + 1e-9)
        assert x.sum() <= min(budget, caps.sum()) + 1e-9


class TestCorePriorities:
    def test_default_matches_uniform(self):
        base = contended_core()
        neutral = contended_core(priorities=(4, 4, 4, 4))
        assert np.allclose(base.ipc, neutral.ipc)

    def test_boosted_thread_gains_under_contention(self):
        base = contended_core()
        boosted = contended_core(priorities=(6, 4, 4, 4))
        assert boosted.ipc[0] > base.ipc[0] * 1.2
        # The gain comes out of the neutral threads.
        assert boosted.ipc[1] < base.ipc[1]

    def test_priorities_neutral_when_uncontended(self):
        stream = balanced_stream()
        base = solve_core(CoreInput(power7(), 2, (stream, stream), threads_per_chip=2))
        boosted = solve_core(
            CoreInput(power7(), 2, (stream, stream), threads_per_chip=2,
                      priorities=(7, 1))
        )
        # No structural contention -> priorities have nothing to divide.
        assert np.allclose(base.ipc, boosted.ipc)

    def test_core_throughput_roughly_conserved(self):
        base = contended_core()
        skewed = contended_core(priorities=(7, 4, 4, 1))
        assert skewed.core_ipc == pytest.approx(base.core_ipc, rel=0.15)

    def test_priority_count_validated(self):
        with pytest.raises(ValueError, match="priorities"):
            contended_core(priorities=(6, 4))
