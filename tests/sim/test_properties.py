"""Property-based invariants of the simulator, over random workloads.

Hypothesis draws workload seeds; :func:`random_workload` turns each
into a valid-but-arbitrary stream/sync pair.  Invariants here are the
ones every downstream consumer (metric, experiments) relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import nehalem, power7
from repro.sim.chip import solve_chip
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.fast_core import CoreInput, solve_core
from repro.sim.results import speedup
from repro.simos import SystemSpec
from repro.simos.scheduler import place_threads
from repro.util.rng import RngStream
from repro.workloads.synthetic import random_workload

seeds = st.integers(min_value=0, max_value=10_000)

P7 = SystemSpec(power7(), 1)


def stream_for(seed):
    return random_workload(RngStream(seed)).stream


class TestCoreInvariants:
    @given(seeds, st.sampled_from([1, 2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_output_bounds(self, seed, level):
        stream = stream_for(seed)
        out = solve_core(CoreInput(power7(), level, tuple([stream] * level),
                                   threads_per_chip=level))
        arch = power7()
        assert np.all(out.ipc >= 0)
        assert out.core_ipc <= arch.partition.issue_width + 1e-9
        assert out.core_ipc <= arch.partition.dispatch_width + 1e-9
        assert np.all(out.port_utilization <= 1.0 + 1e-9)
        assert 0.0 <= out.dispatch_held_fraction <= 1.0
        assert 0.0 < out.port_scale <= 1.0
        assert np.all(out.stall_fraction <= 1.0 + 1e-9)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_memory_latency_near_monotone(self, seed):
        # Slower memory cannot *help* beyond a small structural effect:
        # near the saturation boundary, throttling demand reduces
        # scheduling conflicts (the lambda ** 1.3 penalty relaxes), so
        # core IPC may tick up by a few percent — the same mechanism
        # that makes SMT itself sometimes counterproductive.  Bound the
        # effect; for genuinely memory-heavy streams latency must
        # strictly dominate it.
        stream = stream_for(seed)
        fast = solve_core(CoreInput(power7(), 4, tuple([stream] * 4),
                                    threads_per_chip=4, mem_latency_mult=1.0))
        slow = solve_core(CoreInput(power7(), 4, tuple([stream] * 4),
                                    threads_per_chip=4, mem_latency_mult=4.0))
        assert slow.core_ipc <= fast.core_ipc * 1.05
        if stream.memory.l3_mpki > 5.0 and slow.port_scale >= 1.0:
            # Strictly worse — unless the core is structurally capped,
            # where memory latency is not the binding constraint.
            assert slow.core_ipc < fast.core_ipc

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_per_thread_ipc_drops_with_contexts(self, seed):
        stream = stream_for(seed)
        solo = solve_core(CoreInput(power7(), 1, (stream,), threads_per_chip=1))
        packed = solve_core(CoreInput(power7(), 4, tuple([stream] * 4),
                                      threads_per_chip=4))
        assert packed.ipc[0] <= solo.ipc[0] + 1e-9

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_nehalem_bounds(self, seed):
        stream = stream_for(seed)
        out = solve_core(CoreInput(nehalem(), 2, (stream, stream), threads_per_chip=2))
        assert out.core_ipc <= nehalem().partition.dispatch_width + 1e-9


class TestChipInvariants:
    @given(seeds, st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_fixed_point_consistency(self, seed, level):
        stream = stream_for(seed)
        placement = place_threads(P7, level, P7.contexts_at(level))
        sol = solve_chip(placement, stream)
        assert 1.0 <= sol.mem_latency_mult <= 10.0 + 1e-9
        assert 0.0 <= sol.mem_utilization <= 1.0 + 1e-9
        assert len(sol.per_thread_ipc()) == P7.contexts_at(level)
        # The converged point never sits above the capacity knee.
        assert sol.mem_utilization <= 0.97


class TestRunInvariants:
    @given(seeds, st.sampled_from([1, 4]))
    @settings(max_examples=25, deadline=None)
    def test_run_self_consistency(self, seed, level):
        spec = random_workload(RngStream(seed))
        run = simulate_run(RunSpec(P7, level, spec.stream, spec.sync,
                                   seed=seed, noise_rel=0.0))
        sample = run.counter_sample()
        # Class counters reconstruct the executed mix exactly.
        class_total = sum(sample.class_counts().values())
        assert class_total == pytest.approx(sample.instructions, rel=1e-6)
        # Hierarchy monotone in the counters too.
        assert sample.count("L1_DMISS") >= sample.count("L2_MISS") >= sample.count("L3_MISS")
        # Time accounting sane.
        assert sample.scalability_ratio >= 1.0 - 1e-6
        assert run.wall_time_s > 0

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_self_speedup_is_one(self, seed):
        spec = random_workload(RngStream(seed))
        a = simulate_run(RunSpec(P7, 4, spec.stream, spec.sync, seed=1, noise_rel=0.0))
        b = simulate_run(RunSpec(P7, 4, spec.stream, spec.sync, seed=2, noise_rel=0.0))
        assert speedup(a, b) == pytest.approx(1.0, rel=1e-9)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_spin_only_when_contended(self, seed):
        spec = random_workload(RngStream(seed))
        run = simulate_run(RunSpec(P7, 4, spec.stream, spec.sync, seed=seed))
        if spec.sync.spin_coeff == 0.0 and spec.sync.lock_serial_fraction == 0.0:
            assert run.spin_fraction == 0.0
        assert 0.0 <= run.spin_fraction < 1.0
