"""Tests for the perf-stat-like sampler and its overhead model."""

import pytest

from repro.arch import power7
from repro.arch.classes import InstrClass
from repro.counters.groups import CounterGroup, MultiplexSchedule
from repro.counters.perfstat import PerfStat, PerfStatConfig
from repro.counters.pmu import CounterSample


class StationaryApp:
    """Fake app producing exact, rate-proportional counters."""

    def __init__(self, ipc=1.0, freq=1e9):
        self.arch = power7()
        self.freq = freq
        self.ipc = ipc
        self.advanced_s = 0.0

    def advance(self, wall_seconds):
        self.advanced_s += wall_seconds
        cycles = wall_seconds * self.freq
        instrs = cycles * self.ipc
        events = {
            "CYCLES": cycles,
            "INSTRUCTIONS": instrs,
            "DISP_HELD_RES": 0.1 * cycles,
            "LD_CMPL": 0.2 * instrs,
            "ST_CMPL": 0.1 * instrs,
            "BR_CMPL": 0.15 * instrs,
            "FX_CMPL": 0.3 * instrs,
            "VS_CMPL": 0.25 * instrs,
            "L1_DMISS": 0.01 * instrs,
            "L2_MISS": 0.002 * instrs,
            "L3_MISS": 0.0005 * instrs,
            "BR_MISPRED": 0.001 * instrs,
        }
        return CounterSample(
            arch=self.arch,
            smt_level=4,
            events=events,
            wall_time_s=wall_seconds,
            avg_thread_cpu_s=wall_seconds * 0.95,
            n_software_threads=32,
        )


class TestConfig:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            PerfStatConfig(interval_s=0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            PerfStatConfig(overhead_per_sample_s=-1.0)

    def test_overhead_fraction(self):
        cfg = PerfStatConfig(interval_s=0.09, overhead_per_sample_s=0.01)
        assert cfg.overhead_fraction == pytest.approx(0.1)


class TestMeasurement:
    def test_number_of_readings_no_overhead(self):
        readings = PerfStat(PerfStatConfig(interval_s=0.1)).measure(StationaryApp(), 1.0)
        assert len(readings) == 10

    def test_overhead_reduces_reading_count(self):
        cfg = PerfStatConfig(interval_s=0.1, overhead_per_sample_s=0.1)
        readings = PerfStat(cfg).measure(StationaryApp(), 1.0)
        assert len(readings) == 5

    def test_too_short_duration_raises(self):
        with pytest.raises(ValueError, match="shorter"):
            PerfStat(PerfStatConfig(interval_s=1.0)).measure(StationaryApp(), 0.5)

    def test_exact_mode_matches_app(self):
        readings = PerfStat(PerfStatConfig(interval_s=0.1)).measure(StationaryApp(), 0.3)
        s = readings[0].sample
        assert s.ipc == pytest.approx(1.0)
        assert s.dispatch_held_fraction == pytest.approx(0.1)

    def test_readings_cover_timeline(self):
        cfg = PerfStatConfig(interval_s=0.1, overhead_per_sample_s=0.02)
        readings = PerfStat(cfg).measure(StationaryApp(), 0.5)
        for earlier, later in zip(readings, readings[1:]):
            assert later.t_start_s == pytest.approx(earlier.t_end_s)


class TestMultiplexingAndPollution:
    def test_multiplexed_estimate_unbiased_when_stationary(self):
        sched = MultiplexSchedule(
            [CounterGroup("A", ("CYCLES", "INSTRUCTIONS", "DISP_HELD_RES")),
             CounterGroup("B", ("L1_DMISS", "BR_MISPRED"))],
            width=6,
        )
        cfg = PerfStatConfig(interval_s=0.1, multiplex=sched)
        readings = PerfStat(cfg).measure(StationaryApp(), 0.2)
        s = readings[0].sample
        # Scaled estimates should match the exact stationary rates.
        assert s.ipc == pytest.approx(1.0, rel=1e-6)
        assert s.l1_mpki == pytest.approx(10.0, rel=1e-6)

    def test_uncovered_events_pass_through(self):
        sched = MultiplexSchedule([CounterGroup("A", ("L1_DMISS",))], width=6)
        cfg = PerfStatConfig(interval_s=0.1, multiplex=sched)
        readings = PerfStat(cfg).measure(StationaryApp(), 0.1)
        assert readings[0].sample.count("CYCLES") > 0

    def test_pollution_shifts_mix_toward_tool(self):
        clean = PerfStat(PerfStatConfig(interval_s=0.1)).measure(StationaryApp(), 0.1)
        cfg = PerfStatConfig(interval_s=0.1, tool_instructions_per_sample=1e7)
        dirty = PerfStat(cfg).measure(StationaryApp(), 0.1)
        clean_vs = clean[0].sample.mix()[InstrClass.VS]
        dirty_vs = dirty[0].sample.mix()[InstrClass.VS]
        # Tool instructions contain no VS work -> VS fraction diluted.
        assert dirty_vs < clean_vs

    def test_pollution_increases_instruction_count(self):
        cfg = PerfStatConfig(interval_s=0.1, tool_instructions_per_sample=1e6)
        readings = PerfStat(cfg).measure(StationaryApp(), 0.1)
        assert readings[0].sample.instructions == pytest.approx(1e8 + 1e6, rel=1e-6)

    def test_jitter_perturbs_counts(self):
        cfg = PerfStatConfig(interval_s=0.1, jitter_rel=0.05)
        readings = PerfStat(cfg).measure(StationaryApp(), 0.1)
        assert readings[0].sample.ipc != pytest.approx(1.0, abs=1e-12)


class TestMultiplexEdgeCases:
    def test_single_group_is_exact(self):
        # One group means no rotation at all: estimates must equal the
        # exact counts, not a scaled version of them.
        sched = MultiplexSchedule(
            [CounterGroup("only", ("CYCLES", "INSTRUCTIONS"))], width=6
        )
        cfg = PerfStatConfig(interval_s=0.1, multiplex=sched)
        readings = PerfStat(cfg).measure(StationaryApp(), 0.1)
        assert readings[0].sample.count("CYCLES") == pytest.approx(1e8, rel=1e-9)

    def test_more_groups_than_sub_intervals_rejected(self):
        sched = MultiplexSchedule(
            [CounterGroup("A", ("CYCLES",)), CounterGroup("B", ("L1_DMISS",))],
            width=6,
        )
        with pytest.raises(ValueError, match="sub-intervals"):
            sched.estimate([{"CYCLES": 1.0}])  # one sub, two groups

    def test_zero_length_interval_counts_stay_zero(self):
        # A sub-interval in which nothing ran (all counts zero) must
        # produce zero estimates, not a scaling blow-up.
        sched = MultiplexSchedule(
            [CounterGroup("A", ("CYCLES",)), CounterGroup("B", ("L1_DMISS",))],
            width=6,
        )
        estimates = sched.estimate([
            {"CYCLES": 0.0, "L1_DMISS": 0.0},
            {"CYCLES": 0.0, "L1_DMISS": 0.0},
        ])
        assert estimates == {"CYCLES": 0.0, "L1_DMISS": 0.0}


class TestStandaloneSample:
    def test_successive_samples_accumulate_clock(self):
        cfg = PerfStatConfig(interval_s=0.1, overhead_per_sample_s=0.02)
        perf = PerfStat(cfg)
        first = perf.sample(StationaryApp())
        second = perf.sample(StationaryApp())
        assert first.t_start_s == 0.0
        assert first.t_end_s == pytest.approx(0.12)
        assert second.t_start_s == pytest.approx(first.t_end_s)

    def test_sample_advances_exactly_one_interval(self):
        app = StationaryApp()
        PerfStat(PerfStatConfig(interval_s=0.1)).sample(app)
        assert app.advanced_s == pytest.approx(0.1)
