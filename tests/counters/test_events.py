"""Tests for event definitions."""

import pytest

from repro.arch import nehalem, power7
from repro.counters.events import (
    CANONICAL_EVENTS,
    CLASS_COUNT_EVENTS,
    Event,
    EventDomain,
    arch_event_names,
    port_issue_event,
)


class TestEventDefinitions:
    def test_canonical_events_unique(self):
        names = [e.name for e in CANONICAL_EVENTS]
        assert len(set(names)) == len(names)

    def test_required_metric_events_present(self):
        names = {e.name for e in CANONICAL_EVENTS}
        assert {"CYCLES", "INSTRUCTIONS", "DISP_HELD_RES"} <= names

    def test_fig2_baseline_events_present(self):
        # Fig. 2 needs L1 misses, CPI inputs, branch mispredicts, VSU counts.
        names = {e.name for e in CANONICAL_EVENTS}
        assert {"L1_DMISS", "BR_MISPRED", "VS_CMPL"} <= names

    def test_class_count_events_cover_all_classes(self):
        assert len(CLASS_COUNT_EVENTS) == 5

    def test_event_name_validation(self):
        with pytest.raises(ValueError, match="identifier"):
            Event("BAD NAME", EventDomain.EVENTS, "x")

    def test_port_issue_event_naming(self):
        assert port_issue_event("P0") == "PORT_ISSUE_P0"


class TestArchEventNames:
    def test_power7_includes_port_counters(self):
        names = arch_event_names(power7())
        assert "PORT_ISSUE_LS" in names and "PORT_ISSUE_BR" in names

    def test_nehalem_includes_six_ports(self):
        names = arch_event_names(nehalem())
        assert sum(1 for n in names if n.startswith("PORT_ISSUE_")) == 6

    def test_no_duplicates(self):
        names = arch_event_names(power7())
        assert len(set(names)) == len(names)
