"""Tests for counter-group multiplexing."""

import pytest
from hypothesis import given, strategies as st

from repro.counters.groups import CounterGroup, MultiplexSchedule, default_groups
from repro.util.rng import RngStream


def two_group_schedule():
    return MultiplexSchedule(
        [CounterGroup("A", ("CYCLES", "INSTRUCTIONS")), CounterGroup("B", ("L1_DMISS",))],
        width=6,
    )


class TestConstruction:
    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="no events"):
            CounterGroup("A", ())

    def test_rejects_duplicate_events_in_group(self):
        with pytest.raises(ValueError, match="duplicate"):
            CounterGroup("A", ("X", "X"))

    def test_rejects_group_wider_than_pmcs(self):
        with pytest.raises(ValueError, match="physical counters"):
            MultiplexSchedule([CounterGroup("A", tuple(f"E{i}" for i in range(7)))], width=6)

    def test_rejects_event_in_two_groups(self):
        with pytest.raises(ValueError, match="appears in groups"):
            MultiplexSchedule(
                [CounterGroup("A", ("X",)), CounterGroup("B", ("X",))], width=6
            )

    def test_rejects_duplicate_group_names(self):
        with pytest.raises(ValueError, match="duplicate group names"):
            MultiplexSchedule(
                [CounterGroup("A", ("X",)), CounterGroup("A", ("Y",))], width=6
            )

    def test_schedule_fractions_sum_to_one(self):
        sched = two_group_schedule()
        assert sum(sched.schedule_fractions().values()) == pytest.approx(1.0)


class TestEstimation:
    def test_stationary_workload_unbiased(self):
        sched = two_group_schedule()
        # 4 identical sub-intervals, each with the same true counts.
        subs = [{"CYCLES": 100.0, "INSTRUCTIONS": 80.0, "L1_DMISS": 5.0}] * 4
        est = sched.estimate(subs)
        # Each group live half the time -> observed sum is half the
        # total -> scaling by 2 recovers the truth.
        assert est["CYCLES"] == pytest.approx(400.0)
        assert est["L1_DMISS"] == pytest.approx(20.0)

    def test_phased_workload_biased(self):
        sched = two_group_schedule()
        # L1_DMISS only happens in sub-intervals when group B is *not* live.
        subs = [
            {"CYCLES": 100.0, "INSTRUCTIONS": 80.0, "L1_DMISS": 50.0},  # A live
            {"CYCLES": 100.0, "INSTRUCTIONS": 80.0, "L1_DMISS": 0.0},   # B live
        ] * 2
        est = sched.estimate(subs)
        # True total is 100 but B never observed any: aliasing to zero.
        assert est["L1_DMISS"] == 0.0

    def test_requires_enough_sub_intervals(self):
        sched = two_group_schedule()
        with pytest.raises(ValueError, match="sub-intervals"):
            sched.estimate([{"CYCLES": 1.0}])

    def test_jitter_applied(self):
        sched = two_group_schedule()
        subs = [{"CYCLES": 100.0, "INSTRUCTIONS": 80.0, "L1_DMISS": 5.0}] * 4
        est = sched.estimate(subs, rng=RngStream(1), jitter_rel=0.1)
        assert est["CYCLES"] != pytest.approx(400.0, abs=1e-9)

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=5))
    def test_unbiased_for_any_group_count(self, n_groups, reps):
        groups = [CounterGroup(f"G{i}", (f"E{i}",)) for i in range(n_groups)]
        sched = MultiplexSchedule(groups, width=6)
        subs = [{f"E{i}": 10.0 for i in range(n_groups)}] * (n_groups * reps)
        est = sched.estimate(subs)
        for i in range(n_groups):
            assert est[f"E{i}"] == pytest.approx(10.0 * n_groups * reps)


class TestDefaultGroups:
    def test_packs_by_width(self):
        sched = default_groups([f"E{i}" for i in range(13)], width=6)
        assert sched.n_groups == 3
        assert len(sched.covered_events()) == 13

    def test_single_group_when_few_events(self):
        sched = default_groups(["A", "B"], width=6)
        assert sched.n_groups == 1
