"""Tests for the PMU and counter samples."""

import numpy as np
import pytest

from repro.arch import nehalem, power7
from repro.arch.classes import InstrClass
from repro.counters.events import port_issue_event
from repro.counters.pmu import CounterSample, Pmu


def base_events(**overrides):
    events = {
        "CYCLES": 1e6,
        "INSTRUCTIONS": 8e5,
        "DISP_HELD_RES": 1e5,
        "LD_CMPL": 2e5,
        "ST_CMPL": 1e5,
        "BR_CMPL": 1e5,
        "FX_CMPL": 2e5,
        "VS_CMPL": 2e5,
        "L1_DMISS": 8e3,
        "L2_MISS": 2e3,
        "L3_MISS": 5e2,
        "BR_MISPRED": 1e3,
    }
    events.update(overrides)
    return events


def make_sample(arch=None, **kwargs):
    arch = arch or power7()
    defaults = dict(
        arch=arch,
        smt_level=4,
        events=base_events(),
        wall_time_s=1.0,
        avg_thread_cpu_s=0.9,
        n_software_threads=32,
    )
    defaults.update(kwargs)
    return CounterSample(**defaults)


class TestPmu:
    def setup_method(self):
        self.pmu = Pmu(power7(), 4)

    def test_add_and_read(self):
        self.pmu.add(1, "CYCLES", 100)
        self.pmu.add(1, "CYCLES", 50)
        assert self.pmu.read(1, "CYCLES") == 150

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError, match="unknown event"):
            self.pmu.add(0, "NOT_AN_EVENT", 1)

    def test_context_bounds(self):
        with pytest.raises(IndexError):
            self.pmu.add(4, "CYCLES", 1)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            self.pmu.add(0, "CYCLES", -1)

    def test_total_sums_contexts(self):
        for ctx in range(4):
            self.pmu.add(ctx, "INSTRUCTIONS", 10)
        assert self.pmu.total("INSTRUCTIONS") == 40

    def test_aggregate_subset(self):
        self.pmu.add(0, "CYCLES", 5)
        self.pmu.add(3, "CYCLES", 7)
        assert self.pmu.aggregate([0, 1])["CYCLES"] == 5

    def test_reset(self):
        self.pmu.add(0, "CYCLES", 5)
        self.pmu.reset()
        assert self.pmu.total("CYCLES") == 0

    def test_port_events_exist(self):
        self.pmu.add(0, "PORT_ISSUE_LS", 3)
        assert self.pmu.read(0, "PORT_ISSUE_LS") == 3

    def test_snapshot_is_copy(self):
        snap = self.pmu.snapshot()
        snap[0, 0] = 999
        assert self.pmu.snapshot()[0, 0] == 0


class TestCounterSampleValidation:
    def test_missing_required_event(self):
        with pytest.raises(ValueError, match="DISP_HELD_RES"):
            make_sample(events={"CYCLES": 1.0, "INSTRUCTIONS": 1.0})

    def test_nonpositive_wall_time(self):
        with pytest.raises(ValueError, match="wall_time_s"):
            make_sample(wall_time_s=0.0)

    def test_invalid_smt_level(self):
        with pytest.raises(ValueError, match="SMT3"):
            make_sample(smt_level=3)


class TestCounterSampleDerived:
    def test_ipc_cpi_reciprocal(self):
        s = make_sample()
        assert s.ipc * s.cpi == pytest.approx(1.0)

    def test_dispatch_held_fraction(self):
        s = make_sample()
        assert s.dispatch_held_fraction == pytest.approx(0.1)

    def test_dispatch_held_clamped_to_one(self):
        s = make_sample(events=base_events(DISP_HELD_RES=2e6))
        assert s.dispatch_held_fraction == 1.0

    def test_scalability_ratio(self):
        s = make_sample(wall_time_s=2.0, avg_thread_cpu_s=1.0)
        assert s.scalability_ratio == pytest.approx(2.0)

    def test_mpki_values(self):
        s = make_sample()
        assert s.l1_mpki == pytest.approx(10.0)
        assert s.branch_mpki == pytest.approx(1.25)

    def test_vs_fraction(self):
        s = make_sample()
        assert s.vs_fraction == pytest.approx(0.25)

    def test_mix_reconstruction(self):
        s = make_sample()
        mix = s.mix()
        assert mix[InstrClass.LOAD] == pytest.approx(0.25)
        assert mix[InstrClass.VS] == pytest.approx(0.25)

    def test_metric_fractions_class_space(self):
        s = make_sample()
        fracs = s.metric_fractions()
        assert fracs.shape == (5,)
        assert fracs.sum() == pytest.approx(1.0)

    def test_metric_fractions_port_space(self):
        arch = nehalem()
        events = base_events()
        for i, port in enumerate(arch.topology.port_names):
            events[port_issue_event(port)] = 100.0 * (i + 1)
        s = make_sample(arch=arch, smt_level=2, events=events, n_software_threads=8)
        fracs = s.metric_fractions()
        assert fracs.shape == (6,)
        assert fracs[5] == pytest.approx(6 / 21)

    def test_metric_fractions_need_counts(self):
        arch = nehalem()
        s = make_sample(arch=arch, smt_level=2)
        with pytest.raises((ValueError, KeyError)):
            s.metric_fractions()

    def test_with_events_overrides(self):
        s = make_sample()
        s2 = s.with_events({"CYCLES": 2e6})
        assert s2.cycles == 2e6
        assert s2.instructions == s.instructions

    def test_unknown_event_lookup(self):
        with pytest.raises(KeyError, match="NOPE"):
            make_sample().count("NOPE")
