"""Tests for architecture-specific counter groups."""

import pytest

from repro.arch import generic_core, nehalem, power7
from repro.counters.arch_groups import (
    NEHALEM_FIXED,
    groups_for,
    missing_from_schedule,
    nehalem_groups,
    power7_groups,
)
from repro.core.metric import smtsm
from repro.counters.perfstat import PerfStat, PerfStatConfig
from repro.experiments.systems import nehalem_system, p7_system
from repro.sim.online import SteadyApp
from repro.workloads import get_workload


class TestPower7Groups:
    def test_respects_pmc_width(self):
        sched = power7_groups()
        for group in sched.groups:
            assert len(group.events) <= 6

    def test_covers_all_events(self):
        assert missing_from_schedule(power7(), power7_groups()) == []

    def test_metric_events_in_one_group(self):
        front = power7_groups().groups[0]
        assert "DISP_HELD_RES" in front.events
        assert "CYCLES" in front.events


class TestNehalemGroups:
    def test_respects_pmc_width(self):
        for group in nehalem_groups().groups:
            assert len(group.events) <= 4

    def test_only_fixed_counters_uncovered(self):
        missing = missing_from_schedule(nehalem(), nehalem_groups())
        assert set(missing) == set(NEHALEM_FIXED)

    def test_all_ports_covered(self):
        covered = set(nehalem_groups().covered_events())
        for i in range(6):
            assert f"PORT_ISSUE_P{i}" in covered


class TestGroupsFor:
    def test_dispatch_by_name(self):
        assert groups_for(power7()).groups[0].name.startswith("P7")
        assert groups_for(nehalem()).groups[0].name.startswith("NH")

    def test_generic_fallback_covers_everything(self):
        arch = generic_core()
        assert missing_from_schedule(arch, groups_for(arch)) == []


class TestMetricThroughRealisticSchedules:
    @pytest.mark.parametrize("system_fn,level,workload", [
        (p7_system, 4, "SSCA2"),
        (nehalem_system, 2, "Streamcluster"),
    ])
    def test_multiplexed_metric_matches_exact(self, system_fn, level, workload):
        system = system_fn()
        app = SteadyApp(system, level, get_workload(workload), seed=3)
        exact = smtsm(app.advance(0.5))
        sched = groups_for(system.arch)
        cfg = PerfStatConfig(interval_s=0.2, multiplex=sched)
        reading = PerfStat(cfg).measure(app, 0.2)[0]
        estimated = smtsm(reading.sample)
        # Stationary workload: multiplex scaling must be unbiased.
        assert estimated.value == pytest.approx(exact.value, rel=0.02)
