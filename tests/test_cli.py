"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.obs import configure, read_events


class TestListAndShow:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "EP" in out and "Blackscholes" in out

    def test_list_workloads_suite_filter(self, capsys):
        assert main(["list-workloads", "--suite", "parsec"]) == 0
        out = capsys.readouterr().out
        assert "Dedup" in out
        assert "Swim" not in out

    def test_show_workload(self, capsys):
        assert main(["show-workload", "SSCA2"]) == 0
        out = capsys.readouterr().out
        assert "Lock heavy" in out
        assert "MPKI" in out

    def test_show_unknown_raises(self):
        with pytest.raises(KeyError):
            main(["show-workload", "doom"])


class TestRun:
    def test_run_all_levels(self, capsys):
        assert main(["run", "EP", "--system", "p7"]) == 0
        out = capsys.readouterr().out
        assert "SMT1" in out and "SMT4" in out
        assert "SMTsm@SMT4 factors" in out

    def test_run_single_level(self, capsys):
        assert main(["run", "EP", "--system", "nehalem", "--smt", "2"]) == 0
        out = capsys.readouterr().out
        assert "SMT2" in out and "SMT1" not in out.split("factors")[0]

    def test_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "EP", "--system", "sparc"])


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def _restore_global_tracer(self):
        # ``run --telemetry`` mutates the process-wide tracer; put it
        # back so later tests see the default disabled state.
        yield
        tracer = configure(enabled=False)
        tracer.reset()

    def test_run_with_telemetry_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "EP", "--smt", "4", "--no-cache",
                     "--telemetry", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"telemetry written to {trace}" in out
        events = read_events(trace)
        assert events[0]["type"] == "meta"
        spans = [e for e in events if e["type"] == "span"]
        names = {e["name"] for e in spans}
        assert "cli.run" in names and "table.simulate_many" in names
        (top,) = [e for e in spans if e["name"] == "cli.run"]
        assert top["attrs"]["workload"] == "EP"
        assert top["attrs"]["cache_misses"] == 1
        counters = {e["name"] for e in events if e["type"] == "counter"}
        assert "table.solves" in counters

    def test_stats_summarizes_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(["run", "EP", "--smt", "4", "--no-cache",
              "--telemetry", str(trace)])
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "cli.run" in out
        assert "table.solves" in out

    def test_stats_picks_latest_from_directory(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(["run", "EP", "--smt", "4", "--no-cache",
              "--telemetry", str(trace)])
        capsys.readouterr()
        assert main(["stats", str(tmp_path)]) == 0
        assert f"telemetry: {trace}" in capsys.readouterr().out

    def test_stats_without_trace_exits_clean(self, capsys, tmp_path):
        # No telemetry recorded yet is a normal state: exit 0, clear message.
        assert main(["stats", str(tmp_path / "empty")]) == 0
        assert "no telemetry" in capsys.readouterr().out

    def test_stats_missing_default_dir_exits_clean(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "absent"))
        assert main(["stats"]) == 0
        assert "no telemetry" in capsys.readouterr().out

    def test_stats_empty_file_exits_clean(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        assert main(["stats", str(trace)]) == 0
        assert "no telemetry events" in capsys.readouterr().out

    def test_stats_truncated_records_exit_clean(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            '{"type": "meta", "schema": 1}\n'
            '{"type": "counter", "name": "runner.runs", "value": 3}\n'
            '{"type": "counter", "name": "no.value"}\n'       # field lost
            '{"type": "gauge", "name": "g", "value": "junk"}\n'
            '{"type": "span", "name": "run", "path": "run", "duration_s": nul'
        )
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "runner.runs" in out
        assert "no.value" not in out


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "table1" in out and "batch" in out

    def test_unknown_returns_error(self, capsys):
        assert main(["experiment", "fig99"]) == 1

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "Equake" in out

    def test_priorities(self, capsys):
        assert main(["experiment", "priorities"]) == 0
        assert "priority" in capsys.readouterr().out
