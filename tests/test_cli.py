"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListAndShow:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "EP" in out and "Blackscholes" in out

    def test_list_workloads_suite_filter(self, capsys):
        assert main(["list-workloads", "--suite", "parsec"]) == 0
        out = capsys.readouterr().out
        assert "Dedup" in out
        assert "Swim" not in out

    def test_show_workload(self, capsys):
        assert main(["show-workload", "SSCA2"]) == 0
        out = capsys.readouterr().out
        assert "Lock heavy" in out
        assert "MPKI" in out

    def test_show_unknown_raises(self):
        with pytest.raises(KeyError):
            main(["show-workload", "doom"])


class TestRun:
    def test_run_all_levels(self, capsys):
        assert main(["run", "EP", "--system", "p7"]) == 0
        out = capsys.readouterr().out
        assert "SMT1" in out and "SMT4" in out
        assert "SMTsm@SMT4 factors" in out

    def test_run_single_level(self, capsys):
        assert main(["run", "EP", "--system", "nehalem", "--smt", "2"]) == 0
        out = capsys.readouterr().out
        assert "SMT2" in out and "SMT1" not in out.split("factors")[0]

    def test_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "EP", "--system", "sparc"])


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "table1" in out and "batch" in out

    def test_unknown_returns_error(self, capsys):
        assert main(["experiment", "fig99"]) == 1

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "Equake" in out

    def test_priorities(self, capsys):
        assert main(["experiment", "priorities"]) == 0
        assert "priority" in capsys.readouterr().out
