"""Tests for noise-hardened SMTsm estimation and online control."""

import pytest

from repro.arch import power7
from repro.core.metric import smtsm
from repro.core.predictor import SmtPredictor
from repro.core.robust import (
    HardenedConfig,
    HardenedController,
    drive_online,
    naive_decision,
    robust_smtsm,
)
from repro.counters.perfstat import PerfStat, PerfStatConfig
from repro.counters.pmu import CounterSample

pytestmark = pytest.mark.faults

ARCH = power7()


def make_sample(disp_frac=0.1, smt_level=4, drop=()):
    """A POWER7 sample whose metric scales with ``disp_frac``."""
    cycles, instrs = 1e8, 1e8
    events = {
        "CYCLES": cycles,
        "INSTRUCTIONS": instrs,
        "DISP_HELD_RES": disp_frac * cycles,
        "LD_CMPL": 0.20 * instrs,
        "ST_CMPL": 0.10 * instrs,
        "BR_CMPL": 0.15 * instrs,
        "FX_CMPL": 0.30 * instrs,
        "VS_CMPL": 0.25 * instrs,
    }
    for name in drop:
        del events[name]
    return CounterSample(
        arch=ARCH,
        smt_level=smt_level,
        events=events,
        wall_time_s=0.1,
        avg_thread_cpu_s=0.095,
        n_software_threads=32,
    )


# Metric values for the two operating points used throughout; the
# predictor threshold sits between them.
LOW = smtsm(make_sample(disp_frac=0.02)).value
HIGH = smtsm(make_sample(disp_frac=0.40)).value
PREDICTOR = SmtPredictor(threshold=(LOW + HIGH) / 2, high_level=4, low_level=1)


def controller(**overrides):
    defaults = dict(ewma_alpha=0.5, hysteresis_rel=0.15,
                    cooldown_intervals=3, warmup_samples=2, probe_every=4)
    defaults.update(overrides)
    return HardenedController({1: PREDICTOR}, HardenedConfig(**defaults))


class TestRobustSmtsm:
    def test_complete_sample_matches_smtsm(self):
        sample = make_sample()
        est = robust_smtsm(sample)
        assert not est.degraded
        assert est.confidence == 1.0
        assert est.missing_events == ()
        assert est.value == pytest.approx(smtsm(sample).value)

    def test_missing_class_degrades_with_confidence(self):
        est = robust_smtsm(make_sample(drop=("VS_CMPL",)))
        assert est.degraded
        assert est.missing_events == ("VS_CMPL",)
        # Confidence is the surviving ideal-vector mass (1 - 2/7).
        assert est.confidence == pytest.approx(1 - 2 / 7, rel=1e-6)
        assert est.value is not None and est.value > 0

    def test_fillin_is_conservative(self):
        # The ideal-share fill-in never manufactures deviation: with the
        # most deviant class unobserved the estimate can only shrink.
        full = robust_smtsm(make_sample()).value
        part = robust_smtsm(make_sample(drop=("VS_CMPL",))).value
        assert part < full

    def test_all_classes_missing_yields_none(self):
        est = robust_smtsm(make_sample(
            drop=("LD_CMPL", "ST_CMPL", "BR_CMPL", "FX_CMPL", "VS_CMPL")
        ))
        assert est.value is None
        assert est.confidence == 0.0
        assert est.degraded


class TestControllerDecisions:
    def test_warmup_blocks_early_switch(self):
        ctrl = controller(warmup_samples=5)
        for _ in range(4):
            decision = ctrl.observe(make_sample(disp_frac=0.40))
            assert decision.switched_to is None
        assert ctrl.level == 4

    def test_sustained_high_metric_switches_down(self):
        ctrl = controller()
        for _ in range(6):
            ctrl.observe(make_sample(disp_frac=0.40))
        assert ctrl.level == 1
        assert ctrl.n_switches == 1

    def test_hysteresis_holds_near_threshold(self):
        # A metric above the threshold but inside the +15% band must not
        # pull the controller off the max level.
        target = PREDICTOR.threshold * 1.10
        disp = 0.40 * target / HIGH
        ctrl = controller()
        for _ in range(10):
            ctrl.observe(make_sample(disp_frac=disp))
        assert ctrl.level == 4
        assert ctrl.n_switches == 0

    def test_cooldown_debounces(self):
        ctrl = controller(cooldown_intervals=5)
        for _ in range(3):
            ctrl.observe(make_sample(disp_frac=0.40))
        assert ctrl.level == 1
        # Cooldown active: blind intervals at the new level cannot
        # immediately probe back up.
        d = ctrl.observe(make_sample(disp_frac=0.02, smt_level=1))
        assert d.switched_to is None
        assert ctrl.level == 1

    def test_single_glitch_never_switches(self):
        ctrl = controller()
        for _ in range(5):
            ctrl.observe(make_sample(disp_frac=0.02))
        # One wildly-high reading: outlier-damped, and the EWMA keeps
        # the smoothed estimate under the threshold.
        d = ctrl.observe(make_sample(disp_frac=0.90))
        assert d.raw > PREDICTOR.threshold
        assert d.smoothed < PREDICTOR.threshold
        assert ctrl.level == 4

    def test_low_confidence_updates_but_never_switches(self):
        drop = ("ST_CMPL", "BR_CMPL", "FX_CMPL", "VS_CMPL")  # keep LD only
        ctrl = controller()
        for _ in range(10):
            d = ctrl.observe(make_sample(disp_frac=0.40, drop=drop))
            assert d.degraded
            assert d.confidence < ctrl.config.min_confidence
        assert ctrl.smoothed is not None
        assert ctrl.level == 4

    def test_unmeasurable_interval_holds_everything(self):
        ctrl = controller()
        d = ctrl.observe(make_sample(
            drop=("LD_CMPL", "ST_CMPL", "BR_CMPL", "FX_CMPL", "VS_CMPL")
        ))
        assert d.raw is None and d.degraded
        assert ctrl.level == 4

    def test_blind_intervals_probe_back_up(self):
        ctrl = controller(cooldown_intervals=0, probe_every=4)
        for _ in range(3):
            ctrl.observe(make_sample(disp_frac=0.40))
        assert ctrl.level == 1
        switches = []
        for _ in range(4):
            d = ctrl.observe(make_sample(disp_frac=0.02, smt_level=1))
            switches.append(d.switched_to)
        assert switches[-1] == 4
        assert ctrl.level == 4

    def test_reset_forgets_estimate(self):
        ctrl = controller()
        ctrl.observe(make_sample(disp_frac=0.40))
        ctrl.reset()
        assert ctrl.smoothed is None


class TestControllerValidation:
    def test_rejects_empty_predictors(self):
        with pytest.raises(ValueError):
            HardenedController({})

    def test_rejects_mismatched_key(self):
        with pytest.raises(ValueError):
            HardenedController({2: PREDICTOR})  # predictor covers low=1

    def test_rejects_disagreeing_max_levels(self):
        other = SmtPredictor(threshold=0.1, high_level=2, low_level=1)
        with pytest.raises(ValueError):
            HardenedController({1: PREDICTOR, 2: other})

    @pytest.mark.parametrize("bad", [
        {"ewma_alpha": 0.0},
        {"hysteresis_rel": 1.0},
        {"cooldown_intervals": -1},
        {"warmup_samples": 0},
        {"outlier_rel": 1.0},
        {"probe_every": 0},
    ])
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            HardenedConfig(**bad)


class TestNaiveDecision:
    def test_clean_sample_recommends(self):
        assert naive_decision(make_sample(disp_frac=0.02), {1: PREDICTOR}) == 4
        assert naive_decision(make_sample(disp_frac=0.40), {1: PREDICTOR}) == 1

    def test_missing_events_crash_to_none(self):
        sample = make_sample(drop=("VS_CMPL",))
        assert naive_decision(sample, {1: PREDICTOR}) is None


class SwitchableApp:
    """Stationary app that honours SMT switches (for drive_online)."""

    def __init__(self, disp_frac):
        self.disp_frac = disp_frac
        self.smt_level = 4
        self.switches = []

    def switch_level(self, level):
        self.switches.append(level)
        self.smt_level = level

    def advance(self, wall_seconds):
        return make_sample(disp_frac=self.disp_frac, smt_level=self.smt_level)


class TestDriveOnline:
    def test_loop_applies_switches(self):
        app = SwitchableApp(disp_frac=0.40)
        perf = PerfStat(PerfStatConfig(interval_s=0.05))
        decisions = drive_online(app, perf, controller(), 5)
        assert len(decisions) == 5
        assert app.switches == [1]
        assert app.smt_level == 1

    def test_loop_probes_back_from_blind_level(self):
        # Once the app sits below the max level the metric is blind;
        # after enough blind intervals the loop probes back up.
        app = SwitchableApp(disp_frac=0.40)
        perf = PerfStat(PerfStatConfig(interval_s=0.05))
        drive_online(app, perf, controller(), 12)
        assert app.switches[:2] == [1, 4]

    def test_rejects_zero_intervals(self):
        app = SwitchableApp(disp_frac=0.02)
        perf = PerfStat(PerfStatConfig(interval_s=0.05))
        with pytest.raises(ValueError):
            drive_online(app, perf, controller(), 0)
