"""Tests for the metric tracker and the online optimizer."""

import pytest

from repro.arch import power7
from repro.core.metric import SmtsmResult
from repro.core.optimizer import OnlineSmtOptimizer, OptimizerConfig
from repro.core.phases import MetricTracker
from repro.core.predictor import SmtPredictor
from repro.simos import SystemSpec
from repro.workloads.phases import alternating
from repro.workloads.synthetic import compute_bound_workload, spin_bound_workload


def reading(value, smt=4):
    return SmtsmResult(value=value, mix_deviation=value, dispatch_held=1.0,
                       scalability_ratio=1.0, smt_level=smt, arch_name="POWER7")


class TestMetricTracker:
    def test_first_sample_sets_estimate(self):
        t = MetricTracker()
        assert t.estimate is None
        t.update(reading(0.05))
        assert t.estimate == pytest.approx(0.05)

    def test_ewma_smooths(self):
        t = MetricTracker(alpha=0.5, phase_change_rel=10.0)
        t.update(reading(0.10))
        t.update(reading(0.20))
        assert t.estimate == pytest.approx(0.15)

    def test_phase_change_detected_and_resets(self):
        t = MetricTracker(alpha=0.5, phase_change_rel=0.5, min_samples=1)
        t.update(reading(0.05))
        t.update(reading(0.05))
        changed = t.update(reading(0.30))
        assert changed
        assert t.estimate == pytest.approx(0.30)

    def test_small_noise_not_a_phase_change(self):
        t = MetricTracker(alpha=0.5, phase_change_rel=0.5, min_samples=1)
        t.update(reading(0.10))
        assert not t.update(reading(0.11))

    def test_reset(self):
        t = MetricTracker()
        t.update(reading(0.05))
        t.reset()
        assert t.estimate is None and t.n_samples == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricTracker(alpha=0.0)
        with pytest.raises(ValueError):
            MetricTracker(min_samples=0)


def p41(threshold=0.07):
    return SmtPredictor(threshold=threshold, high_level=4, low_level=1)


def p42(threshold=0.07):
    return SmtPredictor(threshold=threshold, high_level=4, low_level=2)


class TestOptimizerConfig:
    def test_rejects_empty_predictors(self):
        with pytest.raises(ValueError):
            OptimizerConfig(predictors={})

    def test_rejects_wrong_level_pairing(self):
        system = SystemSpec(power7(), 1)
        bad = {1: SmtPredictor(threshold=0.07, high_level=2, low_level=1)}
        with pytest.raises(ValueError, match="expected 4v1"):
            OnlineSmtOptimizer(system, OptimizerConfig(predictors=bad))

    def test_rejects_target_at_max(self):
        system = SystemSpec(power7(), 1)
        bad = {4: SmtPredictor(threshold=0.07, high_level=8, low_level=4)}
        with pytest.raises(ValueError):
            OnlineSmtOptimizer(system, OptimizerConfig(predictors=bad))


class TestOptimizerBehaviour:
    def make_optimizer(self, chunk=2e9, probe_every=3):
        system = SystemSpec(power7(), 1)
        config = OptimizerConfig(predictors={1: p41(), 2: p42()},
                                 chunk_work=chunk, probe_every=probe_every, seed=3)
        return OnlineSmtOptimizer(system, config)

    def test_stays_at_max_for_friendly_workload(self):
        opt = self.make_optimizer()
        workload = alternating("aa", compute_bound_workload("a"),
                               compute_bound_workload("b"),
                               work_per_phase=4e9, repeats=1)
        result = opt.run(workload)
        assert result.n_switches == 0
        assert all(s.smt_level == 4 for s in result.steps)

    def test_switches_down_for_contended_workload(self):
        opt = self.make_optimizer()
        spin = spin_bound_workload(lock_serial_fraction=0.5)
        workload = alternating("bb", spin, spin, work_per_phase=8e9, repeats=1)
        result = opt.run(workload)
        assert result.n_switches >= 1
        assert result.time_at_level(1) > 0

    def test_reprobes_after_parking_low(self):
        opt = self.make_optimizer(probe_every=2)
        spin = spin_bound_workload(lock_serial_fraction=0.5)
        workload = alternating("bb", spin, spin, work_per_phase=16e9, repeats=1)
        result = opt.run(workload)
        # Must return to SMT4 at least once to re-measure.
        levels = [s.smt_level for s in result.steps]
        assert 1 in levels
        first_low = levels.index(1)
        assert 4 in levels[first_low:]

    def test_adaptive_beats_static_max_on_mixed_phases(self):
        opt = self.make_optimizer(chunk=2e9)
        workload = alternating(
            "mixed", compute_bound_workload(),
            spin_bound_workload(lock_serial_fraction=0.5),
            work_per_phase=8e9, repeats=2,
        )
        adaptive = opt.run(workload).total_wall_time_s
        static4 = opt.run_static(workload, 4)
        assert adaptive < static4

    def test_metric_reported_only_at_max_level(self):
        opt = self.make_optimizer()
        spin = spin_bound_workload(lock_serial_fraction=0.5)
        result = opt.run(alternating("bb", spin, spin, work_per_phase=8e9, repeats=1))
        for step in result.steps:
            assert (step.metric is not None) == (step.smt_level == 4)
