"""Tests for Gini-impurity and PPI threshold selection (§V)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.thresholds import (
    best_ppi_threshold,
    gini_curve,
    gini_impurity,
    optimal_threshold_range,
    ppi_curve,
    ppi_plateau,
)

# A cleanly separable toy set: metric < 0.1 wins at high SMT.
CLEAN_METRICS = [0.01, 0.02, 0.05, 0.08, 0.15, 0.2, 0.3]
CLEAN_SPEEDUPS = [2.0, 1.8, 1.5, 1.2, 0.8, 0.6, 0.4]


class TestGiniImpurity:
    def test_perfect_separator_zero_impurity(self):
        assert gini_impurity(CLEAN_METRICS, CLEAN_SPEEDUPS, 0.1) == pytest.approx(0.0)

    def test_worst_separator_high_impurity(self):
        # Everything on one side: impurity equals the base rate impurity.
        value = gini_impurity(CLEAN_METRICS, CLEAN_SPEEDUPS, 1e9)
        p1 = 4 / 7
        assert value == pytest.approx(1 - p1 ** 2 - (1 - p1) ** 2)

    def test_eq4_to_6_by_hand(self):
        # separator 0.17: left = {4 wins, 1 loss}, right = {2 losses}.
        value = gini_impurity(CLEAN_METRICS, CLEAN_SPEEDUPS, 0.17)
        il = 1 - (4 / 5) ** 2 - (1 / 5) ** 2
        expected = (5 / 7) * il + (2 / 7) * 0.0
        assert value == pytest.approx(expected)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            gini_impurity([0.1], [1.0, 2.0], 0.5)

    def test_rejects_negative_metric(self):
        with pytest.raises(ValueError):
            gini_impurity([-0.1, 0.2], [1.0, 2.0], 0.5)

    @given(st.floats(min_value=0.0, max_value=0.5))
    def test_impurity_bounds(self, separator):
        value = gini_impurity(CLEAN_METRICS, CLEAN_SPEEDUPS, separator)
        assert 0.0 <= value <= 0.5


class TestOptimalRange:
    def test_finds_separating_range(self):
        lo, hi, imp = optimal_threshold_range(CLEAN_METRICS, CLEAN_SPEEDUPS)
        assert imp == pytest.approx(0.0)
        assert 0.08 < lo <= hi < 0.15

    def test_curve_minimum_matches_range(self):
        curve = gini_curve(CLEAN_METRICS, CLEAN_SPEEDUPS, n_points=500)
        best = min(p.impurity for p in curve)
        _, _, imp = optimal_threshold_range(CLEAN_METRICS, CLEAN_SPEEDUPS)
        assert best == pytest.approx(imp, abs=1e-9)

    def test_noisy_data_nonzero_impurity(self):
        metrics = CLEAN_METRICS + [0.05, 0.25]
        speedups = CLEAN_SPEEDUPS + [0.95, 1.1]  # two misfits
        _, _, imp = optimal_threshold_range(metrics, speedups)
        assert imp > 0.0


class TestPpi:
    def test_zero_threshold_switches_everyone(self):
        # At threshold 0 every benchmark is switched down; winners are
        # hurt, losers gain.
        points = ppi_curve(CLEAN_METRICS, CLEAN_SPEEDUPS, n_points=50)
        expected = np.mean([(1 / s - 1) * 100 for s in CLEAN_SPEEDUPS])
        assert points[0].avg_improvement_pct == pytest.approx(expected, rel=1e-6)

    def test_huge_threshold_gives_zero(self):
        points = ppi_curve(CLEAN_METRICS, CLEAN_SPEEDUPS)
        assert points[-1].avg_improvement_pct == pytest.approx(0.0, abs=0.5)

    def test_best_threshold_separates(self):
        threshold, improvement = best_ppi_threshold(CLEAN_METRICS, CLEAN_SPEEDUPS)
        assert 0.08 <= threshold < 0.15
        expected = np.mean([(1 / s - 1) * 100 for s in [0.8, 0.6, 0.4]] + [0, 0, 0, 0])
        assert improvement == pytest.approx(expected, rel=1e-6)

    def test_ppi_prefers_preserving_large_speedups(self):
        # §V-B point 3: a big winner just right of small losers should
        # push the PPI threshold right of it, unlike Gini.
        metrics = [0.01, 0.05, 0.06, 0.07, 0.3]
        speedups = [1.5, 0.98, 0.97, 3.0, 0.5]
        t_ppi, _ = best_ppi_threshold(metrics, speedups)
        assert t_ppi > 0.07  # keeps the 3.0x benchmark at the high level

    def test_plateau(self):
        lo, hi = ppi_plateau(CLEAN_METRICS, CLEAN_SPEEDUPS, 10.0)
        assert lo < hi

    def test_plateau_unreachable_raises(self):
        with pytest.raises(ValueError, match="no threshold"):
            ppi_plateau([0.1, 0.2], [1.5, 1.4], 50.0)


class TestSingleClass:
    """Training sets where every point carries the same label."""

    ALL_WIN_METRICS = [0.1, 0.2, 0.3]
    ALL_WIN_SPEEDUPS = [1.5, 1.2, 1.1]
    ALL_LOSS_SPEEDUPS = [0.8, 0.5, 0.9]

    def test_all_wins_zero_impurity_everywhere(self):
        # With one class any split is pure, so every separator ties.
        for sep in (0.0, 0.15, 0.25, 1e9):
            assert gini_impurity(
                self.ALL_WIN_METRICS, self.ALL_WIN_SPEEDUPS, sep
            ) == pytest.approx(0.0)

    def test_all_wins_range_spans_all_candidates(self):
        lo, hi, imp = optimal_threshold_range(
            self.ALL_WIN_METRICS, self.ALL_WIN_SPEEDUPS
        )
        assert imp == pytest.approx(0.0)
        # Every candidate achieves the minimum: the "range" degenerates
        # to the full candidate span, below min and above max.
        assert lo < min(self.ALL_WIN_METRICS)
        assert hi > max(self.ALL_WIN_METRICS)

    def test_all_losses_zero_impurity(self):
        _, _, imp = optimal_threshold_range(
            self.ALL_WIN_METRICS, self.ALL_LOSS_SPEEDUPS
        )
        assert imp == pytest.approx(0.0)

    def test_all_wins_ppi_keeps_everyone_high(self):
        # Switching any winner down only hurts: the best threshold sits
        # above every metric and the expected improvement is zero.
        threshold, improvement = best_ppi_threshold(
            self.ALL_WIN_METRICS, self.ALL_WIN_SPEEDUPS
        )
        assert threshold > max(self.ALL_WIN_METRICS)
        assert improvement == pytest.approx(0.0)

    def test_all_losses_ppi_switches_everyone_down(self):
        threshold, improvement = best_ppi_threshold(
            self.ALL_WIN_METRICS, self.ALL_LOSS_SPEEDUPS
        )
        assert threshold < min(self.ALL_WIN_METRICS)
        expected = np.mean(
            [(1 / s - 1) * 100 for s in self.ALL_LOSS_SPEEDUPS]
        )
        assert improvement == pytest.approx(expected, rel=1e-9)


class TestTiedMetrics:
    """Every observation reports the same metric value."""

    METRICS = [0.1, 0.1, 0.1, 0.1]
    SPEEDUPS = [1.5, 0.8, 1.2, 0.6]  # mixed labels, inseparable

    def test_any_separator_gives_base_rate_impurity(self):
        # No separator can split tied values: both sides of any cut hold
        # either everything or nothing, so impurity is the base rate.
        p1 = 0.5  # two wins, two losses
        base = 1 - p1 ** 2 - (1 - p1) ** 2
        for sep in (0.05, 0.1, 0.2):
            assert gini_impurity(
                self.METRICS, self.SPEEDUPS, sep
            ) == pytest.approx(base)

    def test_range_brackets_the_tied_value(self):
        lo, hi, imp = optimal_threshold_range(self.METRICS, self.SPEEDUPS)
        assert imp == pytest.approx(0.5)
        assert lo < 0.1 < hi
        # Only the two epsilon end candidates exist, so the range is
        # razor thin — the degenerate case §V-A's width criterion flags.
        assert hi - lo == pytest.approx(2e-6, rel=1e-3)

    def test_gini_curve_handles_tied_values(self):
        curve = gini_curve(self.METRICS, self.SPEEDUPS, n_points=25)
        assert len(curve) == 25
        assert all(0.0 <= p.impurity <= 0.5 for p in curve)

    def test_ppi_all_or_nothing(self):
        # Tied metrics make PPI a step function: switch everyone or
        # no one.  Here the losses outweigh the wins, so switching all
        # four down is the best move.
        threshold, improvement = best_ppi_threshold(self.METRICS, self.SPEEDUPS)
        assert threshold < 0.1
        expected = np.mean([(1 / s - 1) * 100 for s in self.SPEEDUPS])
        assert improvement == pytest.approx(expected, rel=1e-9)


class TestEmptyAndDegenerateInputs:
    """Empty candidate sets are rejected up front, not half-computed."""

    @pytest.mark.parametrize("metrics,speedups", [([], []), ([0.1], [1.2])])
    def test_too_few_observations_rejected(self, metrics, speedups):
        with pytest.raises(ValueError, match="at least two"):
            gini_impurity(metrics, speedups, 0.5)
        with pytest.raises(ValueError, match="at least two"):
            optimal_threshold_range(metrics, speedups)
        with pytest.raises(ValueError, match="at least two"):
            best_ppi_threshold(metrics, speedups)
        with pytest.raises(ValueError, match="at least two"):
            ppi_curve(metrics, speedups)
        with pytest.raises(ValueError, match="at least two"):
            gini_curve(metrics, speedups)

    def test_nonpositive_speedup_rejected(self):
        with pytest.raises(ValueError, match="speedups"):
            gini_impurity([0.1, 0.2], [1.0, 0.0], 0.5)
