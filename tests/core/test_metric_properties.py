"""Property-based invariants of the SMTsm metric itself."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import nehalem, power7
from repro.arch.classes import CLASS_ORDER, InstrClass, Mix
from repro.core.metric import smtsm
from repro.counters.events import port_issue_event
from repro.counters.pmu import CounterSample


def mixes():
    return st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=5, max_size=5
    ).map(lambda raw: Mix(np.array(raw) / np.sum(raw)))


def sample_for(arch, mix, *, disp=0.2, wall=1.0, cpu=0.8, smt=None,
               instructions=1e9, cycles=2e9):
    smt = smt if smt is not None else arch.max_smt
    events = {
        "CYCLES": cycles,
        "INSTRUCTIONS": instructions,
        "DISP_HELD_RES": disp * cycles,
        "L1_DMISS": 1e6, "L2_MISS": 1e5, "L3_MISS": 1e4, "BR_MISPRED": 1e5,
    }
    for klass, event in zip(CLASS_ORDER,
                            ("LD_CMPL", "ST_CMPL", "BR_CMPL", "FX_CMPL", "VS_CMPL")):
        events[event] = instructions * mix[klass]
    fracs = arch.topology.port_fractions(mix)
    for p, name in enumerate(arch.topology.port_names):
        events[port_issue_event(name)] = instructions * fracs[p]
    return CounterSample(arch=arch, smt_level=smt, events=events,
                         wall_time_s=wall, avg_thread_cpu_s=cpu,
                         n_software_threads=8)


class TestScaleInvariance:
    @given(mixes(), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=40)
    def test_counter_scaling_leaves_metric_unchanged(self, mix, scale):
        # The metric is built from *fractions* and *ratios*: doubling the
        # measurement window must not move it.
        arch = power7()
        a = smtsm(sample_for(arch, mix))
        b = smtsm(sample_for(arch, mix, instructions=1e9 * scale,
                             cycles=2e9 * scale))
        assert a.value == pytest.approx(b.value, rel=1e-9)

    @given(mixes(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40)
    def test_time_unit_invariance(self, mix, scale):
        arch = power7()
        a = smtsm(sample_for(arch, mix, wall=1.0, cpu=0.8))
        b = smtsm(sample_for(arch, mix, wall=scale, cpu=0.8 * scale))
        assert a.value == pytest.approx(b.value, rel=1e-9)


class TestFactorMonotonicity:
    @given(mixes(), st.floats(min_value=0.0, max_value=0.5),
           st.floats(min_value=0.0, max_value=0.4))
    @settings(max_examples=40)
    def test_metric_monotone_in_dispatch_held(self, mix, d1, delta):
        arch = power7()
        a = smtsm(sample_for(arch, mix, disp=d1))
        b = smtsm(sample_for(arch, mix, disp=d1 + delta))
        assert b.value >= a.value - 1e-12

    @given(mixes(), st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=40)
    def test_metric_monotone_in_sleeping(self, mix, cpu_frac):
        arch = power7()
        busy = smtsm(sample_for(arch, mix, cpu=1.0))
        sleepy = smtsm(sample_for(arch, mix, cpu=cpu_frac))
        assert sleepy.value >= busy.value - 1e-12


class TestArchSpaces:
    @given(mixes())
    @settings(max_examples=40)
    def test_deviation_bounded(self, mix):
        for arch in (power7(), nehalem()):
            result = smtsm(sample_for(arch, mix, smt=arch.max_smt))
            # L2 distance between two probability vectors < sqrt(2).
            assert 0.0 <= result.mix_deviation < np.sqrt(2)

    @given(mixes())
    @settings(max_examples=40)
    def test_sample_fractions_match_arch_projection(self, mix):
        for arch in (power7(), nehalem()):
            sample = sample_for(arch, mix, smt=arch.max_smt)
            assert np.allclose(
                sample.metric_fractions(), arch.metric_fractions(mix), atol=1e-9
            )

    def test_ideal_mix_minimizes_deviation(self):
        arch = power7()
        ideal = Mix(arch.ideal_vector())
        base = smtsm(sample_for(arch, ideal)).mix_deviation
        rng = np.random.default_rng(1)
        for _ in range(50):
            raw = rng.uniform(0.01, 1.0, 5)
            other = Mix(raw / raw.sum())
            assert smtsm(sample_for(arch, other)).mix_deviation >= base - 1e-12
