"""Tests for the baseline predictors (Fig. 2 counters, IPC probing)."""

import pytest

from repro.arch import power7
from repro.core.baselines import (
    CounterPredictor,
    IpcProbePredictor,
    NAIVE_METRICS,
    naive_metric_value,
)
from repro.core.predictor import Observation
from repro.sim.engine import RunSpec, simulate_run
from repro.simos import NO_SYNC, SyncProfile, SystemSpec
from repro.workloads.synthetic import make_stream


class TestNaiveMetricValues:
    def sample(self):
        system = SystemSpec(power7(), 1)
        run = simulate_run(RunSpec(system, 1, make_stream(), NO_SYNC, seed=1))
        return run.counter_sample()

    def test_all_four_extractable(self):
        s = self.sample()
        for metric in NAIVE_METRICS:
            assert naive_metric_value(s, metric) >= 0.0

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError, match="unknown naive metric"):
            naive_metric_value(self.sample(), "ipc_squared")


class TestCounterPredictor:
    def test_fits_orientation_automatically(self):
        # High value -> prefers higher SMT (opposite of SMTsm orientation).
        obs = [Observation(f"a{i}", 10.0 + i, 1.5) for i in range(5)]
        obs += [Observation(f"b{i}", 1.0 + i * 0.1, 0.7) for i in range(5)]
        p = CounterPredictor.fit("cpi", obs)
        assert not p.higher_below_threshold
        assert p.evaluate(obs).success_rate == 1.0

    def test_fits_canonical_orientation_too(self):
        obs = [Observation(f"a{i}", 0.01 * i, 1.5) for i in range(5)]
        obs += [Observation(f"b{i}", 1.0 + i, 0.7) for i in range(5)]
        p = CounterPredictor.fit("l1_mpki", obs)
        assert p.higher_below_threshold
        assert p.evaluate(obs).success_rate == 1.0

    def test_uninformative_counter_poor_accuracy(self):
        # Metric values identical across classes: accuracy capped at the
        # majority-class rate.
        obs = [Observation(f"a{i}", 5.0, 1.5) for i in range(5)]
        obs += [Observation(f"b{i}", 5.0, 0.7) for i in range(4)]
        p = CounterPredictor.fit("cpi", obs)
        assert p.evaluate(obs).success_rate <= 5 / 9 + 1e-9


class TestIpcProbe:
    def run_pair(self, sync):
        system = SystemSpec(power7(), 1)
        stream = make_stream(loads=0.16, stores=0.12, branches=0.13, fx=0.29,
                             l1_mpki=3, l2_mpki=1, l3_mpki=0.2)
        high = simulate_run(RunSpec(system, 4, stream, sync, seed=5))
        low = simulate_run(RunSpec(system, 1, stream, sync, seed=5))
        return high, low

    def test_correct_for_scalable_workload(self):
        high, low = self.run_pair(NO_SYNC)
        probe = IpcProbePredictor()
        assert probe.predicts_higher(high, low)
        assert probe.correct(high, low)

    def test_fooled_by_spin_inflation(self):
        # §I: "IPC is not always an accurate indicator of application
        # performance (e.g., in case of spin-lock contention)".
        sync = SyncProfile(lock_serial_fraction=0.5, lock_pingpong_coeff=1.5,
                           lock_pingpong_half=8)
        high, low = self.run_pair(sync)
        probe = IpcProbePredictor()
        # Raw executed IPC still looks better with more contexts...
        assert probe.predicts_higher(high, low)
        # ...but useful performance is worse: the probe is wrong.
        assert high.performance < low.performance
        assert not probe.correct(high, low)

    def test_level_ordering_enforced(self):
        high, low = self.run_pair(NO_SYNC)
        with pytest.raises(ValueError, match="higher SMT level"):
            IpcProbePredictor().predicts_higher(low, high)
