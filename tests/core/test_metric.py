"""Tests for the SMTsm metric (Eq. 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import nehalem, power7
from repro.arch.classes import InstrClass, Mix
from repro.core.metric import SmtsmResult, smtsm, smtsm_from_run
from repro.counters.events import port_issue_event
from repro.counters.pmu import CounterSample
from repro.sim.engine import RunSpec, simulate_run
from repro.simos import NO_SYNC, SyncProfile, SystemSpec
from repro.workloads.synthetic import make_stream


def p7_sample(mix=None, disp_frac=0.2, wall=1.0, cpu=0.8, smt=4):
    arch = power7()
    mix = mix or Mix(arch.ideal_vector())
    instrs = 1e9
    cycles = 2e9
    events = {
        "CYCLES": cycles,
        "INSTRUCTIONS": instrs,
        "DISP_HELD_RES": disp_frac * cycles,
        "LD_CMPL": instrs * mix[InstrClass.LOAD],
        "ST_CMPL": instrs * mix[InstrClass.STORE],
        "BR_CMPL": instrs * mix[InstrClass.BRANCH],
        "FX_CMPL": instrs * mix[InstrClass.FX],
        "VS_CMPL": instrs * mix[InstrClass.VS],
        "L1_DMISS": 1e6, "L2_MISS": 1e5, "L3_MISS": 1e4, "BR_MISPRED": 1e5,
    }
    return CounterSample(arch=arch, smt_level=smt, events=events,
                         wall_time_s=wall, avg_thread_cpu_s=cpu,
                         n_software_threads=32)


class TestEquation1:
    def test_ideal_mix_gives_zero_metric(self):
        result = smtsm(p7_sample())
        assert result.mix_deviation == pytest.approx(0.0, abs=1e-9)
        assert result.value == pytest.approx(0.0, abs=1e-9)

    def test_factors_multiply(self):
        mix = Mix({InstrClass.FX: 0.8, InstrClass.LOAD: 0.2})
        result = smtsm(p7_sample(mix=mix, disp_frac=0.3, wall=1.0, cpu=0.5))
        assert result.value == pytest.approx(
            result.mix_deviation * result.dispatch_held * result.scalability_ratio
        )
        assert result.dispatch_held == pytest.approx(0.3)
        assert result.scalability_ratio == pytest.approx(2.0)

    def test_p7_deviation_matches_eq2_by_hand(self):
        # Hand-computed Eq. 2 for a known mix.
        mix = Mix({InstrClass.LOAD: 0.3, InstrClass.STORE: 0.1,
                   InstrClass.BRANCH: 0.2, InstrClass.FX: 0.2, InstrClass.VS: 0.2})
        expected = np.sqrt(
            (0.3 - 1/7) ** 2 + (0.1 - 1/7) ** 2 + (0.2 - 1/7) ** 2
            + (0.2 - 2/7) ** 2 + (0.2 - 2/7) ** 2
        )
        result = smtsm(p7_sample(mix=mix))
        assert result.mix_deviation == pytest.approx(expected)

    def test_float_conversion(self):
        assert float(smtsm(p7_sample(disp_frac=0.5))) == pytest.approx(0.0, abs=1e-9)

    def test_result_validation(self):
        with pytest.raises(ValueError):
            SmtsmResult(value=-1, mix_deviation=0.1, dispatch_held=0.1,
                        scalability_ratio=1.0, smt_level=4, arch_name="x")
        with pytest.raises(ValueError):
            SmtsmResult(value=0.1, mix_deviation=0.1, dispatch_held=0.1,
                        scalability_ratio=0.0, smt_level=4, arch_name="x")


class TestEquation3Nehalem:
    def nehalem_sample(self, port_counts):
        arch = nehalem()
        instrs = float(sum(port_counts.values()))
        events = {
            "CYCLES": 2e9, "INSTRUCTIONS": instrs,
            "DISP_HELD_RES": 0.25 * 2e9,
            "LD_CMPL": 0.2 * instrs, "ST_CMPL": 0.1 * instrs,
            "BR_CMPL": 0.1 * instrs, "FX_CMPL": 0.3 * instrs,
            "VS_CMPL": 0.3 * instrs,
            "L1_DMISS": 1e6, "L2_MISS": 1e5, "L3_MISS": 1e4, "BR_MISPRED": 1e5,
        }
        for port, count in port_counts.items():
            events[port_issue_event(port)] = count
        return CounterSample(arch=arch, smt_level=2, events=events,
                             wall_time_s=1.0, avg_thread_cpu_s=0.9,
                             n_software_threads=8)

    def test_uniform_ports_zero_deviation(self):
        sample = self.nehalem_sample({f"P{i}": 1e8 for i in range(6)})
        assert smtsm(sample).mix_deviation == pytest.approx(0.0, abs=1e-12)

    def test_skewed_ports_positive_deviation(self):
        counts = {f"P{i}": 1e8 for i in range(6)}
        counts["P2"] = 6e8  # load-port pressure a la Streamcluster
        assert smtsm(self.nehalem_sample(counts)).mix_deviation > 0.2


class TestMetricOnSimulatedRuns:
    def test_balanced_scalable_run_scores_low(self):
        system = SystemSpec(power7(), 1)
        stream = make_stream(loads=0.16, stores=0.12, branches=0.13, fx=0.29,
                             l1_mpki=2, l2_mpki=0.5, l3_mpki=0.1)
        run = simulate_run(RunSpec(system, 4, stream, NO_SYNC, seed=3))
        assert smtsm_from_run(run).value < 0.05

    def test_contended_run_scores_high(self):
        system = SystemSpec(power7(), 1)
        stream = make_stream(loads=0.3, stores=0.1, branches=0.05, fx=0.05,
                             l1_mpki=30, l2_mpki=20, l3_mpki=10,
                             locality_alpha=0.3, mlp=4.0)
        run = simulate_run(RunSpec(system, 4, stream, NO_SYNC, seed=3))
        assert smtsm_from_run(run).value > 0.1

    def test_spin_contention_visible_at_smt4_not_smt1(self):
        # The §IV-B mechanism behind Fig. 11's breakdown: a lock whose
        # contention only bites past 8 threads pollutes the mix (and
        # bounces its line) at SMT4 but looks innocent at SMT1.
        system = SystemSpec(power7(), 1)
        stream = make_stream(loads=0.16, stores=0.12, branches=0.13, fx=0.29,
                             l1_mpki=6, l2_mpki=2, l3_mpki=0.3,
                             locality_alpha=1.2)
        sync = SyncProfile(lock_serial_fraction=0.10, lock_pingpong_coeff=1.2)
        m1 = smtsm_from_run(simulate_run(RunSpec(system, 1, stream, sync, seed=3)))
        m4 = smtsm_from_run(simulate_run(RunSpec(system, 4, stream, sync, seed=3)))
        assert m4.mix_deviation > m1.mix_deviation
        assert m4.value > 2 * m1.value

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_metric_nonnegative_for_random_workloads(self, seed):
        from repro.util.rng import RngStream
        from repro.workloads.synthetic import random_workload
        spec = random_workload(RngStream(seed))
        system = SystemSpec(power7(), 1)
        run = simulate_run(RunSpec(system, 4, spec.stream, spec.sync, seed=seed))
        result = smtsm_from_run(run)
        assert result.value >= 0.0
        assert 0.0 <= result.dispatch_held <= 1.0
        assert result.scalability_ratio >= 0.99
