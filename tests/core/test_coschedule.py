"""Tests for SMT co-scheduling guided by mix complementarity."""

import pytest

from repro.arch import power7
from repro.core.coschedule import (
    Job,
    adversarial_pairing,
    combined_deviation,
    evaluate_pairing,
    mix_complementary_pairing,
    pair_score,
    random_pairing,
    solo_ipc,
)
from repro.simos.system import SystemSpec
from repro.util.rng import RngStream
from repro.workloads.synthetic import make_stream


def fx_job(name="fx"):
    return Job(name, make_stream(loads=0.10, stores=0.05, branches=0.05, fx=0.75,
                                 ilp=2.0, l1_mpki=1, l2_mpki=0.3, l3_mpki=0.05))


def vs_job(name="vs"):
    return Job(name, make_stream(loads=0.12, stores=0.06, branches=0.04, fx=0.06,
                                 ilp=2.0, l1_mpki=1, l2_mpki=0.3, l3_mpki=0.05))


def mem_job(name="mem"):
    return Job(name, make_stream(loads=0.35, stores=0.15, branches=0.08, fx=0.25,
                                 ilp=1.5, l1_mpki=30, l2_mpki=20, l3_mpki=8,
                                 locality_alpha=0.3, mlp=3.0))


class TestScores:
    def test_complementary_pair_scores_lower(self):
        arch = power7()
        complementary = pair_score(arch, fx_job(), vs_job())
        clashing = pair_score(arch, fx_job(), fx_job("fx2"))
        assert complementary < clashing

    def test_combined_deviation_empty_raises(self):
        with pytest.raises(ValueError):
            combined_deviation(power7(), [])

    def test_job_name_required(self):
        with pytest.raises(ValueError):
            Job("", fx_job().stream)


class TestPairings:
    def jobs(self):
        return [fx_job("fx1"), fx_job("fx2"), vs_job("vs1"), vs_job("vs2")]

    def test_greedy_pairs_complements(self):
        arch = power7()
        pairing = mix_complementary_pairing(arch, self.jobs())
        for a, b in pairing:
            # Every pair must mix an FX job with a VS job.
            assert {a.name[:2], b.name[:2]} == {"fx", "vs"}

    def test_adversarial_pairs_clones(self):
        arch = power7()
        pairing = adversarial_pairing(arch, self.jobs())
        assert any({a.name[:2], b.name[:2]} == {"fx"} for a, b in pairing)

    def test_odd_job_count_rejected(self):
        with pytest.raises(ValueError, match="even number"):
            mix_complementary_pairing(power7(), self.jobs()[:3])

    def test_random_pairing_deterministic_per_seed(self):
        a = random_pairing(self.jobs(), RngStream(3))
        b = random_pairing(self.jobs(), RngStream(3))
        assert [(x.name, y.name) for x, y in a] == [(x.name, y.name) for x, y in b]


class TestEvaluation:
    def test_complementary_beats_adversarial(self):
        arch = power7()
        system = SystemSpec(arch, 1)
        jobs = [fx_job("fx1"), fx_job("fx2"), vs_job("vs1"), vs_job("vs2")]
        good = evaluate_pairing(system, mix_complementary_pairing(arch, jobs))
        bad = evaluate_pairing(system, adversarial_pairing(arch, jobs))
        assert good.weighted_speedup > bad.weighted_speedup

    def test_symbiosis_bounded(self):
        arch = power7()
        system = SystemSpec(arch, 1)
        jobs = [fx_job("a"), vs_job("b"), mem_job("c"), mem_job("d")]
        outcome = evaluate_pairing(system, mix_complementary_pairing(arch, jobs))
        for name, ratio in outcome.per_job_slowdown.items():
            assert 0.2 < ratio <= 1.3, name

    def test_solo_ipc_positive(self):
        assert solo_ipc(power7(), fx_job()) > 1.0

    def test_too_many_pairs_rejected(self):
        arch = power7()
        system = SystemSpec(arch, 1)
        jobs = [fx_job(f"j{i}") for i in range(20)]
        pairing = tuple((jobs[2 * i], jobs[2 * i + 1]) for i in range(10))
        with pytest.raises(ValueError, match="exceed"):
            evaluate_pairing(system, pairing)

    def test_empty_pairing_rejected(self):
        with pytest.raises(ValueError):
            evaluate_pairing(SystemSpec(power7(), 1), ())
