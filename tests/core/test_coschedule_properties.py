"""Property tests for the co-scheduling matcher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import power7
from repro.core.coschedule import (
    Job,
    adversarial_pairing,
    mix_complementary_pairing,
    pair_score,
    random_pairing,
)
from repro.util.rng import RngStream
from repro.workloads.synthetic import random_workload

seeds = st.integers(min_value=0, max_value=5000)


def job_pool(seed, n):
    rng = RngStream(seed, ("jobs",))
    return [Job(f"j{i}", random_workload(rng.child(i)).stream) for i in range(n)]


def total_score(arch, pairing):
    return sum(pair_score(arch, a, b) for a, b in pairing)


class TestExactMatching:
    @given(seeds, st.sampled_from([4, 6, 8]))
    @settings(max_examples=20, deadline=None)
    def test_guided_minimizes_over_random(self, seed, n):
        arch = power7()
        jobs = job_pool(seed, n)
        best = total_score(arch, mix_complementary_pairing(arch, jobs))
        for i in range(5):
            rand = total_score(arch, random_pairing(jobs, RngStream(seed + i)))
            assert best <= rand + 1e-9

    @given(seeds, st.sampled_from([4, 6]))
    @settings(max_examples=20, deadline=None)
    def test_adversarial_maximizes_over_random(self, seed, n):
        arch = power7()
        jobs = job_pool(seed, n)
        worst = total_score(arch, adversarial_pairing(arch, jobs))
        for i in range(5):
            rand = total_score(arch, random_pairing(jobs, RngStream(seed + i)))
            assert worst >= rand - 1e-9

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_pairings_are_perfect_matchings(self, seed):
        arch = power7()
        jobs = job_pool(seed, 8)
        for builder in (mix_complementary_pairing, adversarial_pairing):
            pairing = builder(arch, jobs)
            used = [job.name for pair in pairing for job in pair]
            assert sorted(used) == sorted(j.name for j in jobs)

    def test_greedy_fallback_used_above_limit(self):
        arch = power7()
        jobs = job_pool(1, 12)  # above EXACT_MATCH_LIMIT
        pairing = mix_complementary_pairing(arch, jobs)
        used = [job.name for pair in pairing for job in pair]
        assert sorted(used) == sorted(j.name for j in jobs)
