"""Tests for the SMT-level predictor and its evaluation."""

import pytest

from repro.core.predictor import (
    Observation,
    SmtPredictor,
    evaluate_predictor,
)

OBS = [
    Observation("fast1", 0.01, 2.0),
    Observation("fast2", 0.03, 1.5),
    Observation("fast3", 0.05, 1.2),
    Observation("slow1", 0.12, 0.8),
    Observation("slow2", 0.20, 0.5),
]


class TestObservation:
    def test_prefers_higher_at_tie(self):
        # Ties count as preferring the higher level (paper labelling).
        assert Observation("x", 0.1, 1.0).prefers_higher

    def test_validation(self):
        with pytest.raises(ValueError):
            Observation("x", -0.1, 1.0)
        with pytest.raises(ValueError):
            Observation("x", 0.1, 0.0)


class TestPredictor:
    def test_recommend(self):
        p = SmtPredictor(threshold=0.07, high_level=4, low_level=1)
        assert p.recommend(0.05) == 4
        assert p.recommend(0.10) == 1

    def test_boundary_is_higher(self):
        p = SmtPredictor(threshold=0.07, high_level=4, low_level=1)
        assert p.predicts_higher(0.07)

    def test_level_ordering_enforced(self):
        with pytest.raises(ValueError):
            SmtPredictor(threshold=0.07, high_level=1, low_level=4)

    def test_negative_metric_rejected(self):
        p = SmtPredictor(threshold=0.07, high_level=4, low_level=1)
        with pytest.raises(ValueError):
            p.predicts_higher(-0.1)


class TestFitting:
    def test_gini_fit_separates_clean_data(self):
        p = SmtPredictor.fit(OBS, high_level=4, low_level=1, method="gini")
        assert 0.05 < p.threshold < 0.12
        report = evaluate_predictor(p, OBS)
        assert report.success_rate == 1.0

    def test_ppi_fit_separates_clean_data(self):
        p = SmtPredictor.fit(OBS, high_level=4, low_level=1, method="ppi")
        report = evaluate_predictor(p, OBS)
        assert report.success_rate == 1.0

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown fitting method"):
            SmtPredictor.fit(OBS, high_level=4, low_level=1, method="magic")

    def test_fit_keeps_canonical_orientation(self):
        # Nearly all winners: a pure-but-inverted split must not be chosen.
        obs = [Observation(f"w{i}", 0.02 + 0.01 * i, 1.5) for i in range(10)]
        obs.append(Observation("loser", 0.30, 0.5))
        p = SmtPredictor.fit(obs, high_level=2, low_level=1)
        report = evaluate_predictor(p, obs)
        assert report.success_rate == 1.0

    def test_evaluate_reports_misses(self):
        p = SmtPredictor(threshold=0.04, high_level=4, low_level=1)
        report = evaluate_predictor(p, OBS)
        assert report.mispredicted == ("fast3",)
        assert report.n_correct == 4

    def test_evaluate_empty_raises(self):
        p = SmtPredictor(threshold=0.04, high_level=4, low_level=1)
        with pytest.raises(ValueError):
            evaluate_predictor(p, [])
