"""Tests for :class:`repro.util.ValidatedStrEnum` and its two public
instantiations (``Strategy``, ``Policy``)."""

import pytest

from repro.experiments.runner import STRATEGIES, Strategy, run_catalog
from repro.fleet import Policy
from repro.util import ValidatedStrEnum


class Color(ValidatedStrEnum):
    RED = "red"
    BLUE = "blue"


class TestValidatedStrEnum:
    def test_members_are_strings(self):
        assert Color.RED == "red"
        assert isinstance(Color.RED, str)
        assert str(Color.BLUE) == "blue"
        assert f"{Color.RED}" == "red"

    def test_options_in_declaration_order(self):
        assert Color.options() == ("red", "blue")

    def test_parse(self):
        assert Color.parse("red") is Color.RED
        assert Color.parse(Color.BLUE) is Color.BLUE
        with pytest.raises(ValueError) as exc:
            Color.parse("green")
        assert "green" in str(exc.value)
        assert "red, blue" in str(exc.value)


class TestStrategyEnum:
    def test_covers_legacy_tuple(self):
        assert Strategy.options() == tuple(STRATEGIES)

    def test_members(self):
        assert Strategy.COLUMNAR == "columnar"
        assert Strategy.parse("surrogate") is Strategy.SURROGATE

    def test_run_catalog_rejects_typo_with_options(self):
        with pytest.raises(ValueError, match="colmnar"):
            run_catalog("p7", strategy="colmnar")

    def test_run_catalog_accepts_enum_member(self):
        from repro.workloads import get_workload
        runs = run_catalog(
            "p7", {"EP": get_workload("EP")},
            strategy=Strategy.COLUMNAR, seed=3)
        assert runs.names() == ("EP",)


class TestPolicyEnumIsValidated(object):
    def test_policy_is_a_validated_enum(self):
        assert issubclass(Policy, ValidatedStrEnum)
        assert Policy.options() == (
            "smtsm", "least_loaded", "round_robin", "random")
