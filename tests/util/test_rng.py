"""Tests for the deterministic RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngStream, spawn_rng


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngStream(42).random(100)
        b = RngStream(42).random(100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStream(42).random(100)
        b = RngStream(43).random(100)
        assert not np.array_equal(a, b)

    def test_child_streams_reproducible(self):
        a = RngStream(7).child("core", 3).random(10)
        b = RngStream(7).child("core", 3).random(10)
        assert np.array_equal(a, b)

    def test_child_streams_independent_of_parent_consumption(self):
        parent1 = RngStream(7)
        parent1.random(1000)  # consume a lot
        child1 = parent1.child("x")
        child2 = RngStream(7).child("x")
        assert np.array_equal(child1.random(10), child2.random(10))

    def test_sibling_streams_differ(self):
        root = RngStream(7)
        a = root.child("a").random(50)
        b = root.child("b").random(50)
        assert not np.array_equal(a, b)

    def test_string_keys_stable_across_instances(self):
        # FNV hashing, not Python hash(): no per-process randomization.
        a = spawn_rng(1, "thread", 0).random(5)
        b = spawn_rng(1, "thread", 0).random(5)
        assert np.array_equal(a, b)

    def test_int_and_str_keys_distinct(self):
        a = RngStream(1, ("0",)).random(5)
        b = RngStream(1, (0,)).random(5)
        assert not np.array_equal(a, b)


class TestJitter:
    def test_zero_sigma_identity(self):
        assert RngStream(1).jitter(3.5, 0.0) == 3.5

    def test_jitter_stays_positive(self):
        rng = RngStream(1)
        values = [rng.jitter(1.0, 0.5) for _ in range(2000)]
        assert all(v > 0 for v in values)

    @given(st.floats(min_value=0.001, max_value=0.2))
    def test_jitter_mean_near_value(self, sigma):
        rng = RngStream(99)
        values = np.array([rng.jitter(10.0, sigma) for _ in range(500)])
        assert abs(values.mean() - 10.0) < 10.0 * 4 * sigma / np.sqrt(500) + 0.05


class TestApiSurface:
    def test_geometric_positive(self):
        draws = RngStream(3).geometric(0.5, 100)
        assert (draws >= 1).all()

    def test_integers_range(self):
        draws = RngStream(3).integers(0, 10, 100)
        assert ((draws >= 0) & (draws < 10)).all()

    def test_choice_with_probabilities(self):
        draws = RngStream(3).choice(3, size=500, p=[0.8, 0.1, 0.1])
        counts = np.bincount(draws, minlength=3)
        assert counts[0] > counts[1]
