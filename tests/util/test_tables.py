"""Tests for ASCII report formatting."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.5000" in out
        assert "bb" in out

    def test_title_rendered(self):
        out = format_table(["c"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_none_rendered_as_dash(self):
        out = format_table(["c"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_bool_rendered_as_yes_no(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [["only-one"]])

    def test_custom_float_fmt(self):
        out = format_table(["v"], [[3.14159]], float_fmt=".2f")
        assert "3.14" in out and "3.1416" not in out


class TestFormatSeries:
    def test_sorted_by_x(self):
        out = format_series("s", {"late": (2.0, 1.0), "early": (1.0, 5.0)})
        lines = out.splitlines()
        assert lines.index([l for l in lines if "early" in l][0]) < lines.index(
            [l for l in lines if "late" in l][0]
        )

    def test_labels_present(self):
        out = format_series("fig", {"EP": (0.01, 2.5)}, xlabel="metric", ylabel="speedup")
        assert "metric" in out and "speedup" in out and "EP" in out
