"""Tests for argument validation helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.validation import (
    check_fraction,
    check_int_in,
    check_nonnegative,
    check_positive,
    check_probability_vector,
)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_inclusive(self, value):
        assert check_fraction("x", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError, match="x"):
            check_fraction("x", value)

    def test_exclusive_rejects_bounds(self):
        with pytest.raises(ValueError):
            check_fraction("x", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("x", 1.0, inclusive=False)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive("x", value)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_nonnegative("x", value)


class TestProbabilityVector:
    def test_accepts_and_normalizes(self):
        vec = check_probability_vector("mix", [0.25, 0.25, 0.5])
        assert vec.sum() == pytest.approx(1.0, abs=1e-15)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector("mix", [0.5, 0.6])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector("mix", [-0.5, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector("mix", [])

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8))
    def test_normalized_input_roundtrips(self, raw):
        arr = np.array(raw) / np.sum(raw)
        out = check_probability_vector("mix", arr)
        assert out.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.allclose(out, arr, atol=1e-9)


class TestCheckIntIn:
    def test_accepts_member(self):
        assert check_int_in("smt", 2, (1, 2, 4)) == 2

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="smt"):
            check_int_in("smt", 3, (1, 2, 4))
