"""Tests for the shared config-from-env helper (:mod:`repro.util.config`)
and the two dataclasses built on it (``ServeConfig``/``FleetConfig``)."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.fleet import FleetConfig
from repro.serve import ServeConfig
from repro.util.config import dataclass_from_env, env_str, parse_bool


@dataclass(frozen=True)
class Knobs:
    count: int = 3
    rate: float = 1.5
    label: str = "a"
    flag: bool = False
    limit: Optional[int] = 10


class TestPrimitives:
    def test_parse_bool(self):
        for text in ("1", "true", "Yes", "ON"):
            assert parse_bool(text) is True
        for text in ("0", "false", "No", "off"):
            assert parse_bool(text) is False
        with pytest.raises(ValueError):
            parse_bool("maybe")

    def test_env_str(self):
        env = {"X": "  hello "}
        assert env_str("X", env=env) == "hello"
        assert env_str("MISSING", "fallback", env=env) == "fallback"


class TestDataclassFromEnv:
    def test_no_overrides_returns_base_unchanged(self):
        base = Knobs()
        assert dataclass_from_env(Knobs, "K", env={}, base=base) is base

    def test_typed_coercion(self):
        env = {"K_COUNT": "7", "K_RATE": "2.25", "K_LABEL": "b",
               "K_FLAG": "yes"}
        knobs = dataclass_from_env(Knobs, "K", env=env)
        assert knobs == Knobs(count=7, rate=2.25, label="b", flag=True)

    def test_optional_none_spellings(self):
        for spelling in ("", "none", "NULL"):
            knobs = dataclass_from_env(
                Knobs, "K", env={"K_LIMIT": spelling})
            assert knobs.limit is None
        knobs = dataclass_from_env(Knobs, "K", env={"K_LIMIT": "5"})
        assert knobs.limit == 5

    def test_bad_value_names_the_variable(self):
        with pytest.raises(ValueError, match="K_COUNT"):
            dataclass_from_env(Knobs, "K", env={"K_COUNT": "lots"})


class TestServeConfigFromEnv:
    def test_round_trip(self):
        env = {
            "REPRO_SERVE_PORT": "9321",
            "REPRO_SERVE_MAX_BATCH": "8",
            "REPRO_SERVE_MAX_LINGER_MS": "0.5",
            "REPRO_SERVE_WORKERS": "2",
            "REPRO_SERVE_DEFAULT_DEADLINE_MS": "none",
        }
        config = ServeConfig.from_env(env=env)
        assert config.port == 9321
        assert config.max_batch == 8
        assert config.max_linger_ms == 0.5
        assert config.workers == 2
        assert config.default_deadline_ms is None
        # Untouched fields keep their defaults.
        assert config.host == ServeConfig().host

    def test_legacy_aliases_still_work(self):
        env = {"REPRO_SERVE_MP": "spawn",
               "REPRO_SERVE_CHAOS": "crash=0.5"}
        config = ServeConfig.from_env(env=env)
        assert config.mp_start_method == "spawn"
        assert config.chaos is not None
        assert config.chaos.any_chaos

    def test_empty_chaos_spec_is_none(self):
        config = ServeConfig.from_env(env={"REPRO_SERVE_CHAOS": ""})
        assert config.chaos is None

    def test_base_overridden_not_replaced(self):
        base = ServeConfig(port=1234, max_batch=4)
        config = ServeConfig.from_env(
            base, env={"REPRO_SERVE_MAX_BATCH": "32"})
        assert config.port == 1234
        assert config.max_batch == 32


class TestFleetConfigFromEnv:
    def test_round_trip(self):
        env = {
            "REPRO_FLEET_CHIPS": "16",
            "REPRO_FLEET_JOBS": "800",
            "REPRO_FLEET_POLICY": "least_loaded",
            "REPRO_FLEET_SEVERITY": "0.3",
            "REPRO_FLEET_ARCH_MIX": "power7:1,nehalem:1",
            "REPRO_FLEET_LOAD": "0.9",
        }
        config = FleetConfig.from_env(env=env)
        assert config.chips == 16
        assert config.jobs == 800
        assert config.policy == "least_loaded"
        assert config.severity == 0.3
        assert config.arch_mix == "power7:1,nehalem:1"
        assert config.load == 0.9
        assert config.seed == FleetConfig().seed

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            FleetConfig.from_env(env={"REPRO_FLEET_SEVERITY": "2.0"})

    def test_no_env_returns_base(self):
        base = FleetConfig(chips=3)
        assert FleetConfig.from_env(base, env={}) is base
