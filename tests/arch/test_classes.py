"""Tests for instruction classes and Mix vectors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch.classes import CLASS_ORDER, InstrClass, Mix, SPIN_LOOP_MIX


def mixes():
    """Hypothesis strategy generating valid instruction mixes."""
    return st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=5, max_size=5
    ).map(lambda raw: Mix(np.array(raw) / np.sum(raw)))


class TestConstruction:
    def test_from_mapping(self):
        m = Mix({InstrClass.LOAD: 0.5, InstrClass.FX: 0.5})
        assert m[InstrClass.LOAD] == pytest.approx(0.5)
        assert m[InstrClass.VS] == 0.0

    def test_from_sequence_order_is_class_order(self):
        m = Mix([0.1, 0.1, 0.1, 0.3, 0.4])
        assert m[InstrClass.VS] == pytest.approx(0.4)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="5 entries"):
            Mix([0.5, 0.5])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Mix([0.5, 0.5, 0.5, 0.0, 0.0])

    def test_from_counts(self):
        m = Mix.from_counts({InstrClass.LOAD: 30, InstrClass.FX: 70})
        assert m[InstrClass.FX] == pytest.approx(0.7)

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Mix.from_counts({InstrClass.LOAD: -1, InstrClass.FX: 2})

    def test_from_counts_rejects_all_zero(self):
        with pytest.raises(ValueError, match="all-zero"):
            Mix.from_counts({InstrClass.LOAD: 0})

    def test_vector_is_readonly(self):
        m = Mix.uniform()
        with pytest.raises(ValueError):
            m.vector[0] = 0.9


class TestOperations:
    def test_memory_fraction(self):
        m = Mix({InstrClass.LOAD: 0.3, InstrClass.STORE: 0.2, InstrClass.FX: 0.5})
        assert m.memory_fraction == pytest.approx(0.5)

    def test_blend_identity_at_zero(self):
        base = Mix.uniform()
        assert base.blend(SPIN_LOOP_MIX, 0.0) == base

    def test_blend_full_at_one(self):
        base = Mix.uniform()
        assert base.blend(SPIN_LOOP_MIX, 1.0) == SPIN_LOOP_MIX

    def test_blend_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Mix.uniform().blend(SPIN_LOOP_MIX, 1.5)

    @given(mixes(), st.floats(min_value=0.0, max_value=1.0))
    def test_blend_is_valid_mix(self, base, w):
        blended = base.blend(SPIN_LOOP_MIX, w)
        assert blended.vector.sum() == pytest.approx(1.0, abs=1e-9)

    @given(mixes())
    def test_deviation_from_self_is_zero(self, m):
        assert m.deviation_from(m.vector) == pytest.approx(0.0, abs=1e-12)

    def test_deviation_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            Mix.uniform().deviation_from(np.array([1.0]))

    @given(mixes(), mixes())
    def test_deviation_symmetric(self, a, b):
        assert a.deviation_from(b.vector) == pytest.approx(b.deviation_from(a.vector))

    def test_spin_mix_is_branch_heavy(self):
        # The premise of the paper's scalability argument (§II): spinning
        # raises the branch fraction far above any ideal mix.
        assert SPIN_LOOP_MIX[InstrClass.BRANCH] > 1 / 3
        assert SPIN_LOOP_MIX[InstrClass.VS] == 0.0

    def test_eq_and_hash(self):
        a = Mix.uniform()
        b = Mix([0.2, 0.2, 0.2, 0.2, 0.2])
        assert a == b and hash(a) == hash(b)
        assert a != Mix([0.6, 0.1, 0.1, 0.1, 0.1])

    def test_as_dict_roundtrip(self):
        m = Mix([0.1, 0.2, 0.3, 0.2, 0.2])
        assert Mix(m.as_dict()) == m
