"""Tests for issue-port topology."""

import numpy as np
import pytest

from repro.arch.classes import InstrClass, Mix
from repro.arch.ports import IssuePort, PortTopology, single_class_routing


def typed_topology():
    return PortTopology(
        ports=[IssuePort("LS", 2.0), IssuePort("FX", 2.0), IssuePort("VS", 2.0), IssuePort("BR", 1.0)],
        routing=single_class_routing(
            {
                InstrClass.LOAD: "LS",
                InstrClass.STORE: "LS",
                InstrClass.BRANCH: "BR",
                InstrClass.FX: "FX",
                InstrClass.VS: "VS",
            }
        ),
    )


class TestConstruction:
    def test_rejects_empty_ports(self):
        with pytest.raises(ValueError, match="at least one"):
            PortTopology(ports=[], routing={})

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            PortTopology(
                ports=[IssuePort("A", 1), IssuePort("A", 1)],
                routing=single_class_routing({c: "A" for c in InstrClass}),
            )

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            IssuePort("A", 0)

    def test_rejects_missing_class(self):
        with pytest.raises(ValueError, match="missing"):
            PortTopology(
                ports=[IssuePort("A", 1)],
                routing={InstrClass.LOAD: {"A": 1.0}},
            )

    def test_rejects_unknown_port_in_routing(self):
        routing = single_class_routing({c: "A" for c in InstrClass})
        routing[InstrClass.LOAD] = {"NOPE": 1.0}
        with pytest.raises(ValueError, match="unknown port"):
            PortTopology(ports=[IssuePort("A", 1)], routing=routing)

    def test_rejects_routing_not_summing_to_one(self):
        routing = single_class_routing({c: "A" for c in InstrClass})
        routing[InstrClass.LOAD] = {"A": 0.7}
        with pytest.raises(ValueError, match="sum to 1"):
            PortTopology(ports=[IssuePort("A", 1)], routing=routing)

    def test_matrix_columns_sum_to_one(self):
        topo = typed_topology()
        assert np.allclose(topo.routing_matrix.sum(axis=0), 1.0)


class TestDemandAndFractions:
    def test_port_demand_typed(self):
        topo = typed_topology()
        mix = Mix({InstrClass.LOAD: 0.3, InstrClass.STORE: 0.2, InstrClass.FX: 0.5})
        demand = topo.port_demand(mix)
        assert demand[topo.port_index("LS")] == pytest.approx(0.5)
        assert demand[topo.port_index("FX")] == pytest.approx(0.5)
        assert demand[topo.port_index("VS")] == pytest.approx(0.0)

    def test_fractions_sum_to_one(self):
        topo = typed_topology()
        assert topo.port_fractions(Mix.uniform()).sum() == pytest.approx(1.0)

    def test_ideal_is_capacity_proportional(self):
        topo = typed_topology()
        ideal = topo.ideal_port_fractions()
        assert ideal[topo.port_index("LS")] == pytest.approx(2 / 7)
        assert ideal[topo.port_index("BR")] == pytest.approx(1 / 7)
        assert ideal.sum() == pytest.approx(1.0)


class TestSaturation:
    def test_no_demand_gives_full_scale(self):
        topo = typed_topology()
        assert topo.saturation_scale(np.zeros(4)) == 1.0

    def test_underutilized_gives_full_scale(self):
        topo = typed_topology()
        assert topo.saturation_scale(np.array([1.0, 1.0, 1.0, 0.5])) == 1.0

    def test_oversubscribed_port_throttles(self):
        topo = typed_topology()
        demand = np.zeros(4)
        demand[topo.port_index("FX")] = 4.0  # capacity 2 -> scale 0.5
        assert topo.saturation_scale(demand) == pytest.approx(0.5)

    def test_bottleneck_is_worst_port(self):
        topo = typed_topology()
        demand = np.array([2.0, 4.0, 1.0, 2.0])  # LS ok, FX 2x, BR 2x over
        assert topo.saturation_scale(demand) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            typed_topology().saturation_scale(np.zeros(2))
