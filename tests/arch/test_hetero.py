"""Heterogeneous chip composition, validation, and registration."""

import dataclasses

import pytest

from repro.arch import armsmt, get_architecture, list_architectures, power7
from repro.arch.hetero import (
    ClusterSpec,
    HeteroChip,
    PowerAreaBudget,
    _HETERO_BUILDERS,
    _HETERO_CACHE,
    big_little,
    cluster_architecture,
    expand_node_archs,
    get_hetero,
    hetero_fingerprint,
    is_hetero,
    list_hetero,
    register_hetero,
)
from repro.arch.registry import _BUILDERS


def _cluster(name="c0", share=0.5, cores=2, **kw):
    return ClusterSpec(
        name=name,
        arch=cluster_architecture(
            armsmt(cores_per_chip=cores), name=f"arm-{name}",
            bandwidth_share=share, chip_bandwidth_gbps=80.0,
        ),
        bandwidth_share=share,
        **kw,
    )


class TestClusterSpec:
    def test_name_must_be_identifier(self):
        with pytest.raises(ValueError, match="identifier"):
            _cluster(name="big cores")
        with pytest.raises(ValueError, match="identifier"):
            _cluster(name="")

    def test_bandwidth_share_domain(self):
        with pytest.raises(ValueError, match="bandwidth_share"):
            _cluster(share=0.0)
        with pytest.raises(ValueError, match="bandwidth_share"):
            _cluster(share=1.2)

    def test_costs_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="power/area"):
            _cluster(core_power_w=-1.0)

    def test_aggregate_costs_scale_with_cores(self):
        spec = _cluster(cores=4, core_power_w=6.0, core_area_mm2=8.0)
        assert spec.cores == 4
        assert spec.power_w == pytest.approx(24.0)
        assert spec.area_mm2 == pytest.approx(32.0)


class TestHeteroChip:
    def test_needs_clusters(self):
        with pytest.raises(ValueError, match="at least one cluster"):
            HeteroChip(name="x", description="", clusters=())

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate cluster names"):
            HeteroChip(name="x", description="",
                       clusters=(_cluster("a", 0.4), _cluster("a", 0.4)))

    def test_overcommitted_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="over-commits DRAM"):
            HeteroChip(name="x", description="",
                       clusters=(_cluster("a", 0.7), _cluster("b", 0.7)))

    def test_budget_violations_rejected(self):
        hot = _cluster("a", 0.5, cores=4, core_power_w=50.0)
        with pytest.raises(ValueError, match="exceeds the chip budget"):
            HeteroChip(name="x", description="", clusters=(hot,),
                       budget=PowerAreaBudget(power_w=100.0, area_mm2=500.0))
        wide = _cluster("a", 0.5, cores=4, core_area_mm2=200.0)
        with pytest.raises(ValueError, match="mm\\^2 exceeds"):
            HeteroChip(name="x", description="", clusters=(wide,),
                       budget=PowerAreaBudget(power_w=500.0, area_mm2=100.0))

    def test_level_space_and_ceilings(self):
        chip = big_little()
        assert chip.cluster_names == ("big", "little")
        assert chip.total_cores == 8
        assert chip.level_space() == (
            ("big", 1), ("big", 2), ("big", 4),
            ("little", 1), ("little", 2),
        )
        assert chip.max_levels() == {"big": 4, "little": 2}

    def test_validate_levels(self):
        chip = big_little()
        assert chip.validate_levels({}) == {"big": 4, "little": 2}
        assert chip.validate_levels({"little": 1}) == {"big": 4, "little": 1}
        with pytest.raises(ValueError, match="unknown clusters"):
            chip.validate_levels({"medium": 2})
        with pytest.raises(ValueError, match="SMT levels"):
            chip.validate_levels({"little": 4})

    def test_cluster_lookup(self):
        chip = big_little()
        assert chip.cluster("big").arch.max_smt == 4
        with pytest.raises(KeyError, match="no cluster"):
            chip.cluster("medium")


class TestClusterArchitecture:
    def test_renames_and_slices_bandwidth(self):
        base = power7(cores_per_chip=4)
        derived = cluster_architecture(
            base, name="P7-slice", bandwidth_share=0.25,
            chip_bandwidth_gbps=100.0,
        )
        assert derived.name == "P7-slice"
        assert derived.caches.mem_bandwidth_gbps == pytest.approx(25.0)
        # Everything else is inherited.
        assert derived.smt_levels == base.smt_levels
        assert derived.partition is base.partition

    def test_share_domain(self):
        with pytest.raises(ValueError, match="bandwidth_share"):
            cluster_architecture(power7(), name="x", bandwidth_share=0.0,
                                 chip_bandwidth_gbps=80.0)


class TestBigLittle:
    def test_bandwidth_is_qos_partitioned(self):
        chip = get_hetero("biglittle")
        shares = [c.arch.caches.mem_bandwidth_gbps for c in chip.clusters]
        assert shares == [pytest.approx(52.0), pytest.approx(28.0)]

    def test_fits_its_budget(self):
        chip = big_little()
        assert chip.budget is not None
        assert sum(c.power_w for c in chip.clusters) <= chip.budget.power_w
        assert sum(c.area_mm2 for c in chip.clusters) <= chip.budget.area_mm2


class TestRegistry:
    def test_biglittle_is_registered(self):
        assert "biglittle" in list_hetero()
        assert is_hetero("biglittle") and is_hetero("BigLittle")
        assert not is_hetero("power7")

    def test_clusters_are_registry_reachable(self):
        archs = list_architectures()
        assert "biglittle.big" in archs
        assert "biglittle.little" in archs
        assert get_architecture("biglittle.big").name == "POWER7-big"

    def test_memoized_stable_instances(self):
        # Identity matters: the columnar engine groups by arch identity
        # and the fingerprint caches key on it.
        assert get_hetero("biglittle") is get_hetero("biglittle")
        assert (get_architecture("biglittle.big")
                is get_architecture("biglittle.big"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_hetero("biglittle", big_little)
        with pytest.raises(ValueError, match="collides"):
            register_hetero("power7", big_little)

    def test_register_and_reach_new_chip(self):
        name = "tmp_hetero_chip"
        try:
            register_hetero(name, lambda: dataclasses.replace(
                big_little(), name=name))
            assert is_hetero(name)
            assert f"{name}.big" in list_architectures()
            assert expand_node_archs(name) == [f"{name}.big", f"{name}.little"]
        finally:
            _HETERO_BUILDERS.pop(name, None)
            _HETERO_CACHE.pop(name, None)
            _BUILDERS.pop(f"{name}.big", None)
            _BUILDERS.pop(f"{name}.little", None)

    def test_unknown_chip_raises(self):
        with pytest.raises(KeyError, match="unknown hetero chip"):
            get_hetero("doom")

    def test_expand_node_archs_passthrough(self):
        assert expand_node_archs("power7") == ["power7"]
        assert expand_node_archs("biglittle") == [
            "biglittle.big", "biglittle.little"]


class TestFingerprint:
    def test_covers_cluster_specs(self):
        fp = hetero_fingerprint(big_little())
        assert fp["name"] == "biglittle"
        assert [c["name"] for c in fp["clusters"]] == ["big", "little"]
        assert fp["budget"] == {"power_w": 120.0, "area_mm2": 220.0}
        assert all("arch" in c for c in fp["clusters"])

    def test_changes_with_bandwidth_share(self):
        chip = big_little()
        tweaked = dataclasses.replace(
            chip,
            clusters=(
                dataclasses.replace(chip.clusters[0], bandwidth_share=0.6),
                chip.clusters[1],
            ),
        )
        assert hetero_fingerprint(tweaked) != hetero_fingerprint(chip)
