"""Hypothesis strategies for random *valid* architecture models.

:func:`arch_strategy` generates :class:`~repro.arch.machine.Architecture`
instances that satisfy every constructor invariant — sorted SMT levels
starting at 1 with a partition entry per level, routing columns that sum
to 1, cache latencies that increase down the hierarchy, and (for
class-space metrics) an ideal probability vector — while still spanning
shapes no shipped chip has: 2–4 ports of uneven capacity, split-routing
classes, competitively-shared structures, asymmetric level ladders.

The cross-architecture property suite runs the same laws over these as
over the registered chips, so "works on POWER7" can never silently
become the definition of "works".
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.arch.classes import CLASS_ORDER
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.partition import SmtPartition
from repro.arch.ports import IssuePort, PortTopology

#: Level ladders the partition generator knows how to cover.
LEVEL_LADDERS = ((1,), (1, 2), (1, 2, 4), (1, 4))

_frac = st.floats(min_value=0.05, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


def _floats(lo, hi):
    return st.floats(min_value=lo, max_value=hi,
                     allow_nan=False, allow_infinity=False)


@st.composite
def topology_strategy(draw) -> PortTopology:
    """2–4 ports with uneven capacities; each class routes to one port
    or splits evenly across two (both shapes exist on real chips)."""
    n_ports = draw(st.integers(min_value=2, max_value=4))
    names = [f"P{i}" for i in range(n_ports)]
    ports = [IssuePort(name, draw(_floats(0.5, 2.0))) for name in names]
    routing = {}
    for klass in CLASS_ORDER:
        targets = draw(st.lists(st.sampled_from(names), min_size=1,
                                max_size=2, unique=True))
        share = 1.0 / len(targets)
        routing[klass] = {name: share for name in targets}
    return PortTopology(ports, routing)


@st.composite
def partition_strategy(draw, levels) -> SmtPartition:
    """Shares decay with depth but stay in (0, 1]; boost only at SMT1."""
    queue_share, rob_share = {}, {}
    q, r = 1.0, 1.0
    for level in levels:
        if level > 1:
            q *= draw(_floats(0.4, 1.0))
            r *= draw(_floats(0.4, 1.0))
        queue_share[level] = q
        rob_share[level] = r
    return SmtPartition(
        fetch_width=draw(st.integers(min_value=2, max_value=8)),
        dispatch_width=draw(st.integers(min_value=2, max_value=8)),
        issue_width=draw(st.integers(min_value=2, max_value=10)),
        queue_entries=draw(st.integers(min_value=16, max_value=80)),
        rob_entries=draw(st.integers(min_value=64, max_value=256)),
        queue_share=queue_share,
        rob_share=rob_share,
        smt1_boost=draw(_floats(1.0, 1.6)),
    )


@st.composite
def cache_strategy(draw) -> CacheGeometry:
    """Latencies built additively so L2 < L3 < memory by construction."""
    lat_l2 = draw(_floats(4.0, 20.0))
    lat_l3 = lat_l2 + draw(_floats(5.0, 60.0))
    lat_mem = lat_l3 + draw(_floats(40.0, 400.0))
    return CacheGeometry(
        l1d_kb=draw(st.sampled_from([32.0, 64.0])),
        l2_kb=draw(_floats(256.0, 1024.0)),
        l3_mb=draw(_floats(2.0, 32.0)),
        line_bytes=draw(st.sampled_from([64, 128])),
        lat_l2=lat_l2,
        lat_l3=lat_l3,
        lat_mem=lat_mem,
        mem_bandwidth_gbps=draw(_floats(20.0, 150.0)),
        numa_extra_cycles=draw(_floats(0.0, 80.0)),
    )


@st.composite
def arch_strategy(draw) -> Architecture:
    """A random valid :class:`Architecture` spanning both metric spaces."""
    levels = draw(st.sampled_from(LEVEL_LADDERS))
    metric_space = draw(st.sampled_from(("port", "class")))
    ideal = None
    if metric_space == "class":
        weights = [draw(_frac) for _ in CLASS_ORDER]
        total = sum(weights)
        ideal = tuple(w / total for w in weights)
    return Architecture(
        name=f"hypo-{draw(st.integers(min_value=0, max_value=10**6))}",
        description="hypothesis-generated architecture",
        frequency_ghz=draw(_floats(1.0, 5.0)),
        cores_per_chip=draw(st.integers(min_value=1, max_value=4)),
        smt_levels=levels,
        topology=draw(topology_strategy()),
        partition=draw(partition_strategy(levels)),
        caches=draw(cache_strategy()),
        branch_penalty=draw(_floats(5.0, 25.0)),
        metric_space=metric_space,
        ideal_class_fractions=ideal,
    )
