"""Cross-architecture property suite.

Every law here is quantified over *random valid architectures* (via
:func:`tests.arch.strategies.arch_strategy`) as well as the registered
chips, so the model's guarantees are properties of the abstractions —
not accidents of the POWER7 calibration:

* the ideal SMT-mix vector is a probability vector in both metric
  spaces, and measured fractions always sum to 1;
* the SMTsm's factors stay in their domains (the metric itself is *not*
  bounded by 1 — the scalability ratio is >= 1 by construction);
* simulated times are non-negative, additive (wall = serial +
  parallel), and monotone in useful work;
* the columnar engine agrees with serial simulation to 1e-9 on any
  architecture, not just the ones it was tuned on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import Mix, get_architecture, list_architectures
from repro.core.metric import smtsm_from_run
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.table import simulate_many_columnar
from repro.simos import SystemSpec
from repro.util.rng import RngStream
from repro.workloads.synthetic import random_workload

from tests.arch.strategies import arch_strategy

TOL = 1e-9
seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def mix_strategy(draw):
    weights = [draw(st.floats(min_value=0.01, max_value=1.0,
                              allow_nan=False)) for _ in range(5)]
    total = sum(weights)
    return Mix([w / total for w in weights])


def workload_for(seed):
    return random_workload(RngStream(seed))


class TestMetricSpaceLaws:
    @given(arch_strategy())
    @settings(max_examples=100, deadline=None)
    def test_ideal_vector_is_probability_vector(self, arch):
        ideal = arch.ideal_vector()
        assert np.all(ideal >= 0.0)
        assert ideal.sum() == pytest.approx(1.0, abs=TOL)

    @given(arch_strategy(), mix_strategy())
    @settings(max_examples=100, deadline=None)
    def test_metric_fractions_sum_to_one(self, arch, mix):
        fractions = arch.metric_fractions(mix)
        assert np.all(fractions >= -TOL)
        assert fractions.sum() == pytest.approx(1.0, abs=1e-6)

    @given(arch_strategy(), mix_strategy())
    @settings(max_examples=100, deadline=None)
    def test_mix_deviation_domain(self, arch, mix):
        # Euclidean distance between two probability vectors is in
        # [0, sqrt(2)].
        dev = arch.mix_deviation(mix)
        assert 0.0 <= dev <= np.sqrt(2.0) + TOL


class TestSmtsmFactorDomains:
    @given(arch_strategy(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_factors_in_domain_on_random_arch(self, arch, seed):
        spec = workload_for(seed)
        system = SystemSpec(arch, 1)
        run = simulate_run(RunSpec(system, arch.max_smt, spec.stream,
                                   spec.sync, seed=seed, noise_rel=0.0))
        metric = smtsm_from_run(run)
        assert 0.0 <= metric.mix_deviation <= np.sqrt(2.0) + TOL
        assert 0.0 <= metric.dispatch_held <= 1.0 + TOL
        assert metric.scalability_ratio >= 1.0 - TOL
        product = (metric.mix_deviation * metric.dispatch_held
                   * metric.scalability_ratio)
        assert metric.value == pytest.approx(product, rel=TOL, abs=TOL)

    @pytest.mark.parametrize("name", sorted(list_architectures()))
    def test_factors_in_domain_on_registered_archs(self, name):
        arch = get_architecture(name)
        spec = workload_for(7)
        system = SystemSpec(arch, 1)
        run = simulate_run(RunSpec(system, arch.max_smt, spec.stream,
                                   spec.sync, seed=7, noise_rel=0.0))
        metric = smtsm_from_run(run)
        assert 0.0 <= metric.dispatch_held <= 1.0 + TOL
        assert metric.scalability_ratio >= 1.0 - TOL
        assert metric.value >= 0.0


class TestTimeAccounting:
    @given(arch_strategy(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_times_nonnegative_and_additive(self, arch, seed):
        spec = workload_for(seed)
        system = SystemSpec(arch, 1)
        run = simulate_run(RunSpec(system, arch.max_smt, spec.stream,
                                   spec.sync, seed=seed, noise_rel=0.0))
        times = run.times
        assert times.wall_time_s > 0
        assert times.serial_time_s >= 0
        assert times.parallel_time_s >= 0
        assert times.total_cpu_s >= 0
        assert times.wall_time_s == pytest.approx(
            times.serial_time_s + times.parallel_time_s, rel=TOL)

    @given(arch_strategy(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_wall_time_monotone_in_work(self, arch, seed):
        spec = workload_for(seed)
        system = SystemSpec(arch, 1)
        level = arch.max_smt

        def wall(work):
            return simulate_run(
                RunSpec(system, level, spec.stream, spec.sync,
                        useful_instructions=work, seed=seed,
                        noise_rel=0.0)
            ).times.wall_time_s

        base = 1e10
        assert wall(2 * base) >= wall(base) - TOL
        assert wall(4 * base) >= wall(2 * base) - TOL


class TestSerialColumnarAgreement:
    @given(arch_strategy(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_columnar_matches_serial_on_random_arch(self, arch, seed):
        spec = workload_for(seed)
        system = SystemSpec(arch, 1)
        specs = [
            RunSpec(system, level, spec.stream, spec.sync,
                    seed=seed + i, noise_rel=0.01)
            for i, level in enumerate(arch.smt_levels)
        ]
        serial = [simulate_run(s) for s in specs]
        columnar = simulate_many_columnar(specs)
        for a, b in zip(serial, columnar):
            rel = abs(a.wall_time_s - b.wall_time_s) / a.wall_time_s
            assert rel <= TOL
            assert a.performance == pytest.approx(b.performance, rel=TOL)

    @pytest.mark.parametrize("name", sorted(list_architectures()))
    def test_columnar_matches_serial_on_registered_archs(self, name):
        arch = get_architecture(name)
        spec = workload_for(3)
        system = SystemSpec(arch, 1)
        specs = [
            RunSpec(system, level, spec.stream, spec.sync, seed=3)
            for level in arch.smt_levels
        ]
        serial = [simulate_run(s) for s in specs]
        columnar = simulate_many_columnar(specs)
        for a, b in zip(serial, columnar):
            assert a.wall_time_s == pytest.approx(b.wall_time_s, rel=TOL)
