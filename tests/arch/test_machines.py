"""Tests for the POWER7, Nehalem, and generic architecture models."""

import numpy as np
import pytest

from repro.arch import (
    Architecture,
    CacheGeometry,
    InstrClass,
    Mix,
    generic_core,
    get_architecture,
    list_architectures,
    nehalem,
    power7,
    register_architecture,
)


class TestPower7:
    def setup_method(self):
        self.arch = power7()

    def test_paper_parameters(self):
        assert self.arch.smt_levels == (1, 2, 4)
        assert self.arch.cores_per_chip == 8
        assert self.arch.partition.fetch_width == 8
        assert self.arch.partition.dispatch_width == 6
        assert self.arch.partition.issue_width == 8

    def test_ideal_mix_is_paper_eq2(self):
        # 1/7 loads, 1/7 stores, 1/7 branches, 2/7 FX, 2/7 VS
        ideal = self.arch.ideal_vector()
        assert np.allclose(ideal, [1 / 7, 1 / 7, 1 / 7, 2 / 7, 2 / 7])

    def test_metric_space_is_class(self):
        assert self.arch.metric_space == "class"
        assert self.arch.metric_labels() == ("LOAD", "STORE", "BRANCH", "FX", "VS")

    def test_ideal_mix_deviation_zero(self):
        ideal_mix = Mix(self.arch.ideal_vector())
        assert self.arch.mix_deviation(ideal_mix) == pytest.approx(0.0, abs=1e-12)

    def test_fx_only_mix_has_large_deviation(self):
        fx_only = Mix({InstrClass.FX: 1.0})
        # deviation of a degenerate mix must be near its max (~0.87)
        assert self.arch.mix_deviation(fx_only) > 0.7

    def test_dispatch_held_event_name(self):
        assert self.arch.dispatch_held_event == "PM_DISP_CLB_HELD_RES"

    def test_lower_smt_level_chain(self):
        assert self.arch.lower_smt_level(4) == 2
        assert self.arch.lower_smt_level(2) == 1
        assert self.arch.lower_smt_level(1) is None

    def test_validate_smt_level(self):
        with pytest.raises(ValueError, match="SMT3"):
            self.arch.validate_smt_level(3)

    def test_custom_core_count(self):
        small = power7(cores_per_chip=2)
        assert small.cores_per_chip == 2
        assert small.caches.l3_mb == pytest.approx(8.0)


class TestNehalem:
    def setup_method(self):
        self.arch = nehalem()

    def test_paper_parameters(self):
        assert self.arch.smt_levels == (1, 2)
        assert self.arch.cores_per_chip == 4
        assert self.arch.topology.n_ports == 6

    def test_ideal_is_uniform_sixth(self):
        assert np.allclose(self.arch.ideal_vector(), 1 / 6)

    def test_port_fractions_for_pure_load_mix(self):
        loads = Mix({InstrClass.LOAD: 1.0})
        fracs = self.arch.metric_fractions(loads)
        p2 = self.arch.topology.port_index("P2")
        assert fracs[p2] == pytest.approx(1.0)

    def test_store_splits_across_p3_p4(self):
        stores = Mix({InstrClass.STORE: 1.0})
        fracs = self.arch.metric_fractions(stores)
        topo = self.arch.topology
        assert fracs[topo.port_index("P3")] == pytest.approx(0.5)
        assert fracs[topo.port_index("P4")] == pytest.approx(0.5)

    def test_fx_spreads_three_ways(self):
        fx = Mix({InstrClass.FX: 1.0})
        fracs = self.arch.metric_fractions(fx)
        topo = self.arch.topology
        for port in ("P0", "P1", "P5"):
            assert fracs[topo.port_index(port)] == pytest.approx(1 / 3)

    def test_dispatch_held_event_name(self):
        assert "RAT_STALLS" in self.arch.dispatch_held_event

    def test_balanced_mix_deviation_smaller_than_skewed(self):
        balanced = Mix({InstrClass.LOAD: 0.17, InstrClass.STORE: 0.16,
                        InstrClass.BRANCH: 0.17, InstrClass.FX: 0.25, InstrClass.VS: 0.25})
        skewed = Mix({InstrClass.VS: 0.9, InstrClass.LOAD: 0.1})
        assert self.arch.mix_deviation(balanced) < self.arch.mix_deviation(skewed)


class TestGenericAndRegistry:
    def test_generic_default_builds(self):
        g = generic_core()
        assert g.smt_levels == (1, 2)
        assert g.metric_space == "port"

    def test_generic_custom_ports(self):
        g = generic_core("Wide", port_capacities={"LS": 3.0, "FX": 3.0, "VS": 2.0, "BR": 1.0})
        assert g.topology.ideal_port_fractions()[0] == pytest.approx(3 / 9)

    def test_registry_lookup(self):
        assert get_architecture("power7").name == "POWER7"
        assert get_architecture("NEHALEM").name == "Nehalem"

    def test_registry_unknown(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            get_architecture("sparc")

    def test_registry_lists_builtins(self):
        names = list_architectures()
        assert {"power7", "nehalem", "generic"} <= set(names)

    def test_register_rejects_shadowing(self):
        with pytest.raises(ValueError, match="already registered"):
            register_architecture("power7", power7)


class TestArchitectureValidation:
    def test_smt_levels_must_include_one(self):
        arch = power7()
        with pytest.raises(ValueError, match="SMT1"):
            Architecture(
                name="bad", description="", frequency_ghz=3.0, cores_per_chip=4,
                smt_levels=(2, 4), topology=arch.topology, partition=arch.partition,
                caches=arch.caches, branch_penalty=15.0, metric_space="class",
                ideal_class_fractions=(1/7, 1/7, 1/7, 2/7, 2/7),
            )

    def test_class_space_requires_ideal(self):
        arch = power7()
        with pytest.raises(ValueError, match="ideal_class_fractions"):
            Architecture(
                name="bad", description="", frequency_ghz=3.0, cores_per_chip=4,
                smt_levels=(1, 2, 4), topology=arch.topology, partition=arch.partition,
                caches=arch.caches, branch_penalty=15.0, metric_space="class",
            )

    def test_bad_metric_space(self):
        arch = power7()
        with pytest.raises(ValueError, match="metric_space"):
            Architecture(
                name="bad", description="", frequency_ghz=3.0, cores_per_chip=4,
                smt_levels=(1, 2, 4), topology=arch.topology, partition=arch.partition,
                caches=arch.caches, branch_penalty=15.0, metric_space="weird",
            )

    def test_cache_latency_ordering_enforced(self):
        with pytest.raises(ValueError, match="latencies"):
            CacheGeometry(
                l1d_kb=32, l2_kb=256, l3_mb=8, line_bytes=64,
                lat_l2=30, lat_l3=10, lat_mem=200, mem_bandwidth_gbps=20,
            )

    def test_cycles_per_second(self):
        assert power7().cycles_per_second() == pytest.approx(3.8e9)

    def test_l3_per_core(self):
        assert power7().l3_mb_per_core() == pytest.approx(4.0)
