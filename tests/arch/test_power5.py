"""Tests for the POWER5 model."""

import numpy as np
import pytest

from repro.arch import get_architecture, power5, power7
from repro.arch.classes import InstrClass, Mix
from repro.sim.fast_core import CoreInput, solve_core

from tests.sim.helpers import balanced_stream


class TestPower5Model:
    def setup_method(self):
        self.arch = power5()

    def test_two_way_smt_dual_core(self):
        assert self.arch.smt_levels == (1, 2)
        assert self.arch.cores_per_chip == 2

    def test_same_ideal_mix_family_as_power7(self):
        assert np.allclose(self.arch.ideal_vector(), power7().ideal_vector())

    def test_registry_lookup(self):
        assert get_architecture("power5").name == "POWER5"

    def test_slower_memory_system_than_power7(self):
        p5, p7 = self.arch.caches, power7().caches
        assert p5.lat_mem > p7.lat_mem
        assert p5.mem_bandwidth_gbps < p7.mem_bandwidth_gbps

    def test_core_solves(self):
        out = solve_core(CoreInput(self.arch, 2, (balanced_stream(),) * 2,
                                   threads_per_chip=4))
        assert 0.5 < out.core_ipc <= self.arch.partition.dispatch_width

    def test_smt2_gain_moderate(self):
        solo = solve_core(CoreInput(self.arch, 1, (balanced_stream(),),
                                    threads_per_chip=2))
        smt2 = solve_core(CoreInput(self.arch, 2, (balanced_stream(),) * 2,
                                    threads_per_chip=4))
        gain = smt2.core_ipc / solo.core_ipc
        assert 1.1 < gain < 1.7  # Mathis et al.: "moderate improvement"


class TestMathisReplication:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import related_mathis_power5
        return related_mathis_power5.run()

    def test_most_gains_moderate(self, result):
        gains = list(result.gains.values())
        assert all(0.9 < g < 1.8 for g in gains)
        moderate = sum(1 for g in gains if 1.1 <= g <= 1.6)
        assert moderate >= len(gains) * 0.7

    def test_miss_heavy_apps_gain_least(self, result):
        # Mathis et al.: "applications with the smallest improvement
        # have more cache misses when using SMT".
        assert result.correlation < -0.4

    def test_bandwidth_bound_at_bottom(self, result):
        worst = min(result.gains, key=result.gains.get)
        assert worst in ("Stream", "Swim", "Equake")

    def test_render(self, result):
        assert "Mathis" in result.render()
