"""Tests for SMT resource partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.partition import SmtPartition, ThreadResources


def make_partition(**overrides):
    kwargs = dict(
        fetch_width=8,
        dispatch_width=6,
        issue_width=8,
        queue_entries=48,
        rob_entries=120,
        queue_share={1: 1.0, 2: 0.5, 4: 0.25},
        rob_share={1: 1.0, 2: 0.5, 4: 0.25},
        smt1_boost=1.1,
    )
    kwargs.update(overrides)
    return SmtPartition(**kwargs)


class TestConstruction:
    def test_valid(self):
        p = make_partition()
        assert p.smt_levels == (1, 2, 4)

    def test_rejects_mismatched_levels(self):
        with pytest.raises(ValueError, match="same SMT levels"):
            make_partition(rob_share={1: 1.0, 2: 0.5})

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            make_partition(fetch_width=0)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError, match="share"):
            make_partition(queue_share={1: 1.0, 2: 0.0, 4: 0.25},
                           rob_share={1: 1.0, 2: 0.5, 4: 0.25})

    def test_rejects_boost_below_one(self):
        with pytest.raises(ValueError, match="boost"):
            make_partition(smt1_boost=0.9)


class TestThreadResources:
    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="SMT3"):
            make_partition().thread_resources(3)

    def test_fetch_share_divides_by_level(self):
        p = make_partition()
        assert p.thread_resources(4).fetch_width == pytest.approx(2.0)
        assert p.thread_resources(2).fetch_width == pytest.approx(4.0)

    def test_queue_entries_shrink_with_level(self):
        p = make_partition()
        q = [p.thread_resources(l).queue_entries for l in (1, 2, 4)]
        assert q[0] > q[1] > q[2]

    def test_ilp_scale_sqrt_law(self):
        p = make_partition(smt1_boost=1.0)
        r4 = p.thread_resources(4)
        # quarter of the window -> half the ILP
        assert r4.ilp_scale == pytest.approx(0.5)

    def test_smt1_boost_applies_only_at_smt1(self):
        boosted = make_partition(smt1_boost=1.2)
        plain = make_partition(smt1_boost=1.0)
        assert boosted.thread_resources(1).queue_entries > plain.thread_resources(1).queue_entries
        assert boosted.thread_resources(2).queue_entries == plain.thread_resources(2).queue_entries

    def test_smt1_ilp_scale_at_least_one(self):
        p = make_partition(smt1_boost=1.1)
        assert p.thread_resources(1).ilp_scale >= 1.0

    def test_core_dispatch_width_constant(self):
        p = make_partition()
        assert p.core_dispatch_width(1) == p.core_dispatch_width(4) == 6.0

    def test_describe_covers_all_levels(self):
        described = make_partition().describe()
        assert set(described) == {1, 2, 4}
        assert all(isinstance(r, ThreadResources) for r in described.values())

    @given(st.sampled_from([1, 2, 4]))
    def test_total_queue_never_exceeds_capacity_plus_boost(self, level):
        p = make_partition()
        r = p.thread_resources(level)
        assert r.queue_entries * level <= p.queue_entries * p.smt1_boost + 1e-9


class TestThreadResourcesValidation:
    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError, match="ilp_scale"):
            ThreadResources(1, 8, 6, 48, 120, 0.0)
