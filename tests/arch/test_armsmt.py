"""The ARM-style 2-way SMT architecture model."""

import numpy as np
import pytest

from repro.arch import armsmt, get_architecture, list_architectures
from repro.arch.classes import InstrClass, Mix


class TestShape:
    def test_reference_machine(self):
        arch = armsmt()
        assert arch.name == "ARMv8-SMT2"
        assert arch.smt_levels == (1, 2)
        assert arch.max_smt == 2
        assert arch.cores_per_chip == 8
        assert arch.metric_space == "port"

    def test_cores_per_chip_is_configurable(self):
        small = armsmt(cores_per_chip=4)
        assert small.cores_per_chip == 4
        # The shared SLC scales with the core count.
        assert small.caches.l3_mb == pytest.approx(4.0)
        assert armsmt(cores_per_chip=8).caches.l3_mb == pytest.approx(8.0)

    def test_narrower_than_the_big_cores(self):
        from repro.arch import nehalem, power7

        arm = armsmt()
        assert arm.partition.dispatch_width < nehalem().partition.dispatch_width
        assert arm.partition.dispatch_width < power7().partition.dispatch_width


class TestPorts:
    def test_ideal_is_capacity_proportional(self):
        arch = armsmt()
        ideal = arch.ideal_vector()
        # Four equal-capacity ports -> uniform ideal.
        assert np.allclose(ideal, 0.25)
        assert ideal.sum() == pytest.approx(1.0)

    def test_loads_and_stores_share_one_pipe(self):
        topo = armsmt().topology
        ls = topo.port_index("LS")
        assert topo.routing_matrix[ls, InstrClass.LOAD] == 1.0
        assert topo.routing_matrix[ls, InstrClass.STORE] == 1.0

    def test_branches_arbitrate_with_integer_work(self):
        topo = armsmt().topology
        i0 = topo.port_index("I0")
        assert topo.routing_matrix[i0, InstrClass.BRANCH] == 1.0
        assert topo.routing_matrix[i0, InstrClass.FX] == pytest.approx(0.5)

    def test_memory_heavy_mix_deviates_more_than_balanced(self):
        arch = armsmt()
        balanced = Mix({InstrClass.LOAD: 0.20, InstrClass.STORE: 0.05,
                        InstrClass.BRANCH: 0.15, InstrClass.FX: 0.35,
                        InstrClass.VS: 0.25})
        memory = Mix({InstrClass.LOAD: 0.55, InstrClass.STORE: 0.25,
                      InstrClass.BRANCH: 0.05, InstrClass.FX: 0.10,
                      InstrClass.VS: 0.05})
        assert arch.mix_deviation(memory) > arch.mix_deviation(balanced)


class TestPartition:
    def test_rob_hard_split_queue_competitive(self):
        part = armsmt().partition
        smt2 = part.thread_resources(2)
        assert smt2.rob_entries == pytest.approx(part.rob_entries * 0.5)
        # Competitive sharing: a thread gets more than a hard half.
        assert smt2.queue_entries > part.queue_entries * 0.5

    def test_smt4_is_not_a_mode(self):
        with pytest.raises(ValueError, match="SMT4 not supported"):
            armsmt().partition.thread_resources(4)
        with pytest.raises(ValueError, match="SMT levels"):
            armsmt().validate_smt_level(4)

    def test_backend_stall_event(self):
        assert armsmt().dispatch_held_event == "STALL_BACKEND"


class TestRegistration:
    def test_registered_under_armsmt(self):
        assert "armsmt" in list_architectures()
        assert get_architecture("armsmt").name == "ARMv8-SMT2"

    def test_lookup_is_case_insensitive(self):
        assert get_architecture("ARMSMT").name == "ARMv8-SMT2"
