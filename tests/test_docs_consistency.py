"""docs/api.md must mention every public symbol (see scripts/check_docs.py)."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_check_docs():
    path = REPO_ROOT / "scripts" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_api_doc_covers_public_surface():
    check_docs = load_check_docs()
    missing = check_docs.missing_symbols()
    assert missing == {}, (
        "docs/api.md is missing public symbols: "
        + "; ".join(f"{mod}: {', '.join(names)}"
                    for mod, names in missing.items())
    )


def test_public_surface_is_nonempty():
    check_docs = load_check_docs()
    assert "smtsm" in check_docs.public_symbols("repro")
    assert "Tracer" in check_docs.public_symbols("repro.obs")


def test_missing_symbols_detects_drift():
    check_docs = load_check_docs()
    assert "repro.obs" in check_docs.missing_symbols(doc_text="smtsm only")


def test_required_doc_pages_present():
    check_docs = load_check_docs()
    assert check_docs.missing_docs() == []
    assert "scaling.md" in check_docs.REQUIRED_DOCS


def test_scaling_doc_covers_every_serve_knob():
    check_docs = load_check_docs()
    assert check_docs.missing_scaling_knobs() == []


def test_missing_scaling_knobs_detects_drift():
    check_docs = load_check_docs()
    absent = check_docs.missing_scaling_knobs(doc_text="just max_batch")
    assert "workers" in absent and "hot_cache_size" in absent
