"""Environment-variable configuration shared by the config dataclasses.

``ServeConfig`` (``REPRO_SERVE_*``) and ``FleetConfig``
(``REPRO_FLEET_*``) both want the same thing: every scalar field
overridable from the environment, with the variable name derived from
the field name and the string coerced to the field's annotated type.
Before this module each consumer hand-rolled its own
``os.environ.get(...).strip()`` parsing; now they share one
implementation:

* :func:`env_str` — the canonical "read and strip one variable" used by
  every env lookup in the package;
* :func:`parse_bool` — the one truthy/falsy vocabulary
  (``1/true/yes/on`` vs ``0/false/no/off``);
* :func:`dataclass_from_env` — build (or override) a frozen config
  dataclass from ``<PREFIX>_<FIELDNAME>`` variables, coercing by the
  field's type annotation (``int``/``float``/``bool``/``str`` and
  ``Optional`` of those; other fields are skipped unless given a custom
  parser).

A malformed value raises a ``ValueError`` naming the variable, so a bad
deployment manifest fails at startup instead of silently falling back
to a default.
"""

from __future__ import annotations

import dataclasses
import os
import typing
from typing import Any, Callable, Dict, Mapping, Optional, Type, TypeVar

__all__ = [
    "env_str",
    "parse_bool",
    "dataclass_from_env",
    "env_overrides",
]

T = TypeVar("T")

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


def env_str(
    name: str,
    default: str = "",
    env: Optional[Mapping[str, str]] = None,
) -> str:
    """One stripped environment lookup (the shared idiom)."""
    source = os.environ if env is None else env
    return source.get(name, default).strip()


def parse_bool(text: str) -> bool:
    """The package's one boolean vocabulary; raises on anything else."""
    lowered = text.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(
        f"expected one of {'/'.join(_TRUTHY)} or {'/'.join(_FALSY)}, "
        f"got {text!r}"
    )


def _unwrap_optional(tp: Any) -> tuple:
    """``(inner_type, is_optional)`` for ``Optional[X]``; passthrough else."""
    if typing.get_origin(tp) is typing.Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1:
            return args[0], True
    return tp, False


def _parser_for(tp: Any) -> Optional[Callable[[str], Any]]:
    """A string parser for a supported annotation, or ``None``."""
    inner, is_optional = _unwrap_optional(tp)
    base: Optional[Callable[[str], Any]]
    if inner is bool:
        base = parse_bool
    elif inner is int:
        base = int
    elif inner is float:
        base = float
    elif inner is str:
        base = lambda text: text  # noqa: E731 - trivial identity
    else:
        return None
    if not is_optional:
        return base

    def parse_optional(text: str) -> Any:
        if text.strip().lower() in ("", "none", "null"):
            return None
        return base(text)

    return parse_optional


def env_overrides(
    cls: Type[T],
    prefix: str,
    *,
    env: Optional[Mapping[str, str]] = None,
    aliases: Optional[Mapping[str, str]] = None,
    parsers: Optional[Mapping[str, Callable[[str], Any]]] = None,
) -> Dict[str, Any]:
    """Field overrides for ``cls`` found in the environment.

    Each dataclass field ``foo_bar`` is looked up as ``<PREFIX>_FOO_BAR``
    (``aliases`` maps a field name to a non-derived variable name, e.g.
    ``mp_start_method -> REPRO_SERVE_MP``).  Fields whose annotation is
    not a supported scalar are skipped unless ``parsers`` supplies a
    coercion.  A present-but-malformed value raises ``ValueError``
    naming the variable.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    source = os.environ if env is None else env
    aliases = dict(aliases or {})
    parsers = dict(parsers or {})
    hints = typing.get_type_hints(cls)
    overrides: Dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        var = aliases.get(field.name, f"{prefix}_{field.name.upper()}")
        if var not in source:
            continue
        raw = source[var].strip()
        parser = parsers.get(field.name)
        if parser is None:
            parser = _parser_for(hints.get(field.name, field.type))
        if parser is None:
            continue  # non-scalar field with no custom parser
        try:
            overrides[field.name] = parser(raw)
        except (ValueError, TypeError) as exc:
            raise ValueError(
                f"bad value for {var}={raw!r} "
                f"({cls.__name__}.{field.name}): {exc}"
            ) from None
    return overrides


def dataclass_from_env(
    cls: Type[T],
    prefix: str,
    *,
    env: Optional[Mapping[str, str]] = None,
    base: Optional[T] = None,
    aliases: Optional[Mapping[str, str]] = None,
    parsers: Optional[Mapping[str, Callable[[str], Any]]] = None,
) -> T:
    """Build ``cls`` from the environment, over ``base`` (or defaults).

    With no matching variables set this returns ``base`` unchanged (or a
    default-constructed instance), so calling it unconditionally at
    startup is free.  The constructed instance goes through the
    dataclass ``__post_init__`` validation as usual.
    """
    overrides = env_overrides(
        cls, prefix, env=env, aliases=aliases, parsers=parsers
    )
    if base is not None:
        if not overrides:
            return base
        return dataclasses.replace(base, **overrides)
    return cls(**overrides)
