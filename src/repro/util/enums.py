"""Validated string-enum constants for stringly-typed parameters.

Parameters like ``run_catalog(strategy=...)`` and
``simulate_fleet(policy=...)`` historically took bare strings; a typo
surfaced as a generic error far from the call site.
:class:`ValidatedStrEnum` keeps the string interface (every member *is*
its literal value, so ``Strategy.COLUMNAR == "columnar"`` and existing
callers keep passing plain strings) while giving each parameter a typed
constant and a :meth:`~ValidatedStrEnum.parse` entry point that raises a
``ValueError`` naming every valid option on a typo.
"""

from __future__ import annotations

import enum

__all__ = ["ValidatedStrEnum"]


class ValidatedStrEnum(str, enum.Enum):
    """A string enum whose members compare equal to their literal values.

    Subclasses define the accepted literals::

        class Strategy(ValidatedStrEnum):
            COLUMNAR = "columnar"
            SERIAL = "serial"

    ``Strategy.parse("columnar")`` and ``Strategy.parse(Strategy.COLUMNAR)``
    both return the member; ``Strategy.parse("colmnar")`` raises a
    ``ValueError`` listing the valid options.  Because members subclass
    ``str``, they can be stored, compared, and formatted (via ``.value``)
    exactly like the literals they replace.
    """

    @classmethod
    def options(cls) -> tuple:
        """Every accepted literal value, in declaration order."""
        return tuple(member.value for member in cls)

    @classmethod
    def parse(cls, value) -> "ValidatedStrEnum":
        """Coerce a member or its literal string; reject anything else.

        The error message lists every valid option so a typo at a CLI or
        config boundary is self-diagnosing.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                pass
        raise ValueError(
            f"unknown {cls.__name__.lower()} {value!r}; valid options: "
            f"{', '.join(cls.options())}"
        )

    def __str__(self) -> str:  # match StrEnum semantics on older pythons
        return str(self.value)
