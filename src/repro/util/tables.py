"""ASCII report formatting used by the experiment harness.

The benchmark harness must *print the same rows/series the paper
reports*; these helpers render aligned tables and (x, y) series without
pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt_cell(value: Cell, float_fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_fmt: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_series(
    name: str,
    points: Mapping[str, tuple],
    *,
    xlabel: str = "x",
    ylabel: str = "y",
    float_fmt: str = ".4f",
) -> str:
    """Render a labelled scatter series (one row per labelled point)."""
    rows = [[label, float(x), float(y)] for label, (x, y) in points.items()]
    rows.sort(key=lambda r: r[1])
    return format_table(["label", xlabel, ylabel], rows, float_fmt=float_fmt, title=name)
