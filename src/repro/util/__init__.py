"""Shared utilities: deterministic RNG plumbing, validation, ASCII tables."""

from repro.util.rng import RngStream, spawn_rng
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
    check_nonnegative,
)
from repro.util.tables import format_table, format_series

__all__ = [
    "RngStream",
    "spawn_rng",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "check_nonnegative",
    "format_table",
    "format_series",
]
