"""Shared utilities: deterministic RNG plumbing, validation, ASCII
tables, env-var configuration, and validated string enums."""

from repro.util.config import dataclass_from_env, env_str, parse_bool
from repro.util.enums import ValidatedStrEnum
from repro.util.rng import RngStream, spawn_rng
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
    check_nonnegative,
)
from repro.util.tables import format_table, format_series

__all__ = [
    "ValidatedStrEnum",
    "dataclass_from_env",
    "env_str",
    "parse_bool",
    "RngStream",
    "spawn_rng",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "check_nonnegative",
    "format_table",
    "format_series",
]
