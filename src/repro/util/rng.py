"""Deterministic random-number plumbing.

Every stochastic component of the simulator draws from an
:class:`RngStream` derived from a single experiment seed, so that full
experiment sweeps are reproducible run-to-run while distinct components
(e.g. two hardware threads, or the PMU noise model vs. the branch
predictor) see statistically independent streams.

The scheme hashes a tuple of string/int keys into a ``numpy`` seed
sequence; it mirrors how large simulators hand out child seeds without
threading a generator object through every call site.
"""

from __future__ import annotations

from typing import Union

import numpy as np

Key = Union[str, int]


class RngStream:
    """A named, forkable random stream.

    Wraps :class:`numpy.random.Generator` and remembers the key path used
    to derive it, so child streams are reproducible functions of
    ``(root_seed, *keys)``.
    """

    __slots__ = ("seed", "keys", "gen")

    def __init__(self, seed: int, keys: tuple = ()):
        self.seed = int(seed)
        self.keys = tuple(keys)
        material = [self.seed] + [_key_to_int(k) for k in self.keys]
        self.gen = np.random.default_rng(np.random.SeedSequence(material))

    def child(self, *keys: Key) -> "RngStream":
        """Derive an independent stream for a named sub-component."""
        return RngStream(self.seed, self.keys + tuple(keys))

    # Convenience passthroughs used throughout the simulator ----------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self.gen.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self.gen.normal(loc, scale, size)

    def geometric(self, p: float, size=None):
        return self.gen.geometric(p, size)

    def random(self, size=None):
        return self.gen.random(size)

    def integers(self, low: int, high: int, size=None):
        return self.gen.integers(low, high, size)

    def choice(self, a, size=None, p=None):
        return self.gen.choice(a, size=size, p=p)

    def jitter(self, value: float, rel_sigma: float) -> float:
        """Multiplicative log-normal-ish jitter used for run-to-run noise.

        ``rel_sigma`` is the relative standard deviation; the result is
        clamped to stay positive.
        """
        if rel_sigma <= 0.0:
            return value
        factor = 1.0 + self.gen.normal(0.0, rel_sigma)
        return value * max(0.05, factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, keys={self.keys!r})"


def _key_to_int(key: Key) -> int:
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    # FNV-1a over the utf-8 bytes: stable across processes (unlike hash()).
    h = 0x811C9DC5
    for byte in str(key).encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


def spawn_rng(seed: int, *keys: Key) -> RngStream:
    """Create the root stream for an experiment component."""
    return RngStream(seed, tuple(keys))
