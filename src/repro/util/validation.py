"""Argument validation helpers.

The simulator configuration surface is large (architectures, workloads,
cache geometries); failing fast with a precise message at construction
time is much cheaper than debugging a nonsense steady-state downstream.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Validate ``value`` lies in [0, 1] (or (0, 1) when not inclusive)."""
    v = float(value)
    if inclusive:
        if not (0.0 <= v <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < v < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return v


def check_positive(name: str, value: float) -> float:
    v = float(value)
    if not (v > 0.0) or not np.isfinite(v):
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return v


def check_nonnegative(name: str, value: float) -> float:
    v = float(value)
    if v < 0.0 or not np.isfinite(v):
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return v


def check_probability_vector(name: str, values: Iterable[float], *, atol: float = 1e-6) -> np.ndarray:
    """Validate a vector of non-negative fractions summing to 1."""
    arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-d vector, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries: {arr.tolist()}")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-9 * arr.size):
        raise ValueError(f"{name} must sum to 1 (got {total:.9f}): {arr.tolist()}")
    # Renormalize exactly so downstream code can rely on sum == 1.
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum()


def check_int_in(name: str, value: int, allowed: Iterable[int]) -> int:
    v = int(value)
    allowed = tuple(allowed)
    if v not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return v
