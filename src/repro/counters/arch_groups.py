"""Architecture-specific counter-group layouts.

Real PMUs constrain which events can be counted together: POWER7
exposes six thread-level PMCs programmed from predefined event groups;
Nehalem has four programmable counters plus three fixed ones (cycles,
instructions, reference cycles).  These builders produce multiplex
schedules that mirror those constraints, grouping the SMTsm-relevant
events the way an online tool would have to:

* the *metric group* holds everything Eq. 2/3 needs most often
  (dispatch-held + the dominant issue counters), so one group's worth
  of PMCs refreshes the metric every rotation;
* remaining events (cache misses, branch counters, leftover ports)
  rotate behind it.
"""

from __future__ import annotations

from typing import List

from repro.arch.machine import Architecture
from repro.counters.events import arch_event_names, port_issue_event
from repro.counters.groups import CounterGroup, MultiplexSchedule

#: Physical counter widths (thread-level PMCs).
POWER7_PMC_WIDTH = 6
NEHALEM_PMC_WIDTH = 4
#: Events Nehalem counts on fixed counters, outside the rotation.
NEHALEM_FIXED = ("CYCLES", "INSTRUCTIONS")


def power7_groups() -> MultiplexSchedule:
    """POWER7: six PMCs, metric events front-loaded into group 0."""
    groups = [
        CounterGroup("P7_METRIC", (
            "CYCLES", "INSTRUCTIONS", "DISP_HELD_RES",
            "LD_CMPL", "ST_CMPL", "BR_CMPL",
        )),
        CounterGroup("P7_UNITS", (
            "FX_CMPL", "VS_CMPL",
            port_issue_event("LS"), port_issue_event("FX"),
            port_issue_event("VS"), port_issue_event("BR"),
        )),
        CounterGroup("P7_MEMORY", (
            "L1_DMISS", "L2_MISS", "L3_MISS", "BR_MISPRED",
        )),
    ]
    return MultiplexSchedule(groups, width=POWER7_PMC_WIDTH)


def nehalem_groups() -> MultiplexSchedule:
    """Nehalem: four programmable PMCs; cycles/instructions are fixed.

    The fixed counters are excluded from the rotation (they are always
    on in hardware); PerfStat passes uncovered events through exactly,
    which models that behaviour.
    """
    ports = [port_issue_event(f"P{i}") for i in range(6)]
    groups = [
        CounterGroup("NH_METRIC_A", ("DISP_HELD_RES", ports[0], ports[1], ports[2])),
        CounterGroup("NH_METRIC_B", (ports[3], ports[4], ports[5], "BR_MISPRED")),
        CounterGroup("NH_MIX", ("LD_CMPL", "ST_CMPL", "BR_CMPL", "FX_CMPL")),
        CounterGroup("NH_MEMORY", ("VS_CMPL", "L1_DMISS", "L2_MISS", "L3_MISS")),
    ]
    return MultiplexSchedule(groups, width=NEHALEM_PMC_WIDTH)


def groups_for(arch: Architecture) -> MultiplexSchedule:
    """The realistic schedule for a known machine; generic fallback."""
    if arch.name == "POWER7":
        return power7_groups()
    if arch.name == "Nehalem":
        return nehalem_groups()
    from repro.counters.groups import default_groups

    return default_groups(arch_event_names(arch), width=POWER7_PMC_WIDTH)


def missing_from_schedule(arch: Architecture, schedule: MultiplexSchedule) -> List[str]:
    """Events the PMU exposes but the schedule never measures.

    For Nehalem the fixed-counter events are expected here — they are
    measured continuously outside the rotation.
    """
    covered = set(schedule.covered_events())
    return [e for e in arch_event_names(arch) if e not in covered]
