"""Counter groups and time multiplexing.

Real PMUs expose only a handful of physical counters (POWER7: six PMCs;
Nehalem: four programmable + three fixed).  Reading more events than
that requires *multiplexing*: the kernel rotates event groups onto the
hardware and scales each group's observed count by the inverse of the
fraction of time it was scheduled.  Scaling is exact for a stationary
workload but biased when the workload's phases beat against the rotation
— one of the practical costs of an online metric that this package
models explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.util.rng import RngStream


@dataclass(frozen=True)
class CounterGroup:
    """A set of events programmed onto the PMCs simultaneously."""

    name: str
    events: Tuple[str, ...]

    def __post_init__(self):
        if not self.events:
            raise ValueError(f"group {self.name!r} has no events")
        if len(set(self.events)) != len(self.events):
            raise ValueError(f"group {self.name!r} has duplicate events: {self.events}")


class MultiplexSchedule:
    """Round-robin multiplexing of counter groups over an interval.

    ``width`` is the number of physical counters; any group wider than
    that is rejected at construction (it could never be scheduled).
    """

    def __init__(self, groups: Sequence[CounterGroup], *, width: int = 6):
        if width <= 0:
            raise ValueError(f"width must be > 0, got {width}")
        self.groups: Tuple[CounterGroup, ...] = tuple(groups)
        if not self.groups:
            raise ValueError("a multiplex schedule needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names: {names}")
        seen: Dict[str, str] = {}
        for group in self.groups:
            if len(group.events) > width:
                raise ValueError(
                    f"group {group.name!r} has {len(group.events)} events "
                    f"but only {width} physical counters exist"
                )
            for event in group.events:
                if event in seen:
                    raise ValueError(
                        f"event {event!r} appears in groups {seen[event]!r} and {group.name!r}"
                    )
                seen[event] = group.name
        self.width = int(width)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def covered_events(self) -> Tuple[str, ...]:
        return tuple(e for g in self.groups for e in g.events)

    def schedule_fractions(self) -> Dict[str, float]:
        """Fraction of the interval each group is live (fair rotation)."""
        frac = 1.0 / self.n_groups
        return {g.name: frac for g in self.groups}

    def estimate(
        self,
        sub_interval_counts: Sequence[Mapping[str, float]],
        rng: RngStream = None,
        jitter_rel: float = 0.0,
    ) -> Dict[str, float]:
        """Multiplex over per-sub-interval exact counts and scale up.

        ``sub_interval_counts[i]`` holds the *true* event counts the
        workload generated during sub-interval ``i``; group ``i % n``
        is the one actually measuring then.  The estimate for an event
        is its observed sum scaled by ``n_groups`` — exactly the kernel's
        ``count * time_enabled / time_running`` correction.  With a
        stationary workload this is unbiased; with phases it aliases.
        """
        if len(sub_interval_counts) < self.n_groups:
            raise ValueError(
                f"need at least {self.n_groups} sub-intervals to schedule "
                f"{self.n_groups} groups, got {len(sub_interval_counts)}"
            )
        observed: Dict[str, float] = {e: 0.0 for e in self.covered_events()}
        live: Dict[str, int] = {e: 0 for e in observed}
        for i, counts in enumerate(sub_interval_counts):
            group = self.groups[i % self.n_groups]
            for event in group.events:
                observed[event] += float(counts.get(event, 0.0))
                live[event] += 1
        n_sub = len(sub_interval_counts)
        estimates: Dict[str, float] = {}
        for event, count in observed.items():
            if live[event] == 0:  # pragma: no cover - unreachable with >= n_groups subs
                estimates[event] = 0.0
                continue
            scale = n_sub / live[event]
            value = count * scale
            if rng is not None and jitter_rel > 0:
                value = rng.jitter(value, jitter_rel)
            estimates[event] = value
        return estimates


def default_groups(event_names: Sequence[str], *, width: int = 6) -> MultiplexSchedule:
    """Pack events into groups of ``width`` in the given order."""
    groups: List[CounterGroup] = []
    batch: List[str] = []
    for name in event_names:
        batch.append(name)
        if len(batch) == width:
            groups.append(CounterGroup(f"G{len(groups)}", tuple(batch)))
            batch = []
    if batch:
        groups.append(CounterGroup(f"G{len(groups)}", tuple(batch)))
    return MultiplexSchedule(groups, width=width)
