"""Hardware performance-counter substrate.

The paper's metric is "obtained online through hardware performance
counters with little overhead" (abstract).  This package simulates the
counter infrastructure of a PMU: named events, per-hardware-thread
counters, counter groups with time-multiplexing (and its scaling
error), and a ``perf stat``-like sampling tool with a measurement
overhead model.
"""

from repro.counters.events import Event, EventDomain, arch_event_names, CANONICAL_EVENTS
from repro.counters.pmu import Pmu, CounterSample
from repro.counters.groups import CounterGroup, MultiplexSchedule
from repro.counters.perfstat import PerfStat, PerfStatConfig, PerfReading

__all__ = [
    "Event",
    "EventDomain",
    "arch_event_names",
    "CANONICAL_EVENTS",
    "Pmu",
    "CounterSample",
    "CounterGroup",
    "MultiplexSchedule",
    "PerfStat",
    "PerfStatConfig",
    "PerfReading",
]
