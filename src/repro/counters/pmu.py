"""Per-hardware-thread performance monitoring unit.

The :class:`Pmu` accumulates raw event counts per hardware context, the
way real PMCs do; :class:`CounterSample` is an interval snapshot
aggregated across the contexts of interest, enriched with the wall-clock
and per-thread CPU times the SMTsm scalability factor needs.  All the
derived quantities the paper reads (IPC/CPI, MPKI rates, mix fractions,
dispatch-held fraction) are computed here so that the metric and the
baseline predictors share one audited implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.arch.classes import CLASS_ORDER, InstrClass, Mix
from repro.arch.machine import Architecture
from repro.counters.events import (
    CANONICAL_EVENTS,
    CLASS_COUNT_EVENTS,
    arch_event_names,
    port_issue_event,
)


class Pmu:
    """Raw event accumulation for every hardware context of a system."""

    def __init__(self, arch: Architecture, n_contexts: int):
        if n_contexts <= 0:
            raise ValueError(f"n_contexts must be > 0, got {n_contexts}")
        self.arch = arch
        self.n_contexts = int(n_contexts)
        self._names = arch_event_names(arch)
        self._index = {name: i for i, name in enumerate(self._names)}
        self._counts = np.zeros((self.n_contexts, len(self._names)), dtype=float)

    @property
    def event_names(self) -> Tuple[str, ...]:
        return self._names

    def _check(self, context: int, event: str) -> Tuple[int, int]:
        if not (0 <= context < self.n_contexts):
            raise IndexError(f"context {context} out of range [0, {self.n_contexts})")
        try:
            return context, self._index[event]
        except KeyError:
            raise KeyError(f"unknown event {event!r}; known: {self._names}") from None

    def add(self, context: int, event: str, count: float) -> None:
        """Accumulate ``count`` occurrences of ``event`` on ``context``."""
        ctx, idx = self._check(context, event)
        if count < 0:
            raise ValueError(f"counter increments must be >= 0, got {count} for {event}")
        self._counts[ctx, idx] += count

    def read(self, context: int, event: str) -> float:
        ctx, idx = self._check(context, event)
        return float(self._counts[ctx, idx])

    def total(self, event: str) -> float:
        _, idx = self._check(0, event)
        return float(self._counts[:, idx].sum())

    def snapshot(self) -> np.ndarray:
        """A copy of the raw counter matrix (contexts x events)."""
        return self._counts.copy()

    def reset(self) -> None:
        self._counts[:] = 0.0

    def aggregate(self, contexts: Optional[Iterable[int]] = None) -> Dict[str, float]:
        """Sum counters over ``contexts`` (default: all)."""
        if contexts is None:
            rows = self._counts
        else:
            idx = list(contexts)
            rows = self._counts[idx]
        return {name: float(rows[:, i].sum()) for i, name in enumerate(self._names)}


@dataclass(frozen=True)
class CounterSample:
    """An aggregated counter interval plus time accounting.

    This is the unit of input to the SMT-selection metric: everything in
    Eq. 1 is derivable from the fields here.
    """

    arch: Architecture
    smt_level: int
    events: Mapping[str, float]
    wall_time_s: float
    avg_thread_cpu_s: float
    n_software_threads: int

    def __post_init__(self):
        if self.wall_time_s <= 0:
            raise ValueError(f"wall_time_s must be > 0, got {self.wall_time_s}")
        if self.avg_thread_cpu_s <= 0:
            raise ValueError(f"avg_thread_cpu_s must be > 0, got {self.avg_thread_cpu_s}")
        if self.n_software_threads <= 0:
            raise ValueError(f"n_software_threads must be > 0, got {self.n_software_threads}")
        self.arch.validate_smt_level(self.smt_level)
        for required in ("CYCLES", "INSTRUCTIONS", "DISP_HELD_RES"):
            if required not in self.events:
                raise ValueError(f"counter sample missing required event {required}")

    # -- primitive accessors -------------------------------------------
    def count(self, event: str) -> float:
        try:
            return float(self.events[event])
        except KeyError:
            raise KeyError(f"event {event!r} not in sample: {sorted(self.events)}") from None

    @property
    def cycles(self) -> float:
        return self.count("CYCLES")

    @property
    def instructions(self) -> float:
        return self.count("INSTRUCTIONS")

    # -- derived rates the paper uses ------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / max(self.cycles, 1.0)

    @property
    def cpi(self) -> float:
        return self.cycles / max(self.instructions, 1.0)

    @property
    def dispatch_held_fraction(self) -> float:
        """Second SMTsm factor: fraction of cycles dispatch was held."""
        return min(1.0, self.count("DISP_HELD_RES") / max(self.cycles, 1.0))

    @property
    def scalability_ratio(self) -> float:
        """Third SMTsm factor: TotalTime / AvgThrdTime (>= 1 in practice)."""
        return self.wall_time_s / self.avg_thread_cpu_s

    def mpki(self, event: str) -> float:
        """Misses (or any event) per thousand completed instructions."""
        return 1000.0 * self.count(event) / max(self.instructions, 1.0)

    @property
    def l1_mpki(self) -> float:
        return self.mpki("L1_DMISS")

    @property
    def l3_mpki(self) -> float:
        return self.mpki("L3_MISS")

    @property
    def branch_mpki(self) -> float:
        return self.mpki("BR_MISPRED")

    @property
    def vs_fraction(self) -> float:
        """Fraction of VSU (FP/vector) instructions — Fig. 2's fourth axis."""
        return self.count("VS_CMPL") / max(self.instructions, 1.0)

    # -- mix reconstruction ----------------------------------------------
    def class_counts(self) -> Dict[InstrClass, float]:
        return {
            klass: self.count(event)
            for klass, event in zip(CLASS_ORDER, CLASS_COUNT_EVENTS)
        }

    def mix(self) -> Mix:
        """Instruction mix recovered from the per-class counters."""
        return Mix.from_counts(self.class_counts())

    def metric_fractions(self) -> np.ndarray:
        """Instruction fractions in the architecture's metric space.

        For a class-space architecture (POWER7) these come from the
        per-class completion counters; for a port-space architecture
        (Nehalem) from the per-port issue counters.
        """
        if self.arch.metric_space == "class":
            vec = np.array([self.class_counts()[k] for k in CLASS_ORDER], dtype=float)
        else:
            vec = np.array(
                [self.count(port_issue_event(p)) for p in self.arch.topology.port_names],
                dtype=float,
            )
        total = vec.sum()
        if total <= 0:
            raise ValueError("cannot form metric fractions: no issue counts in sample")
        return vec / total

    def with_events(self, extra: Mapping[str, float]) -> "CounterSample":
        """A copy with some events replaced (used by noise/overhead models)."""
        merged = dict(self.events)
        merged.update(extra)
        return CounterSample(
            arch=self.arch,
            smt_level=self.smt_level,
            events=merged,
            wall_time_s=self.wall_time_s,
            avg_thread_cpu_s=self.avg_thread_cpu_s,
            n_software_threads=self.n_software_threads,
        )
