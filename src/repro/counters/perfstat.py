"""A ``perf stat``-like online sampling tool, with its costs.

The reproduction band for this paper notes the practical obstacle to an
online SMTsm implementation in userspace: shelling out to ``perf``
periodically is not free, and the measurement overhead can obscure the
very metric being measured.  :class:`PerfStat` models the mechanism: it
samples a running application at a fixed interval, multiplexes counter
groups within each interval, and charges each sample a fixed tool cost
that both steals wall-clock time from the application and pollutes the
instruction-mix counters with the tool's own (integer/branch heavy)
instructions.

The ablation bench ``benchmarks/test_ablation_perf_overhead.py`` sweeps
the overhead to show when the online metric degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol

from repro.counters.groups import MultiplexSchedule
from repro.counters.pmu import CounterSample
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive


class MeasurableApp(Protocol):
    """Anything PerfStat can drive: advance wall time, get exact counts."""

    def advance(self, wall_seconds: float) -> CounterSample:
        """Run the app for ``wall_seconds`` and return the exact interval sample."""
        ...  # pragma: no cover - protocol


#: Mix of the measurement tool's own instructions: syscall + counter
#: arithmetic — loads, integer ops and branches, no vector work.
_TOOL_EVENT_WEIGHTS = {
    "LD_CMPL": 0.30,
    "ST_CMPL": 0.10,
    "BR_CMPL": 0.25,
    "FX_CMPL": 0.35,
}


@dataclass(frozen=True)
class PerfStatConfig:
    """Sampling parameters.

    ``overhead_per_sample_s`` — wall time consumed by one fork/exec +
    counter read/reset round trip (order 1-10 ms for real perf).
    ``tool_instructions_per_sample`` — instructions the tool itself
    retires inside the measured context (counter pollution).
    ``multiplex`` — optional schedule; when present, each interval is
    divided into one sub-interval per group and the estimate is scaled.
    """

    interval_s: float = 0.1
    overhead_per_sample_s: float = 0.0
    tool_instructions_per_sample: float = 0.0
    multiplex: Optional[MultiplexSchedule] = None
    jitter_rel: float = 0.0

    def __post_init__(self):
        check_positive("interval_s", self.interval_s)
        if self.overhead_per_sample_s < 0:
            raise ValueError("overhead_per_sample_s must be >= 0")
        if self.tool_instructions_per_sample < 0:
            raise ValueError("tool_instructions_per_sample must be >= 0")
        check_fraction("jitter_rel", self.jitter_rel)

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall time stolen by the tool at this interval."""
        return self.overhead_per_sample_s / (self.overhead_per_sample_s + self.interval_s)


@dataclass(frozen=True)
class PerfReading:
    """One sampling interval's estimated counters."""

    sample: CounterSample
    t_start_s: float
    t_end_s: float
    overhead_fraction: float


class PerfStat:
    """Periodic counter sampler over a :class:`MeasurableApp`."""

    def __init__(self, config: PerfStatConfig, rng: Optional[RngStream] = None):
        self.config = config
        self.rng = rng if rng is not None else RngStream(0, ("perfstat",))
        self._t = 0.0  # running clock across standalone sample() calls

    def sample(self, app: MeasurableApp) -> PerfReading:
        """Take one standalone interval reading (advances the app).

        The unit a closed-loop controller consumes; :meth:`measure` is
        the batch loop over a fixed duration.  Successive calls
        accumulate an internal clock, including the tool overhead.
        """
        cfg = self.config
        sample = self._measure_interval(app)
        start = self._t
        self._t = start + cfg.interval_s + cfg.overhead_per_sample_s
        return PerfReading(
            sample=sample,
            t_start_s=start,
            t_end_s=self._t,
            overhead_fraction=cfg.overhead_fraction,
        )

    def measure(self, app: MeasurableApp, duration_s: float) -> List[PerfReading]:
        """Sample ``app`` for ``duration_s`` of wall time.

        The tool's overhead is charged against the duration: with a
        heavy overhead fewer productive intervals fit, exactly as a real
        monitoring loop would starve the application.
        """
        check_positive("duration_s", duration_s)
        cfg = self.config
        readings: List[PerfReading] = []
        now = 0.0
        while now + cfg.interval_s <= duration_s + 1e-12:
            sample = self._measure_interval(app)
            end = now + cfg.interval_s + cfg.overhead_per_sample_s
            readings.append(
                PerfReading(
                    sample=sample,
                    t_start_s=now,
                    t_end_s=end,
                    overhead_fraction=cfg.overhead_fraction,
                )
            )
            now = end
        if not readings:
            raise ValueError(
                f"duration {duration_s}s is shorter than one interval ({cfg.interval_s}s)"
            )
        return readings

    def _measure_interval(self, app: MeasurableApp) -> CounterSample:
        cfg = self.config
        if cfg.multiplex is None:
            exact = app.advance(cfg.interval_s)
            estimated = dict(exact.events)
            if cfg.jitter_rel > 0:
                estimated = {
                    k: self.rng.jitter(v, cfg.jitter_rel) for k, v in estimated.items()
                }
        else:
            n_sub = cfg.multiplex.n_groups
            subs = []
            sub_samples = []
            for _ in range(n_sub):
                s = app.advance(cfg.interval_s / n_sub)
                sub_samples.append(s)
                subs.append(dict(s.events))
            estimated = cfg.multiplex.estimate(
                subs, rng=self.rng if cfg.jitter_rel > 0 else None, jitter_rel=cfg.jitter_rel
            )
            exact = _merge_samples(sub_samples)
            # Events outside the schedule pass through exactly.
            for name, value in exact.events.items():
                estimated.setdefault(name, value)
        sample = exact.with_events(estimated)
        if cfg.tool_instructions_per_sample > 0:
            sample = self._pollute(sample)
        return sample

    def _pollute(self, sample: CounterSample) -> CounterSample:
        """Add the tool's own instructions to the interval counters."""
        n = self.config.tool_instructions_per_sample
        extra = {"INSTRUCTIONS": sample.count("INSTRUCTIONS") + n}
        for event, weight in _TOOL_EVENT_WEIGHTS.items():
            extra[event] = sample.count(event) + n * weight
        # The tool burns cycles at roughly IPC 1.
        extra["CYCLES"] = sample.count("CYCLES") + n
        return sample.with_events(extra)


def _merge_samples(samples: List[CounterSample]) -> CounterSample:
    """Sum event counts and times across consecutive sub-samples."""
    if not samples:
        raise ValueError("cannot merge zero samples")
    base = samples[0]
    events = {k: 0.0 for k in base.events}
    wall = 0.0
    cpu = 0.0
    for s in samples:
        for k, v in s.events.items():
            events[k] = events.get(k, 0.0) + v
        wall += s.wall_time_s
        cpu += s.avg_thread_cpu_s
    return CounterSample(
        arch=base.arch,
        smt_level=base.smt_level,
        events=events,
        wall_time_s=wall,
        avg_thread_cpu_s=cpu,
        n_software_threads=base.n_software_threads,
    )
