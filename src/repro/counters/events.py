"""Performance-monitoring event definitions.

Events are named with canonical architecture-neutral identifiers; each
:class:`~repro.arch.machine.Architecture` maps its native mnemonic
(e.g. POWER7's ``PM_DISP_CLB_HELD_RES`` or Nehalem's
``RAT_STALLS:rob_read_port``) onto the canonical dispatch-held event.

The set below covers everything the paper's evaluation reads:

* the SMTsm inputs — per-class/per-port issue counts, dispatch-held
  cycles, run cycles;
* the naive predictors of Fig. 2 — L1 misses, branch mispredictions,
  instructions (for CPI), VSU instruction fraction;
* general accounting — completed instructions, L2/L3 misses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.arch.classes import CLASS_ORDER
from repro.arch.machine import Architecture


class EventDomain(enum.Enum):
    """How an event accumulates."""

    CYCLES = "cycles"            # counts processor cycles
    INSTRUCTIONS = "instructions"  # counts instructions (or micro-ops)
    EVENTS = "events"            # counts discrete events (misses, flushes)


@dataclass(frozen=True)
class Event:
    """A named countable hardware event."""

    name: str
    domain: EventDomain
    description: str

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"event name must be an identifier, got {self.name!r}")


def _ev(name: str, domain: EventDomain, desc: str) -> Event:
    return Event(name, domain, desc)


#: Canonical events every simulated PMU exposes.
CANONICAL_EVENTS: Tuple[Event, ...] = (
    _ev("CYCLES", EventDomain.CYCLES, "run cycles while the context was active"),
    _ev("INSTRUCTIONS", EventDomain.INSTRUCTIONS, "completed instructions"),
    _ev("DISP_HELD_RES", EventDomain.CYCLES,
        "cycles dispatch was held for lack of resources "
        "(POWER7 PM_DISP_CLB_HELD_RES / Nehalem RAT_STALLS:rob_read_port)"),
    _ev("BR_CMPL", EventDomain.INSTRUCTIONS, "completed branch instructions"),
    _ev("BR_MISPRED", EventDomain.EVENTS, "mispredicted branches"),
    _ev("LD_CMPL", EventDomain.INSTRUCTIONS, "completed load instructions"),
    _ev("ST_CMPL", EventDomain.INSTRUCTIONS, "completed store instructions"),
    _ev("FX_CMPL", EventDomain.INSTRUCTIONS, "completed fixed-point instructions"),
    _ev("VS_CMPL", EventDomain.INSTRUCTIONS, "completed vector-scalar (FP/SIMD) instructions"),
    _ev("L1_DMISS", EventDomain.EVENTS, "L1 data-cache misses"),
    _ev("L2_MISS", EventDomain.EVENTS, "L2 cache misses"),
    _ev("L3_MISS", EventDomain.EVENTS, "L3 cache misses"),
)

#: Events holding per-class issue counts, in CLASS_ORDER; these back the
#: POWER7-style class-space metric fractions.
CLASS_COUNT_EVENTS: Tuple[str, ...] = ("LD_CMPL", "ST_CMPL", "BR_CMPL", "FX_CMPL", "VS_CMPL")

assert len(CLASS_COUNT_EVENTS) == len(CLASS_ORDER)


def port_issue_event(port_name: str) -> str:
    """The canonical name of the per-port issue counter (e.g. Nehalem's
    ``UOPS_EXECUTED.PORTx``)."""
    return f"PORT_ISSUE_{port_name}"


def arch_event_names(arch: Architecture) -> Tuple[str, ...]:
    """All canonical event names the PMU of ``arch`` exposes."""
    names = [e.name for e in CANONICAL_EVENTS]
    names.extend(port_issue_event(p) for p in arch.topology.port_names)
    return tuple(names)
