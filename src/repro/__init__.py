"""Reproduction of "An SMT-Selection Metric to Improve Multithreaded
Applications' Performance" (Funston et al., IPDPS 2012).

The package implements the paper's SMT-selection metric (SMTsm) and the
full substrate its evaluation ran on: an SMT chip-multiprocessor
simulator, a hardware-performance-counter stack, an OS layer, and the
Table I benchmark catalog.  Top-level convenience re-exports cover the
quickstart path; see the subpackages for the rest:

``repro.arch``, ``repro.sim``, ``repro.counters``, ``repro.simos``,
``repro.workloads``, ``repro.core``, ``repro.experiments``,
``repro.analysis``, ``repro.obs``, ``repro.api``, ``repro.serve``,
``repro.fleet``.

For application code, prefer the stable facade in :mod:`repro.api`
(``Session``/``predict``/``sweep``/``score_counters``/
``simulate_fleet``, re-exported here); the prediction service in
:mod:`repro.serve` and the fleet simulator in :mod:`repro.fleet` are
built on the same substrate.
"""

from repro.api import (
    FleetConfig,
    FleetResult,
    Policy,
    Session,
    Strategy,
    list_policies,
    predict,
    score_counters,
    simulate_fleet,
    sweep,
)
from repro.arch import generic_core, get_architecture, nehalem, power7
from repro.core import SmtPredictor, smtsm, smtsm_from_run
from repro.obs import configure_telemetry, get_tracer
from repro.sim.engine import RunSpec, simulate_many, simulate_run
from repro.sim.results import speedup
from repro.simos import SystemSpec
from repro.workloads import all_workloads, get_workload

__version__ = "1.2.0"

__all__ = [
    "Session",
    "predict",
    "sweep",
    "score_counters",
    "simulate_fleet",
    "FleetConfig",
    "FleetResult",
    "Policy",
    "Strategy",
    "list_policies",
    "power7",
    "nehalem",
    "generic_core",
    "get_architecture",
    "SmtPredictor",
    "smtsm",
    "smtsm_from_run",
    "RunSpec",
    "simulate_run",
    "simulate_many",
    "speedup",
    "SystemSpec",
    "all_workloads",
    "get_workload",
    "get_tracer",
    "configure_telemetry",
    "__version__",
]
