"""Correlation statistics (no SciPy dependency in the library core).

Used by the Fig. 2 experiment to quantify "there is no correlation
between any of the four metrics and the SMT speedup", and by the
engine-agreement ablation.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def _as_xy(x: Sequence[float], y: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(list(x), dtype=float)
    ya = np.asarray(list(y), dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(f"x and y must be equal-length 1-d, got {xa.shape} vs {ya.shape}")
    if xa.size < 3:
        raise ValueError("need at least 3 points for a correlation")
    return xa, ya


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson linear correlation coefficient."""
    xa, ya = _as_xy(x, y)
    sx = xa.std()
    sy = ya.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.corrcoef(xa, ya)[0, 1])


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over ranks, average ties)."""
    xa, ya = _as_xy(x, y)
    return pearson(_rank(xa), _rank(ya))


def _rank(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(values)
    ranks[order] = np.arange(1, len(values) + 1, dtype=float)
    # Average ranks of exact ties.
    for v in np.unique(values):
        mask = values == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def correlation_report(series: Dict[str, Tuple[Sequence[float], Sequence[float]]]
                       ) -> Dict[str, Dict[str, float]]:
    """Pearson+Spearman for several named (x, y) series at once."""
    return {
        name: {"pearson": pearson(x, y), "spearman": spearman(x, y)}
        for name, (x, y) in series.items()
    }
