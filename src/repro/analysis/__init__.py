"""Statistical analysis of experiment results."""

from repro.analysis.correlation import pearson, spearman, correlation_report
from repro.analysis.success import SuccessSummary, success_summary

__all__ = [
    "pearson",
    "spearman",
    "correlation_report",
    "SuccessSummary",
    "success_summary",
]
