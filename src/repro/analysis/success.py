"""Success-rate accounting for SMT-preference prediction.

Computes the numbers the paper headlines: prediction success per system
(93% POWER7, 86% Nehalem, 90% overall) and the breakdown of where the
misses sit relative to the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.predictor import Observation, SmtPredictor


@dataclass(frozen=True)
class SuccessSummary:
    """Prediction outcome over one benchmark set."""

    threshold: float
    n_total: int
    n_correct: int
    left_misses: Tuple[str, ...]   # metric <= threshold but the lower level won
    right_misses: Tuple[str, ...]  # metric > threshold but the higher level won

    @property
    def success_rate(self) -> float:
        return self.n_correct / self.n_total

    @property
    def misses(self) -> Tuple[str, ...]:
        return self.left_misses + self.right_misses


def success_summary(predictor: SmtPredictor,
                    observations: Sequence[Observation]) -> SuccessSummary:
    obs = list(observations)
    if not obs:
        raise ValueError("cannot summarize zero observations")
    left: List[str] = []
    right: List[str] = []
    for o in obs:
        predicted_higher = predictor.predicts_higher(o.metric)
        if predicted_higher == o.prefers_higher:
            continue
        if predicted_higher:
            left.append(o.name)
        else:
            right.append(o.name)
    n_missed = len(left) + len(right)
    return SuccessSummary(
        threshold=predictor.threshold,
        n_total=len(obs),
        n_correct=len(obs) - n_missed,
        left_misses=tuple(left),
        right_misses=tuple(right),
    )


def pooled_success_rate(summaries: Sequence[SuccessSummary]) -> float:
    """Overall rate across systems (the paper's 90% headline)."""
    if not summaries:
        raise ValueError("need at least one summary")
    total = sum(s.n_total for s in summaries)
    correct = sum(s.n_correct for s in summaries)
    return correct / total
