"""`FaultyApp`: a measurable app whose counter stream lies.

Composes with the online stack — :class:`~repro.sim.online.SteadyApp`
underneath, :class:`~repro.counters.perfstat.PerfStat` on top::

    app    = SteadyApp(system, 4, workload, seed=7)
    faulty = FaultyApp(app, noise_profile(0.3), seed=7)
    perf   = PerfStat(PerfStatConfig(interval_s=0.05))
    readings = perf.measure(faulty, 1.0)   # corrupted, reproducibly

``advance`` always runs the inner application for the requested wall
time (the program makes progress whether or not the measurement is
usable) and then corrupts the *returned sample* according to the
:class:`~repro.faults.model.FaultConfig`.  Every injection is counted
in :attr:`FaultyApp.injections` and, when telemetry is on, in
``faults.*`` obs counters.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.counters.groups import MultiplexSchedule
from repro.counters.pmu import CounterSample
from repro.faults.model import FaultConfig
from repro.obs import get_tracer
from repro.util.rng import RngStream

#: Events :class:`CounterSample` refuses to exist without; dropout never
#: removes them (on real hardware cycles/instructions live on fixed or
#: always-programmed counters).
PROTECTED_EVENTS = ("CYCLES", "INSTRUCTIONS", "DISP_HELD_RES")


class FaultyApp:
    """Wrap a ``MeasurableApp`` and corrupt its counter samples.

    ``schedule`` names the multiplex groups that dropout removes as a
    unit; when omitted it is derived from the sample's architecture via
    :func:`repro.counters.arch_groups.groups_for` on first use.
    """

    def __init__(
        self,
        inner,
        config: FaultConfig,
        *,
        seed: int = 0,
        rng: Optional[RngStream] = None,
        schedule: Optional[MultiplexSchedule] = None,
    ):
        self.inner = inner
        self.config = config
        root = rng if rng is not None else RngStream(seed, ("faults",))
        self._noise = root.child("noise")
        self._tail = root.child("tail")
        self._drop = root.child("drop")
        self._stale = root.child("stale")
        self._schedule = schedule
        self._last: Optional[CounterSample] = None
        self._last_phase: Optional[str] = getattr(inner, "phase_name", None)
        self._spike_left = 0
        self.injections: Dict[str, int] = {}

    # -- passthroughs so FaultyApp still looks like the wrapped app ----
    @property
    def phase_name(self) -> Optional[str]:
        return getattr(self.inner, "phase_name", None)

    def switch_level(self, level: int) -> None:
        """Forward an SMT switch to the wrapped app (if it supports one)."""
        self.inner.switch_level(level)

    # -- fault plumbing ------------------------------------------------
    def _record(self, kind: str) -> None:
        self.injections[kind] = self.injections.get(kind, 0) + 1
        get_tracer().add(f"faults.{kind}")

    def _groups(self, sample: CounterSample) -> MultiplexSchedule:
        if self._schedule is None:
            from repro.counters.arch_groups import groups_for

            self._schedule = groups_for(sample.arch)
        return self._schedule

    def advance(self, wall_seconds: float) -> CounterSample:
        """Run the inner app for ``wall_seconds``; return a corrupted sample."""
        sample = self.inner.advance(wall_seconds)
        cfg = self.config
        if not cfg.any_faults:
            self._last = sample
            return sample

        phase = getattr(self.inner, "phase_name", None)
        if phase != self._last_phase:
            self._last_phase = phase
            if cfg.phase_spike_mult > 1.0 and self._last is not None:
                self._spike_left = cfg.phase_spike_intervals

        events = dict(sample.events)

        if cfg.noise_rel > 0:
            self._record("noise")
            events = {
                name: self._noise.jitter(value, cfg.noise_rel)
                for name, value in events.items()
            }

        if cfg.heavy_tail_prob > 0 and self._tail.random() < cfg.heavy_tail_prob:
            # One wildly-wrong counter: a multiplicative log-normal
            # glitch on a single randomly-chosen event.
            names = sorted(events)
            victim = names[int(self._tail.integers(0, len(names)))]
            sigma = math.log(cfg.heavy_tail_scale)
            factor = math.exp(abs(float(self._tail.normal(0.0, sigma)))) if sigma > 0 else 1.0
            if factor > 1.0:
                self._record("heavy_tail")
                events[victim] = events[victim] * factor

        if self._spike_left > 0:
            self._spike_left -= 1
            self._record("phase_spike")
            for name in ("DISP_HELD_RES", "BR_MISPRED"):
                if name in events:
                    events[name] = events[name] * cfg.phase_spike_mult

        if cfg.dropout_prob > 0 and self._drop.random() < cfg.dropout_prob:
            groups = self._groups(sample).groups
            group = groups[int(self._drop.integers(0, len(groups)))]
            removed = [
                name for name in group.events
                if name in events and name not in PROTECTED_EVENTS
            ]
            if removed:
                self._record("dropout")
                for name in removed:
                    del events[name]

        if cfg.saturation_count is not None:
            cap = cfg.saturation_count
            clipped = {k: v for k, v in events.items() if v > cap}
            if clipped:
                self._record("saturated")
                for name in clipped:
                    events[name] = cap

        corrupted = CounterSample(
            arch=sample.arch,
            smt_level=sample.smt_level,
            events=events,
            wall_time_s=sample.wall_time_s,
            avg_thread_cpu_s=sample.avg_thread_cpu_s,
            n_software_threads=sample.n_software_threads,
        )

        if (
            cfg.stale_prob > 0
            and self._last is not None
            and self._stale.random() < cfg.stale_prob
        ):
            # Dropped read: the caller sees the previous interval again.
            self._record("stale")
            return self._last

        self._last = corrupted
        return corrupted
