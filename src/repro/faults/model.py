"""The fault model: what can go wrong with an online counter stream.

The paper's metric is only useful if it can be computed *online*, and
online counter streams are never clean.  :class:`FaultConfig` names the
failure axes a real PMU sampling stack exhibits and gives each a
deterministic, seeded knob:

* **Gaussian sampling noise** (``noise_rel``) — per-event multiplicative
  jitter from interval misalignment and counter read skew;
* **heavy-tailed glitches** (``heavy_tail_prob`` / ``heavy_tail_scale``)
  — occasional wildly-wrong single counters (interrupt storms, SMIs,
  context-switch attribution errors);
* **multiplex-group dropout** (``dropout_prob``) — a rotation slot lost
  entirely, so every event of one counter group goes missing from the
  interval (the kernel reports ``<not counted>``);
* **stale intervals** (``stale_prob``) — a read that returns the
  previous interval's values again (dropped sample, delayed reader);
* **counter saturation** (``saturation_count``) — narrow hardware
  counters clipping at their maximum;
* **phase-transition spikes** (``phase_spike_mult`` /
  ``phase_spike_intervals``) — transient dispatch-stall and
  branch-miss bursts while the pipeline re-warms after a phase change.

Every fault draws from :class:`repro.util.rng.RngStream` children, so a
given ``(seed, config)`` corrupts a stream identically run-to-run —
the property the robustness ablation and the fault-injection tests
build on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class FaultConfig:
    """Per-interval fault probabilities and magnitudes (all off by default)."""

    noise_rel: float = 0.0
    heavy_tail_prob: float = 0.0
    heavy_tail_scale: float = 3.0
    dropout_prob: float = 0.0
    stale_prob: float = 0.0
    saturation_count: Optional[float] = None
    phase_spike_mult: float = 1.0
    phase_spike_intervals: int = 1

    def __post_init__(self):
        check_fraction("noise_rel", self.noise_rel)
        check_fraction("heavy_tail_prob", self.heavy_tail_prob)
        check_fraction("dropout_prob", self.dropout_prob)
        check_fraction("stale_prob", self.stale_prob)
        if self.heavy_tail_scale < 1.0:
            raise ValueError(
                f"heavy_tail_scale must be >= 1, got {self.heavy_tail_scale}"
            )
        if self.saturation_count is not None:
            check_positive("saturation_count", self.saturation_count)
        if self.phase_spike_mult < 1.0:
            raise ValueError(
                f"phase_spike_mult must be >= 1, got {self.phase_spike_mult}"
            )
        if self.phase_spike_intervals < 1:
            raise ValueError(
                f"phase_spike_intervals must be >= 1, got {self.phase_spike_intervals}"
            )

    @property
    def any_faults(self) -> bool:
        """Whether this config can corrupt anything at all."""
        return (
            self.noise_rel > 0
            or self.heavy_tail_prob > 0
            or self.dropout_prob > 0
            or self.stale_prob > 0
            or self.saturation_count is not None
            or self.phase_spike_mult > 1.0
        )

    def scaled(self, factor: float) -> "FaultConfig":
        """A copy with every probability/noise knob scaled by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return replace(
            self,
            noise_rel=min(1.0, self.noise_rel * factor),
            heavy_tail_prob=min(1.0, self.heavy_tail_prob * factor),
            dropout_prob=min(1.0, self.dropout_prob * factor),
            stale_prob=min(1.0, self.stale_prob * factor),
        )


def noise_profile(severity: float) -> FaultConfig:
    """The documented composite fault mix at a severity in ``[0, 1]``.

    This is the knob the robustness ablation sweeps: one scalar that
    scales every fault axis together, anchored so that ``severity=1``
    is a badly-behaved production box (40% relative noise, one glitched
    counter roughly every two intervals, one dropped multiplex group
    roughly every two) and ``severity=0`` is a clean stream.  The
    exact mix is documented in ``docs/robustness.md``; change it there
    and here together.
    """
    check_fraction("severity", severity)
    if severity == 0.0:
        return FaultConfig()
    return FaultConfig(
        noise_rel=0.40 * severity,
        heavy_tail_prob=0.50 * severity,
        heavy_tail_scale=1.0 + 4.0 * severity,
        dropout_prob=0.70 * severity,
        stale_prob=0.10 * severity,
        phase_spike_mult=1.0 + 3.0 * severity,
        phase_spike_intervals=1,
    )
