"""Worker-process fault injection for the resilient sweep runner.

:class:`WorkerFaultPlan` is a picklable callable the runner threads
through to its worker processes; tests use it to crash or stall chosen
tasks on demand and assert that
:func:`repro.experiments.runner._simulate_parallel` recovers.  Faults
are keyed on ``(task index, attempt)``, so "crash once, then succeed"
needs no cross-process shared state: the retry resubmits with a higher
attempt number and the plan stands down.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Tuple


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a worker process by a :class:`WorkerFaultPlan`."""


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic crash/hang schedule for parallel sweep tasks.

    ``fault_attempts`` bounds how many attempts of a task misbehave
    (the default 1 means: fail the first attempt, succeed on retry).
    ``hard`` crashes kill the worker process outright (``os._exit``)
    instead of raising, modelling a segfault rather than an exception;
    the runner can only detect those through its per-task timeout.
    """

    crash_indices: Tuple[int, ...] = ()
    hang_indices: Tuple[int, ...] = ()
    hang_s: float = 3600.0
    fault_attempts: int = 1
    hard: bool = False

    def __post_init__(self):
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be > 0, got {self.hang_s}")
        if self.fault_attempts < 1:
            raise ValueError(
                f"fault_attempts must be >= 1, got {self.fault_attempts}"
            )

    def __call__(self, index: int, spec, attempt: int) -> None:
        if attempt >= self.fault_attempts:
            return
        if index in self.hang_indices:
            time.sleep(self.hang_s)
        if index in self.crash_indices:
            if self.hard:
                os._exit(23)  # pragma: no cover - kills the worker process
            raise InjectedWorkerCrash(
                f"injected crash for task {index} (attempt {attempt})"
            )
