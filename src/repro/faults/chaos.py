"""Serving-tier chaos injection: what can go wrong with a worker fleet.

:class:`FaultConfig` (``repro.faults.model``) corrupts the *signal* —
the counter stream the SMT decision is computed from.  This module
corrupts the *plumbing* that delivers those decisions at fleet scale:
the worker processes and the wire protocol of the ``repro.serve``
prediction service.  The two compose — a chaos-injected server can run
sessions whose measurements are themselves fault-injected — and follow
the same design rules: every fault axis has a deterministic, seeded
knob, and one scalar severity sweeps them all together.

The axes (each a per-*job* probability, drawn once per dispatched
batch on the worker about to run it):

* **hangs** (``hang_prob`` / ``hang_s``) — the worker goes silent but
  stays alive: the process keeps existing, the pipe stays open, and
  nothing ever comes back.  Models a deadlocked solver, a lost GIL, an
  NFS stall.  Only a liveness watchdog can see these.
* **crashes** (``crash_prob``) — the worker dies mid-batch with
  ``os._exit``, the serving analogue of a segfault or an OOM kill.
  The parent sees EOF on the pipe.
* **slow workers** (``slow_prob`` / ``slow_s``) — per-job latency
  inflation (uniform in ``[slow_s, 2*slow_s]``): a thermally throttled
  or noisy-neighbour box.  Jobs still succeed, tails grow.
* **response corruption** (``corrupt_prob``) — the worker answers with
  a mangled payload (an element dropped, or the body replaced by
  junk), modelling a torn write or a bad frame.  The dispatcher's
  result-shape validation turns these into retryable dispatch faults.

Activation: pass a :class:`ChaosConfig` as ``ServeConfig.chaos``, or
set ``REPRO_SERVE_CHAOS`` (``severity=0.4`` or explicit
``hang=0.02,crash=0.04,slow=0.2,corrupt=0.1,seed=7``; the named preset
``worker_hang`` is hang-only chaos for the CI smoke).  Chaos only
applies in worker-pool mode (``workers > 1``) — the whole point is
exercising the supervision plane around the pool.

Determinism: every draw comes from a stream seeded on ``(seed, worker
index, respawn generation)``, so a given ``(seed, config, traffic)``
misbehaves identically run to run — the property the serving-chaos
phase of ``scripts/bench_robustness.py`` builds on — while a respawned
worker draws a fresh schedule instead of replaying its crash.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.util.config import env_str
from repro.util.validation import check_fraction, check_positive

__all__ = [
    "ChaosConfig",
    "ChaosPlan",
    "ENV_SERVE_CHAOS",
    "chaos_profile",
]

#: Environment variable holding a chaos spec for ``repro serve``.
ENV_SERVE_CHAOS = "REPRO_SERVE_CHAOS"

#: Named presets accepted by :meth:`ChaosConfig.parse` (and therefore by
#: ``REPRO_SERVE_CHAOS`` and ``repro serve --chaos``).
_PRESETS = {
    # Hang-only chaos: the CI chaos-smoke preset.  Aggressive enough
    # that a short smoke run sees several hangs, short enough that the
    # watchdog recovers each one in well under a second.
    "worker_hang": {"hang": 0.15, "hang_s": 30.0},
}


@dataclass(frozen=True)
class ChaosConfig:
    """Per-job fault probabilities for the serving tier (all off by default)."""

    hang_prob: float = 0.0
    hang_s: float = 3600.0
    crash_prob: float = 0.0
    slow_prob: float = 0.0
    slow_s: float = 0.05
    corrupt_prob: float = 0.0
    seed: int = 0

    def __post_init__(self):
        check_fraction("hang_prob", self.hang_prob)
        check_fraction("crash_prob", self.crash_prob)
        check_fraction("slow_prob", self.slow_prob)
        check_fraction("corrupt_prob", self.corrupt_prob)
        check_positive("hang_s", self.hang_s)
        check_positive("slow_s", self.slow_s)

    @property
    def any_chaos(self) -> bool:
        """Whether this config can misbehave at all."""
        return (
            self.hang_prob > 0
            or self.crash_prob > 0
            or self.slow_prob > 0
            or self.corrupt_prob > 0
        )

    def scaled(self, factor: float) -> "ChaosConfig":
        """A copy with every probability scaled by ``factor`` (capped at 1)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return replace(
            self,
            hang_prob=min(1.0, self.hang_prob * factor),
            crash_prob=min(1.0, self.crash_prob * factor),
            slow_prob=min(1.0, self.slow_prob * factor),
            corrupt_prob=min(1.0, self.corrupt_prob * factor),
        )

    # -- serialization (ServeConfig carries these across spawn) ---------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hang_prob": self.hang_prob,
            "hang_s": self.hang_s,
            "crash_prob": self.crash_prob,
            "slow_prob": self.slow_prob,
            "slow_s": self.slow_s,
            "corrupt_prob": self.corrupt_prob,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosConfig":
        return cls(**data)

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """A config from a compact spec string.

        Accepts a named preset (``worker_hang``), a single-knob
        composite (``severity=0.4``), or comma-separated assignments
        (``hang=0.02,crash=0.04,slow=0.2,corrupt=0.1,seed=7``).  The
        short names map onto the ``*_prob`` fields; ``hang_s`` /
        ``slow_s`` are accepted verbatim.
        """
        spec = spec.strip()
        if not spec:
            return cls()
        if spec in _PRESETS:
            return cls.parse(",".join(
                f"{k}={v}" for k, v in _PRESETS[spec].items()
            ))
        aliases = {
            "hang": "hang_prob", "crash": "crash_prob",
            "slow": "slow_prob", "corrupt": "corrupt_prob",
        }
        kwargs: Dict[str, Any] = {}
        severity: Optional[float] = None
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad chaos spec item {part!r} (expected key=value, "
                    f"severity=S, or a preset: {', '.join(sorted(_PRESETS))})"
                )
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "severity":
                severity = float(value)
                continue
            field_name = aliases.get(key, key)
            if field_name == "seed":
                kwargs["seed"] = int(value)
            elif field_name in ("hang_prob", "hang_s", "crash_prob",
                                "slow_prob", "slow_s", "corrupt_prob"):
                kwargs[field_name] = float(value)
            else:
                raise ValueError(f"unknown chaos knob {key!r}")
        if severity is not None:
            base = chaos_profile(severity)
            # Explicit assignments override the composite.
            return replace(base, **kwargs)
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["ChaosConfig"]:
        """The config named by ``REPRO_SERVE_CHAOS``, or ``None``."""
        spec = env_str(ENV_SERVE_CHAOS)
        if not spec:
            return None
        config = cls.parse(spec)
        return config if config.any_chaos else None


def chaos_profile(severity: float) -> ChaosConfig:
    """The documented composite serving-fault mix at a severity in ``[0, 1]``.

    The serving analogue of :func:`repro.faults.noise_profile`: one
    scalar that scales every chaos axis together, anchored so that
    ``severity=1`` is a fleet having a very bad day — one job in ten
    crashes its worker outright, one in twenty hangs it, half the jobs
    run slow, a quarter of responses arrive mangled — and
    ``severity=0`` is a healthy fleet.  The exact mix is documented in
    ``docs/robustness.md``; change it there and here together.
    """
    check_fraction("severity", severity)
    if severity == 0.0:
        return ChaosConfig()
    return ChaosConfig(
        hang_prob=0.05 * severity,
        hang_s=3600.0,
        crash_prob=0.10 * severity,
        slow_prob=0.50 * severity,
        slow_s=0.05,
        corrupt_prob=0.25 * severity,
    )


class ChaosPlan:
    """The worker-side executor of a :class:`ChaosConfig`.

    Constructed inside each worker process (it is *not* shipped across
    the pipe — only the frozen config is), with an RNG stream derived
    from ``config.seed``, the worker index, and the worker's respawn
    ``generation``, so every worker misbehaves on its own deterministic
    schedule.  Mixing in the generation matters: without it a respawned
    worker replays its stream from the top, and a worker whose *first*
    draw is a crash becomes a poison pill — it dies on the first job
    after every respawn, forever.  With it, each incarnation draws a
    fresh (but still seeded) schedule.

    ``before_job()`` runs before the handler and may hang the worker
    (a long sleep on the request thread — the pipe stays open, nothing
    answers), crash it (``os._exit``), or just make it slow.
    ``maybe_corrupt(results)`` runs after and may mangle the response
    body.  Telemetry for the survivable faults (``serve.chaos.slow`` /
    ``serve.chaos.corrupt``) ships back with the response's counter
    delta; hangs and crashes never answer, so the parent observes them
    through the watchdog/restart counters instead.
    """

    def __init__(self, config: ChaosConfig, worker_index: int,
                 generation: int = 0):
        self.config = config
        # One stream per (seed, worker, incarnation).  String seeds are
        # hashed with sha512, stable across runs and python versions
        # (unlike hash(), which is salted).
        self._rng = random.Random(
            f"{config.seed}:{worker_index}:{generation}"
        )

    def before_job(self) -> None:
        """Possibly hang, crash, or slow down the current job."""
        config = self.config
        draw = self._rng.random()
        if draw < config.hang_prob:
            import time
            time.sleep(config.hang_s)   # pragma: no cover - watchdog kills us
            return
        draw -= config.hang_prob
        if draw < config.crash_prob:
            os._exit(41)                # pragma: no cover - kills the worker
        if self._rng.random() < config.slow_prob:
            import time

            from repro.obs import get_tracer

            get_tracer().add("serve.chaos.slow")
            time.sleep(config.slow_s * (1.0 + self._rng.random()))

    def maybe_corrupt(self, results: List[Any]) -> List[Any]:
        """Possibly return a mangled copy of ``results``."""
        if self._rng.random() >= self.config.corrupt_prob:
            return results
        from repro.obs import get_tracer

        get_tracer().add("serve.chaos.corrupt")
        if results and self._rng.random() < 0.5:
            # Drop one element: a short read / torn frame.
            victim = self._rng.randrange(len(results))
            return [r for i, r in enumerate(results) if i != victim]
        # Replace the body with junk of the right length but the wrong
        # shape (handlers return dicts; a bare string is never valid).
        return ["\x00chaos\x00" for _ in results]
