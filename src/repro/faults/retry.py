"""Generic bounded-retry policy shared by the recovery paths.

:class:`RetryPolicy` started life inside the resilient parallel sweep
runner (``repro.experiments.runner``); the prediction service
(``repro.serve``) reuses the same knobs for its worker dispatch, so the
policy now lives with the rest of the fault machinery.  The runner
re-exports it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for a bounded-retry dispatch loop.

    ``task_timeout_s`` bounds one attempt of one task; a worker that
    hangs (or dies without reporting — a hard crash leaves its task
    forever pending) is detected through it.  Failed attempts are
    retried up to ``max_retries`` times with exponential backoff
    (``backoff_s * backoff_mult**attempt``); what happens when a task
    exhausts its retries is the caller's decision — the sweep runner
    falls back to authoritative in-process execution, the prediction
    service fails the affected requests with a retryable error.
    """

    task_timeout_s: float = 120.0
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_mult: float = 2.0

    def __post_init__(self):
        if self.task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be > 0, got {self.task_timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_mult < 1.0:
            raise ValueError(f"backoff_mult must be >= 1, got {self.backoff_mult}")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_mult ** (attempt - 1)
