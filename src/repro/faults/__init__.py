"""Deterministic fault injection for the online-measurement stack.

Two halves:

* **counter faults** — :class:`FaultConfig` (the fault model) and
  :class:`FaultyApp` (a ``MeasurableApp`` wrapper that corrupts the
  samples of whatever it wraps, reproducibly, from seeded RNG
  streams).  :func:`noise_profile` is the one-knob composite severity
  the robustness ablation sweeps.
* **worker faults** — :class:`WorkerFaultPlan` crashes or stalls chosen
  tasks inside the parallel sweep runner's worker processes, so the
  recovery path (retry, backoff, serial fallback) is testable on
  demand.
* **serving chaos** — :class:`ChaosConfig` injects worker hangs, hard
  crashes, slow jobs and response corruption into the ``repro.serve``
  worker pool (:class:`ChaosPlan` executes it inside each worker);
  :func:`chaos_profile` is the serving analogue of
  :func:`noise_profile`, one scalar severity over every chaos axis.

:class:`RetryPolicy` is the shared bounded-retry policy those recovery
paths (the resilient sweep runner, the ``repro.serve`` worker dispatch)
are configured with.

See ``docs/robustness.md`` for the fault model and tuning guidance.
"""

from repro.faults.app import PROTECTED_EVENTS, FaultyApp
from repro.faults.chaos import (
    ENV_SERVE_CHAOS,
    ChaosConfig,
    ChaosPlan,
    chaos_profile,
)
from repro.faults.model import FaultConfig, noise_profile
from repro.faults.retry import RetryPolicy
from repro.faults.workers import InjectedWorkerCrash, WorkerFaultPlan

__all__ = [
    "ChaosConfig",
    "ChaosPlan",
    "chaos_profile",
    "ENV_SERVE_CHAOS",
    "FaultConfig",
    "noise_profile",
    "FaultyApp",
    "PROTECTED_EVENTS",
    "InjectedWorkerCrash",
    "WorkerFaultPlan",
    "RetryPolicy",
]
