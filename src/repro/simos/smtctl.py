"""Runtime SMT-level control, after AIX's ``smtctl``.

"The SMT levels on POWER7 can be changed without rebooting the system
by running the smtctl command with privileged access" (paper §III-A).
The controller tracks the current level, enforces the architecture's
supported levels, and charges a switch cost — draining and re-placing
threads is not free, which matters to the online optimizer's decision
cadence (paper §V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.arch.machine import Architecture
from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class SmtSwitchRecord:
    """One executed SMT-level switch."""

    at_time_s: float
    from_level: int
    to_level: int
    cost_s: float


class SmtController:
    """Tracks and changes the system SMT level at run time."""

    def __init__(
        self,
        arch: Architecture,
        initial_level: Optional[int] = None,
        switch_cost_s: float = 0.005,
        allow_online_switch: bool = True,
    ):
        self.arch = arch
        self.switch_cost_s = check_nonnegative("switch_cost_s", switch_cost_s)
        # Paper §IV-B: "in all SMT-capable processors, the highest
        # SMT-level is always used as the default".
        self._level = arch.validate_smt_level(
            arch.max_smt if initial_level is None else initial_level
        )
        self.allow_online_switch = bool(allow_online_switch)
        self.history: List[SmtSwitchRecord] = []

    @property
    def level(self) -> int:
        return self._level

    def switch(self, new_level: int, at_time_s: float = 0.0) -> SmtSwitchRecord:
        """Change the SMT level, returning the switch record.

        Raises if online switching is disabled (the paper's Nehalem
        system required a BIOS change and reboot; SMT1 there is
        *simulated* by running one thread per core instead).
        """
        self.arch.validate_smt_level(new_level)
        if not self.allow_online_switch:
            raise RuntimeError(
                f"{self.arch.name} does not support online SMT switching; "
                "use one software thread per core to approximate lower levels"
            )
        if new_level == self._level:
            record = SmtSwitchRecord(at_time_s, self._level, new_level, 0.0)
        else:
            record = SmtSwitchRecord(at_time_s, self._level, new_level, self.switch_cost_s)
            self._level = new_level
        self.history.append(record)
        return record

    @property
    def total_switch_cost_s(self) -> float:
        return sum(r.cost_s for r in self.history)

    def n_switches(self) -> int:
        return sum(1 for r in self.history if r.from_level != r.to_level)
