"""System specification: an architecture instance plus chip count."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import Architecture


@dataclass(frozen=True)
class SystemSpec:
    """A machine as the OS sees it: chips x cores x SMT contexts.

    The paper's three configurations map to::

        SystemSpec(power7(), n_chips=1)   # 8-core POWER7 (Figs. 6-9)
        SystemSpec(power7(), n_chips=2)   # 16-core POWER7 (Figs. 13-15)
        SystemSpec(nehalem(), n_chips=1)  # quad-core Core i7 (Figs. 10, 12)
    """

    arch: Architecture
    n_chips: int = 1

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {self.n_chips}")

    @property
    def total_cores(self) -> int:
        return self.arch.cores_per_chip * self.n_chips

    def contexts_at(self, smt_level: int) -> int:
        """Hardware contexts available system-wide at ``smt_level``.

        This is also the software thread count the paper's protocol
        uses: "the number of software threads used is chosen to be the
        same as the number of available hardware threads" (§IV).
        """
        self.arch.validate_smt_level(smt_level)
        return self.total_cores * smt_level

    def mem_bandwidth_gbps(self) -> float:
        """Pooled DRAM bandwidth across chips."""
        return self.arch.caches.mem_bandwidth_gbps * self.n_chips

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SystemSpec({self.arch.name}, chips={self.n_chips}, cores={self.total_cores})"
