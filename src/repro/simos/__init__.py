"""Operating-system substrate.

Models the OS-level mechanisms the paper's metric depends on:

* thread placement onto chips/cores/hardware contexts
  (:mod:`repro.simos.scheduler`);
* synchronization behaviour — spin locks that burn branch-heavy cycles,
  blocking locks and I/O that put threads to sleep, and Amdahl serial
  sections (:mod:`repro.simos.sync`);
* wall-clock vs per-thread CPU time accounting, the source of the
  SMTsm's third factor (:mod:`repro.simos.timebase`);
* runtime SMT-level switching a la AIX ``smtctl``
  (:mod:`repro.simos.smtctl`).
"""

from repro.simos.system import SystemSpec
from repro.simos.sync import SyncProfile, NO_SYNC
from repro.simos.scheduler import Placement, place_threads
from repro.simos.timebase import TimeAccounting, account_run
from repro.simos.smtctl import SmtController, SmtSwitchRecord

__all__ = [
    "SystemSpec",
    "SyncProfile",
    "NO_SYNC",
    "Placement",
    "place_threads",
    "TimeAccounting",
    "account_run",
    "SmtController",
    "SmtSwitchRecord",
]
