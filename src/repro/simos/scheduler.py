"""Thread placement onto chips, cores and hardware contexts.

The dispatcher spreads runnable software threads breadth-first: across
chips, then across cores, then onto SMT contexts — the policy AIX and
Linux both approximate, and the one that makes "one thread per core"
behave like SMT1 even when a higher SMT level is enabled (the paper's
Nehalem protocol, §III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.simos.system import SystemSpec


@dataclass(frozen=True)
class Placement:
    """Result of placing ``n_threads`` at a given SMT level."""

    system: SystemSpec
    smt_level: int
    n_threads: int
    threads_per_core: Tuple[int, ...]    # one entry per core, chip-major order
    assignment: Tuple[int, ...] = ()     # thread index -> core index

    @property
    def occupied_cores(self) -> int:
        return sum(1 for t in self.threads_per_core if t > 0)

    def threads_on_core(self, core: int) -> Tuple[int, ...]:
        """Thread indices placed on ``core``, in placement order."""
        return tuple(t for t, c in enumerate(self.assignment) if c == core)

    def core_modes(self) -> Tuple[int, ...]:
        """Effective hardware SMT mode of each occupied core."""
        arch = self.system.arch
        return tuple(
            arch.effective_smt_mode(t) for t in self.threads_per_core if t > 0
        )

    def threads_per_chip(self) -> Tuple[int, ...]:
        per_chip = []
        cores = self.system.arch.cores_per_chip
        for chip in range(self.system.n_chips):
            per_chip.append(sum(self.threads_per_core[chip * cores:(chip + 1) * cores]))
        return tuple(per_chip)


def place_threads(system: SystemSpec, smt_level: int, n_threads: int) -> Placement:
    """Breadth-first placement of ``n_threads`` with SMT level enabled.

    Raises if the threads exceed the available contexts — the paper's
    protocol never oversubscribes, and modelling run-queue time is out
    of scope.
    """
    system.arch.validate_smt_level(smt_level)
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    capacity = system.contexts_at(smt_level)
    if n_threads > capacity:
        raise ValueError(
            f"{n_threads} threads exceed {capacity} contexts "
            f"({system.total_cores} cores at SMT{smt_level})"
        )
    counts = [0] * system.total_cores
    # Breadth-first: round-robin chips, within a chip round-robin cores.
    cores = system.arch.cores_per_chip
    order: List[int] = []
    for core_idx in range(cores):
        for chip in range(system.n_chips):
            order.append(chip * cores + core_idx)
    slot = 0
    assignment: List[int] = []
    for _ in range(n_threads):
        # Find the next core (in breadth-first order) with a free context.
        for probe in range(len(order)):
            core = order[(slot + probe) % len(order)]
            if counts[core] < smt_level:
                counts[core] += 1
                assignment.append(core)
                slot = (slot + probe + 1) % len(order)
                break
        else:  # pragma: no cover - capacity check above makes this unreachable
            raise AssertionError("placement overflow despite capacity check")
    return Placement(
        system=system,
        smt_level=smt_level,
        n_threads=n_threads,
        threads_per_core=tuple(counts),
        assignment=tuple(assignment),
    )
