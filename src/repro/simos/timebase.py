"""Wall-clock vs per-thread CPU time accounting.

The third SMTsm factor is ``TotalTime / AvgThrdTime`` — elapsed wall
time over average per-thread CPU time (paper Eq. 1).  It "measures
scalability limitations manifested through sleeping or Amdahl's law, as
opposed to busy waiting" (§II): spinning threads are *on CPU* and do
not move this ratio; blocked threads and serial bottlenecks do.

:func:`account_run` decomposes a run into a serial phase (one runnable
thread, the rest asleep) and a parallel phase (all threads runnable for
their runnable fraction) and returns the times exactly as a
``getrusage``-style interface would report them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simos.sync import SyncProfile
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TimeAccounting:
    """Times for one run interval."""

    wall_time_s: float
    serial_time_s: float
    parallel_time_s: float
    total_cpu_s: float
    n_threads: int

    @property
    def avg_thread_cpu_s(self) -> float:
        return self.total_cpu_s / self.n_threads

    @property
    def scalability_ratio(self) -> float:
        """TotalTime / AvgThrdTime — the metric's third factor."""
        return self.wall_time_s / self.avg_thread_cpu_s

    def __post_init__(self):
        check_positive("wall_time_s", self.wall_time_s)
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        if self.total_cpu_s <= 0:
            raise ValueError(f"total_cpu_s must be > 0, got {self.total_cpu_s}")
        if self.total_cpu_s > self.wall_time_s * self.n_threads * (1 + 1e-9):
            raise ValueError(
                "total CPU time cannot exceed wall time x threads: "
                f"{self.total_cpu_s} > {self.wall_time_s} * {self.n_threads}"
            )


def account_run(
    useful_instructions: float,
    parallel_useful_rate: float,
    serial_rate: float,
    sync: SyncProfile,
    n_threads: int,
) -> TimeAccounting:
    """Account a run of ``useful_instructions`` units of work.

    ``parallel_useful_rate`` is the aggregate *useful* instruction
    throughput (instructions/s, spin cycles excluded) during the
    parallel phase; ``serial_rate`` is the single-thread throughput
    during serial sections.
    """
    check_positive("useful_instructions", useful_instructions)
    check_positive("parallel_useful_rate", parallel_useful_rate)
    check_positive("serial_rate", serial_rate)
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")

    s = sync.serial_fraction
    serial_time = s * useful_instructions / serial_rate
    parallel_time = (1.0 - s) * useful_instructions / parallel_useful_rate
    wall = serial_time + parallel_time

    runnable = sync.runnable_fraction(n_threads)
    # Serial phase: exactly one thread on CPU.  Parallel phase: every
    # thread on CPU for its runnable fraction (spinning counts as busy —
    # it is already inside ``runnable``; only blocking/I-O sleep).
    total_cpu = serial_time * 1.0 + parallel_time * n_threads * runnable
    return TimeAccounting(
        wall_time_s=wall,
        serial_time_s=serial_time,
        parallel_time_s=parallel_time,
        total_cpu_s=total_cpu,
        n_threads=n_threads,
    )
