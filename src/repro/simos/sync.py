"""Synchronization and scalability behaviour.

A workload's software-scalability profile determines how it responds to
the extra threads that come with a higher SMT level.  Three mechanisms,
each visible to the SMTsm through a different channel (paper §II):

* **spin waiting** — threads burn CPU in lock loops.  Spin time keeps
  CPU-time accounting "busy" (so the wall/CPU factor does NOT see it)
  but replaces application instructions with the branch-heavy spin-loop
  mix, raising the metric's mix-deviation factor;
* **blocking waits** (mutexes, condition variables, I/O) — threads
  sleep, so per-thread CPU time drops below wall time, raising the
  wall/CPU scalability factor;
* **serial sections** — Amdahl's law; only one thread runs, the rest
  sleep, again lowering average CPU time.

Contention laws: both spin and blocked fractions grow with the number
of contending threads along a saturating curve
``coeff * (n - 1) / (n - 1 + half)`` — doubling threads on a contended
lock roughly doubles wait time at first, then saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_fraction, check_positive

#: Never let spin+block consume everything: forward progress exists.
MAX_WAIT_FRACTION = 0.95


def _saturating(n_threads: int, coeff: float, half: float) -> float:
    if n_threads <= 1:
        return 0.0
    return coeff * (n_threads - 1) / (n_threads - 1 + half)


@dataclass(frozen=True)
class SyncProfile:
    """Scalability parameters of a workload.

    ``spin_coeff``/``block_coeff`` are the asymptotic fraction of
    parallel-phase time spent spinning/blocked as the thread count grows
    without bound; the ``*_half`` constants set how many *additional*
    threads reach half of that asymptote.  ``io_wait`` is a
    thread-count-independent sleeping fraction (device/network time).
    ``serial_fraction`` is the Amdahl serial share of total work.

    **Contended critical sections** are modelled structurally rather
    than as a fixed fraction: ``lock_serial_fraction`` is the share of
    useful work executed while holding a contended lock.  Since at most
    one thread is inside the critical section, useful throughput cannot
    exceed the lock holder's single-thread execution rate divided by
    that fraction — and the lock holder runs at the *current SMT
    level's* per-thread speed, which is how running the lock holder
    slower at SMT4 makes every waiter spin longer (the engine derives
    the spin fraction from this cap; see
    :meth:`lock_throughput_cap`).  ``lock_pingpong_coeff`` adds
    cache-line ping-pong degradation of the critical section as the
    contender count grows.

    ``work_inflation_coeff`` models parallel overhead: the total
    instructions executed per unit of useful work grows with the thread
    count (extra queue management, redundant work, synchronization
    bookkeeping).
    """

    serial_fraction: float = 0.0
    spin_coeff: float = 0.0
    spin_half: float = 8.0
    block_coeff: float = 0.0
    block_half: float = 8.0
    io_wait: float = 0.0
    lock_serial_fraction: float = 0.0
    lock_pingpong_coeff: float = 0.0
    lock_pingpong_half: float = 8.0
    work_inflation_coeff: float = 0.0
    work_inflation_half: float = 16.0

    def __post_init__(self):
        check_fraction("serial_fraction", self.serial_fraction)
        check_fraction("spin_coeff", self.spin_coeff)
        check_fraction("block_coeff", self.block_coeff)
        check_fraction("io_wait", self.io_wait)
        check_positive("spin_half", self.spin_half)
        check_positive("block_half", self.block_half)
        check_fraction("lock_serial_fraction", self.lock_serial_fraction)
        if self.lock_pingpong_coeff < 0:
            raise ValueError(
                f"lock_pingpong_coeff must be >= 0, got {self.lock_pingpong_coeff}"
            )
        check_positive("lock_pingpong_half", self.lock_pingpong_half)
        if self.work_inflation_coeff < 0:
            raise ValueError(
                f"work_inflation_coeff must be >= 0, got {self.work_inflation_coeff}"
            )
        check_positive("work_inflation_half", self.work_inflation_half)
        if self.serial_fraction > 0.9:
            raise ValueError(
                f"serial_fraction {self.serial_fraction} leaves no parallel phase to model"
            )

    def spin_fraction(self, n_threads: int) -> float:
        """Fraction of a running thread's parallel-phase cycles spent spinning."""
        self._check_n(n_threads)
        return _saturating(n_threads, self.spin_coeff, self.spin_half)

    def blocked_fraction(self, n_threads: int) -> float:
        """Fraction of parallel-phase wall time a thread spends asleep
        (lock blocking + I/O), capped to keep progress possible."""
        self._check_n(n_threads)
        waiting = _saturating(n_threads, self.block_coeff, self.block_half) + self.io_wait
        return min(waiting, MAX_WAIT_FRACTION)

    def runnable_fraction(self, n_threads: int) -> float:
        """Fraction of parallel-phase wall time a thread is on-CPU."""
        return 1.0 - self.blocked_fraction(n_threads)

    def lock_throughput_cap(self, single_thread_rate: float, n_threads: int) -> float:
        """Upper bound on useful throughput from the contended lock.

        ``single_thread_rate`` is the lock holder's execution rate
        (useful instructions/s) at the current SMT level.  Returns
        ``inf`` when the workload has no contended critical section.
        """
        check_positive("single_thread_rate", single_thread_rate)
        self._check_n(n_threads)
        if self.lock_serial_fraction <= 0.0:
            return float("inf")
        # Ping-pong: the critical section slows as contenders bounce the
        # lock line; saturates at (1 + coeff).
        pingpong = 1.0 + _saturating(
            n_threads, self.lock_pingpong_coeff, self.lock_pingpong_half
        )
        cs_rate = single_thread_rate / pingpong
        return cs_rate / self.lock_serial_fraction

    def work_inflation(self, n_threads: int) -> float:
        """Executed-instructions multiplier per unit of useful work.

        Grows from 1 (single thread) and saturates at ``1 + coeff``.
        """
        self._check_n(n_threads)
        return 1.0 + _saturating(
            n_threads, self.work_inflation_coeff, self.work_inflation_half
        )

    @staticmethod
    def _check_n(n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")


#: A perfectly scalable workload (EP-style).
NO_SYNC = SyncProfile()
