"""A batch job queue with per-job SMT policy (paper §V).

"The SMT-selection metric can be used by operating systems to guide
scheduling decisions."  The simplest such integration is a batch
system: jobs run one at a time on the whole machine, and the scheduler
picks each job's SMT level.  Policies:

* ``static-<L>`` — every job at level L (static-max is the realistic
  default: that is how SMT systems ship);
* ``oracle`` — each job at its truly best level (requires running every
  level: offline-exhaustive, the upper bound);
* ``smtsm`` — run each job at the top level for a short measurement
  window, read the metric, then run the remainder at the recommended
  level (the paper's proposal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metric import smtsm_from_run
from repro.core.predictor import SmtPredictor
from repro.sim.engine import RunSpec, simulate_run
from repro.simos.system import SystemSpec
from repro.util.validation import check_fraction, check_positive
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class BatchJob:
    """One queued application."""

    spec: WorkloadSpec
    work: float

    def __post_init__(self):
        check_positive("work", self.work)


@dataclass(frozen=True)
class JobRecord:
    """How one job was executed."""

    name: str
    level: int
    wall_time_s: float
    measured_metric: Optional[float] = None


@dataclass(frozen=True)
class BatchOutcome:
    policy: str
    records: Tuple[JobRecord, ...]

    @property
    def makespan_s(self) -> float:
        return sum(r.wall_time_s for r in self.records)


class BatchScheduler:
    """Runs a job queue under a chosen SMT policy."""

    def __init__(self, system: SystemSpec, *, seed: int = 0,
                 probe_fraction: float = 0.1,
                 switch_cost_s: float = 0.005):
        self.system = system
        self.seed = seed
        self.probe_fraction = check_fraction("probe_fraction", probe_fraction)
        if not (0.0 < probe_fraction < 1.0):
            raise ValueError("probe_fraction must be in (0, 1)")
        self.switch_cost_s = switch_cost_s

    def _run(self, job: BatchJob, level: int, work: float, tag: str):
        return simulate_run(
            RunSpec(
                system=self.system,
                smt_level=level,
                stream=job.spec.stream,
                sync=job.spec.sync,
                useful_instructions=work,
                seed=self.seed + (hash((job.spec.name, tag)) % 10_000),
            )
        )

    def run_static(self, jobs: Sequence[BatchJob], level: int) -> BatchOutcome:
        self.system.arch.validate_smt_level(level)
        records = [
            JobRecord(job.spec.name, level,
                      self._run(job, level, job.work, f"static{level}").wall_time_s)
            for job in jobs
        ]
        return BatchOutcome(policy=f"static-{level}", records=tuple(records))

    def run_oracle(self, jobs: Sequence[BatchJob]) -> BatchOutcome:
        """Each job at its genuinely best level (exhaustive search)."""
        records = []
        for job in jobs:
            best = min(
                (self._run(job, level, job.work, f"oracle{level}")
                 for level in self.system.arch.smt_levels),
                key=lambda r: r.wall_time_s,
            )
            records.append(JobRecord(job.spec.name, best.smt_level, best.wall_time_s))
        return BatchOutcome(policy="oracle", records=tuple(records))

    def run_smtsm(self, jobs: Sequence[BatchJob],
                  predictors: Dict[int, SmtPredictor]) -> BatchOutcome:
        """Probe at the top level, then follow the metric."""
        max_level = self.system.arch.max_smt
        records = []
        for job in jobs:
            probe_work = job.work * self.probe_fraction
            probe = self._run(job, max_level, probe_work, "probe")
            metric = smtsm_from_run(probe)
            level = max_level
            for low in sorted(predictors):
                if not predictors[low].predicts_higher(metric.value):
                    level = low
                    break
            wall = probe.wall_time_s
            if level != max_level:
                wall += self.switch_cost_s
            wall += self._run(job, level, job.work - probe_work, "rest").wall_time_s
            records.append(JobRecord(job.spec.name, level, wall, metric.value))
        return BatchOutcome(policy="smtsm", records=tuple(records))
