"""In-process telemetry registry: nested timing spans, counters, gauges.

The sweep engine's hot paths (batched chip solves, the spin/lock fixed
point, the run cache) report what they are doing through one process-wide
:class:`Tracer`.  Three design rules keep it safe to leave in place:

* **Off by default, near-zero overhead when off.**  Every recording
  method starts with an ``enabled`` check and returns immediately;
  :meth:`Tracer.span` hands back a shared no-op context manager, so a
  disabled tracer costs one attribute load and one branch per call site.
  Call sites that would do *any* extra work to build attributes guard on
  ``tracer.enabled`` themselves.
* **Aggregate in process, stream spans out.**  Counters and gauges live
  in plain dicts and are only serialized on :meth:`Tracer.flush`; span
  events stream to the sink as they close (a sweep emits tens of spans,
  not thousands).
* **Stdlib only.**  ``repro.obs`` sits below every other layer of the
  package — the simulator imports it, never the reverse — so the core
  and sink must not pull in numpy or any ``repro`` sibling (the
  :mod:`repro.obs.stats` reporter may use :mod:`repro.util`).

Enable globally with the ``REPRO_TELEMETRY`` environment variable (any
of ``1/on/true/yes``); events then land in a timestamped JSONL file
under ``results/.telemetry/`` (relocate with ``REPRO_TELEMETRY_DIR``).
Programmatic control — used by ``repro run --telemetry`` and the bench
scripts — goes through :func:`configure`.
"""

from __future__ import annotations

import atexit
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: Environment switches.
ENV_TELEMETRY = "REPRO_TELEMETRY"        # truthy value enables the global tracer
ENV_TELEMETRY_DIR = "REPRO_TELEMETRY_DIR"

DEFAULT_TELEMETRY_DIR = Path("results") / ".telemetry"

_TRUTHY = {"1", "on", "true", "yes"}

#: Spans kept in memory per tracer; beyond this they still stream to the
#: sink but are dropped from the snapshot (counted in ``obs.spans_dropped``).
MAX_RETAINED_SPANS = 65536


def telemetry_enabled_by_env() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry."""
    return os.environ.get(ENV_TELEMETRY, "").strip().lower() in _TRUTHY


def default_telemetry_dir() -> Path:
    return Path(os.environ.get(ENV_TELEMETRY_DIR, str(DEFAULT_TELEMETRY_DIR)))


def default_telemetry_path() -> Path:
    """A fresh timestamped JSONL path under the default directory."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return default_telemetry_dir() / f"telemetry-{stamp}-{os.getpid()}.jsonl"


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as kept in the registry and emitted as JSONL."""

    name: str                      # last path segment
    path: str                      # "/"-joined ancestry, e.g. "sweep/simulate"
    start_s: float                 # monotonic offset from tracer creation
    duration_s: float
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """An open timing span; use as a context manager via :meth:`Tracer.span`.

    Nesting is tracked on the owning tracer's stack: the span's path is
    its parent's path plus its own name, so a sweep's trace reads as a
    tree without the call sites passing any context around.
    """

    __slots__ = ("_tracer", "name", "attrs", "path", "depth", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = self._tracer._clock() - self._t0
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # mis-nested exit; drop back to this frame
            del stack[stack.index(self):]
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Process-wide telemetry registry.

    ``enabled`` gates every recording method.  A sink (anything with
    ``emit(dict)``, ``flush()``, ``close()`` — see
    :class:`repro.obs.sink.JsonlSink`) receives span events as they
    close and aggregated counter/gauge events on :meth:`flush`.
    """

    def __init__(
        self,
        enabled: bool = False,
        sink=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.enabled = enabled
        self._sink = sink
        self._clock = clock
        self._origin = clock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._spans: List[SpanRecord] = []
        self._stack: List[Span] = []

    # -- recording ----------------------------------------------------

    def span(self, name: str, **attrs) -> Union[Span, _NullSpan]:
        """A context manager timing ``name``; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` (monotone accumulation)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def _finish(self, span: Span, duration: float) -> None:
        record = SpanRecord(
            name=span.name,
            path=span.path,
            start_s=span._t0 - self._origin,
            duration_s=duration,
            depth=span.depth,
            attrs=dict(span.attrs),
        )
        if len(self._spans) < MAX_RETAINED_SPANS:
            self._spans.append(record)
        else:
            self._counters["obs.spans_dropped"] = (
                self._counters.get("obs.spans_dropped", 0.0) + 1.0
            )
        if self._sink is not None:
            self._sink.emit(record.to_event())

    # -- snapshot API -------------------------------------------------

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def spans(self) -> List[SpanRecord]:
        return list(self._spans)

    def snapshot(self) -> Dict[str, Any]:
        """The registry's current state as plain data (JSON-ready)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "spans": [s.to_event() for s in self._spans],
        }

    def reset(self) -> None:
        """Clear counters, gauges and retained spans (open spans survive)."""
        self._counters.clear()
        self._gauges.clear()
        self._spans.clear()

    # -- sink lifecycle -----------------------------------------------

    def flush(self) -> None:
        """Emit aggregated counters/gauges to the sink and flush it."""
        if self._sink is None:
            return
        for name in sorted(self._counters):
            self._sink.emit(
                {"type": "counter", "name": name, "value": self._counters[name]}
            )
        for name in sorted(self._gauges):
            self._sink.emit(
                {"type": "gauge", "name": name, "value": self._gauges[name]}
            )
        self._sink.flush()

    def close(self) -> None:
        self.flush()
        if self._sink is not None:
            self._sink.close()
            self._sink = None


#: The process-wide tracer, created lazily so importing ``repro`` never
#: touches the filesystem.  ``None`` until first use.
_GLOBAL: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The global tracer; honours ``REPRO_TELEMETRY`` on first call."""
    global _GLOBAL
    if _GLOBAL is None:
        if telemetry_enabled_by_env():
            from repro.obs.sink import JsonlSink

            _GLOBAL = Tracer(enabled=True, sink=JsonlSink(default_telemetry_path()))
            atexit.register(_GLOBAL.close)
        else:
            _GLOBAL = Tracer(enabled=False)
    return _GLOBAL


def detach_in_subprocess(enabled: bool = True) -> Tracer:
    """Install a fresh global tracer in a forked/spawned child process.

    A forked worker inherits the parent's tracer *object* — including
    any open JSONL sink file descriptor, which two processes must never
    share (interleaved writes corrupt the stream, and a child ``close()``
    would flush the parent's buffer).  Call this first thing in the
    child: the inherited tracer is abandoned untouched (the parent keeps
    its sink) and replaced with a sink-less in-process tracer.

    ``enabled=True`` (the default) keeps counters accumulating in the
    child so a worker can ship counter *deltas* back to its dispatcher —
    how the serving tier's ``serve.worker.*`` accounting stays complete
    across process boundaries.
    """
    global _GLOBAL
    _GLOBAL = Tracer(enabled=enabled)
    return _GLOBAL


def configure(
    enabled: Optional[bool] = None,
    sink_path: Optional[os.PathLike] = None,
    sink=None,
) -> Tracer:
    """Reconfigure the global tracer; returns it.

    ``sink_path`` opens a :class:`~repro.obs.sink.JsonlSink` at that
    path (replacing and closing any current sink); ``sink`` installs an
    arbitrary sink object; passing neither leaves the sink alone.
    Enabling with no sink keeps telemetry purely in-process — the mode
    the bench scripts use to read counters without touching disk.
    """
    tracer = get_tracer()
    if sink_path is not None and sink is not None:
        raise ValueError("pass sink_path or sink, not both")
    if sink_path is not None:
        from repro.obs.sink import JsonlSink

        sink = JsonlSink(sink_path)
    if sink is not None:
        if tracer._sink is not None:
            tracer.close()
        tracer._sink = sink
    if enabled is not None:
        tracer.enabled = enabled
    return tracer
