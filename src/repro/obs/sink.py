"""JSONL event sink and reader for :mod:`repro.obs`.

One event per line, plain JSON, one tracer session per file (opening a
sink truncates its target, so the aggregated counter totals a session
flushes are never mixed with a previous session's).  The file and its
parent directory are created lazily on the first ``emit`` so that an
enabled tracer that never records costs no I/O.  Like the run cache, all I/O
failures degrade silently: telemetry must never break a sweep, it just
forfeits the trace.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

#: Bumped when the event shapes documented in docs/observability.md change.
SCHEMA_VERSION = 1


class JsonlSink:
    """Append telemetry events to one JSONL file."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self._fh = None
        self._failed = False

    def _open(self):
        if self._fh is None and not self._failed:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "w")
                self._write(
                    {
                        "type": "meta",
                        "schema": SCHEMA_VERSION,
                        "created_unix": time.time(),
                        "pid": os.getpid(),
                    }
                )
            except OSError:
                self._failed = True
                self._fh = None
        return self._fh

    def _write(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event) + "\n")

    def emit(self, event: Dict[str, Any]) -> None:
        try:
            if self._open() is not None:
                self._write(event)
        except (OSError, TypeError, ValueError):
            pass

    def flush(self) -> None:
        try:
            if self._fh is not None:
                self._fh.flush()
        except OSError:
            pass

    def close(self) -> None:
        try:
            if self._fh is not None:
                self._fh.close()
        except OSError:
            pass
        finally:
            self._fh = None


class ListSink:
    """In-memory sink for tests and programmatic capture."""

    def __init__(self):
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def read_events(path: os.PathLike) -> List[Dict[str, Any]]:
    """Load a telemetry JSONL file, skipping corrupt or foreign lines."""
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and "type" in event:
                events.append(event)
    return events


def latest_telemetry_file(directory: Optional[os.PathLike] = None) -> Optional[Path]:
    """The most recently modified ``*.jsonl`` under ``directory``.

    Defaults to the env-resolved telemetry directory; ``None`` when the
    directory does not exist or holds no telemetry files.
    """
    from repro.obs.core import default_telemetry_dir

    root = Path(directory) if directory is not None else default_telemetry_dir()
    try:
        candidates: Iterable[Path] = root.glob("*.jsonl")
        return max(candidates, key=lambda p: p.stat().st_mtime)
    except (OSError, ValueError):
        return None
