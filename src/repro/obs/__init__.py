"""Structured telemetry for the sweep engine (spans, counters, sinks).

Quickstart::

    from repro.obs import configure, get_tracer

    tracer = configure(enabled=True)           # in-process only
    ... run a sweep ...
    print(tracer.counters()["runcache.hits"])

    configure(enabled=True, sink_path="trace.jsonl")   # stream to JSONL
    ... run ...
    get_tracer().close()

See ``docs/observability.md`` for the event schema, the instrumented
counter names, and the ``repro stats`` walkthrough.
"""

from repro.obs.core import (
    DEFAULT_TELEMETRY_DIR,
    ENV_TELEMETRY,
    ENV_TELEMETRY_DIR,
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    configure,
    default_telemetry_dir,
    default_telemetry_path,
    detach_in_subprocess,
    get_tracer,
    telemetry_enabled_by_env,
)
from repro.obs.sink import (
    SCHEMA_VERSION,
    JsonlSink,
    ListSink,
    latest_telemetry_file,
    read_events,
)
from repro.obs.stats import (
    SpanStats,
    TelemetrySummary,
    render_summary,
    summarize_events,
    summarize_file,
    summarize_tracer,
)

#: Top-level alias: ``repro.configure_telemetry`` reads better than a
#: bare ``configure`` next to the simulator exports.
configure_telemetry = configure

__all__ = [
    "Tracer",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "get_tracer",
    "configure",
    "configure_telemetry",
    "detach_in_subprocess",
    "telemetry_enabled_by_env",
    "default_telemetry_dir",
    "default_telemetry_path",
    "ENV_TELEMETRY",
    "ENV_TELEMETRY_DIR",
    "DEFAULT_TELEMETRY_DIR",
    "SCHEMA_VERSION",
    "JsonlSink",
    "ListSink",
    "read_events",
    "latest_telemetry_file",
    "SpanStats",
    "TelemetrySummary",
    "summarize_events",
    "summarize_file",
    "summarize_tracer",
    "render_summary",
]
