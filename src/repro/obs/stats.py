"""Summarize a telemetry stream: span tree, counter totals, cache hits.

Consumes the JSONL events a :class:`repro.obs.Tracer` emits (or a live
tracer's snapshot) and aggregates them into the report ``repro stats``
prints: a duration-annotated span tree, counter and gauge totals, the
run-cache hit rate, and the slowest individual runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.sink import read_events
from repro.util.tables import format_table


@dataclass
class SpanStats:
    """Aggregate over every occurrence of one span path."""

    path: str
    depth: int
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class TelemetrySummary:
    """Everything ``repro stats`` needs, already aggregated."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    span_stats: Dict[str, SpanStats] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def cache_hit_rate(self) -> Optional[float]:
        """Run-cache hit fraction, or ``None`` with no cache traffic."""
        hits = self.counters.get("runcache.hits", 0.0)
        misses = self.counters.get("runcache.misses", 0.0)
        total = hits + misses
        return hits / total if total > 0 else None

    def hot_key_hit_rate(self) -> Optional[float]:
        """Serving hot-key-cache hit fraction, or ``None`` without traffic."""
        hits = self.counters.get("serve.hotkeys.hits", 0.0)
        misses = self.counters.get("serve.hotkeys.misses", 0.0)
        total = hits + misses
        return hits / total if total > 0 else None

    def worker_stats(self) -> List[Dict[str, float]]:
        """Per-worker serving totals from the ``serve.worker.wN.*`` counters.

        One row per worker index, sorted: ``{"worker", "batches",
        "requests", "mean_batch"}``.  Empty when the worker pool never
        ran (single-process serving has no per-worker counters).
        """
        per_worker: Dict[int, Dict[str, float]] = {}
        prefix = "serve.worker.w"
        for name, value in self.counters.items():
            if not name.startswith(prefix):
                continue
            rest = name[len(prefix):]
            index_s, _, field_name = rest.partition(".")
            if not index_s.isdigit() or field_name not in ("batches", "requests"):
                continue
            per_worker.setdefault(int(index_s), {})[field_name] = value
        rows = []
        for index in sorted(per_worker):
            batches = per_worker[index].get("batches", 0.0)
            requests = per_worker[index].get("requests", 0.0)
            rows.append({
                "worker": float(index),
                "batches": batches,
                "requests": requests,
                "mean_batch": requests / batches if batches else 0.0,
            })
        return rows

    def supervision_stats(self) -> Optional[Dict[str, float]]:
        """Serving supervision/degradation totals, or ``None`` when quiet.

        Collects the chaos (``serve.chaos.*``), watchdog
        (``serve.watchdog.*``), brownout (``serve.brownout.*``) and
        resilient-client (``client.*``) counters the robustness plane
        emits; ``None`` when none of them ever fired (healthy serving
        run, or no serving at all).
        """
        names = {
            "chaos_slow": "serve.chaos.slow",
            "chaos_corrupt": "serve.chaos.corrupt",
            "hangs": "serve.watchdog.hangs",
            "kills": "serve.watchdog.kills",
            "quarantines": "serve.watchdog.quarantines",
            "deadline_abandoned": "serve.worker.deadline_abandoned",
            "corrupt_responses": "serve.worker.corrupt_responses",
            "close_leaks": "serve.worker.close_leaks",
            "brownout_activations": "serve.brownout.activations",
            "brownout_degraded": "serve.brownout.degraded",
            "brownout_rejections": "serve.brownout.rejections",
            "client_retries": "client.retries",
            "client_reconnects": "client.reconnects",
            "client_hedges": "client.hedges",
            "client_hedge_wins": "client.hedge_wins",
            "client_breaker_opens": "client.breaker_opens",
            "client_giveups": "client.giveups",
        }
        stats = {
            key: self.counters.get(counter, 0.0)
            for key, counter in names.items()
        }
        if not any(stats.values()):
            return None
        return stats

    def fleet_stats(self) -> Optional[Dict[str, float]]:
        """Fleet-simulation totals (``fleet.*``), or ``None`` when the
        fleet simulator never ran."""
        names = {
            "submitted": "fleet.jobs_submitted",
            "completed": "fleet.jobs_completed",
            "rejected": "fleet.jobs_rejected",
            "crash_lost": "fleet.jobs_crash_lost",
            "smt_switches": "fleet.smt_switches",
            "node_crashes": "fleet.node_crashes",
            "node_hangs": "fleet.node_hangs",
        }
        stats = {
            key: self.counters.get(counter, 0.0)
            for key, counter in names.items()
        }
        if not any(stats.values()):
            return None
        return stats

    def slowest_runs(self, top: int = 10) -> List[Dict[str, Any]]:
        """The longest per-run spans (``runner.run`` / ``engine.simulate_run``)."""
        runs = [
            s
            for s in self.spans
            if s.get("name") in ("run", "simulate_run")
            or s.get("attrs", {}).get("workload") is not None
        ]
        runs.sort(key=lambda s: s.get("duration_s", 0.0), reverse=True)
        return runs[:top]


def summarize_events(events: Iterable[Dict[str, Any]]) -> TelemetrySummary:
    """Aggregate raw telemetry events.

    Counter and gauge events carry aggregated totals already (the tracer
    flushes its registry); repeated flushes of the same name keep the
    latest value rather than double-counting.
    """
    summary = TelemetrySummary()
    for event in events:
        kind = event.get("type")
        if kind == "span":
            path = str(event.get("path", event.get("name", "?")))
            stats = summary.span_stats.get(path)
            if stats is None:
                try:
                    depth = int(event.get("depth", path.count("/")))
                except (TypeError, ValueError):
                    depth = path.count("/")
                stats = summary.span_stats[path] = SpanStats(path=path, depth=depth)
            try:
                duration = float(event.get("duration_s", 0.0))
            except (TypeError, ValueError):
                duration = 0.0
            stats.count += 1
            stats.total_s += duration
            stats.max_s = max(stats.max_s, duration)
            summary.spans.append(event)
        elif kind in ("counter", "gauge"):
            # A crashed/killed writer can truncate a record mid-line and
            # leave valid JSON missing fields; drop it rather than raise.
            name = event.get("name")
            value = event.get("value")
            if name is None or value is None:
                continue
            try:
                value = float(value)
            except (TypeError, ValueError):
                continue
            target = summary.counters if kind == "counter" else summary.gauges
            target[str(name)] = value
    return summary


def summarize_file(path: os.PathLike) -> TelemetrySummary:
    return summarize_events(read_events(path))


def summarize_tracer(tracer) -> TelemetrySummary:
    """Summarize a live tracer's registry without going through a file."""
    snapshot = tracer.snapshot()
    events: List[Dict[str, Any]] = list(snapshot["spans"])
    events += [
        {"type": "counter", "name": k, "value": v}
        for k, v in snapshot["counters"].items()
    ]
    events += [
        {"type": "gauge", "name": k, "value": v}
        for k, v in snapshot["gauges"].items()
    ]
    return summarize_events(events)


def _span_order(summary: TelemetrySummary) -> List[SpanStats]:
    """Tree order: parents before children, by first appearance."""
    first_seen: Dict[str, int] = {}
    for i, event in enumerate(summary.spans):
        path = str(event.get("path", ""))
        if path not in first_seen:
            first_seen[path] = i

    def sort_key(stats: SpanStats) -> Tuple:
        # Sorting by the ancestor chain's first-seen indices keeps every
        # subtree contiguous even when siblings interleave in time.
        parts = stats.path.split("/")
        prefixes = ["/".join(parts[: i + 1]) for i in range(len(parts))]
        return tuple(first_seen.get(p, len(summary.spans)) for p in prefixes)

    return sorted(summary.span_stats.values(), key=sort_key)


def render_summary(summary: TelemetrySummary, top: int = 10) -> str:
    """The ``repro stats`` report as text."""
    sections: List[str] = []

    if summary.span_stats:
        rows = []
        for stats in _span_order(summary):
            rows.append(
                [
                    "  " * stats.depth + stats.name,
                    stats.count,
                    f"{stats.total_s * 1e3:.1f}",
                    f"{stats.mean_s * 1e3:.2f}",
                    f"{stats.max_s * 1e3:.2f}",
                ]
            )
        sections.append(
            format_table(
                ["span", "count", "total (ms)", "mean (ms)", "max (ms)"],
                rows,
                title="span tree",
            )
        )

    if summary.counters:
        rows = [
            [name, f"{value:g}"] for name, value in sorted(summary.counters.items())
        ]
        sections.append(format_table(["counter", "total"], rows, title="counters"))

    if summary.gauges:
        rows = [[name, f"{value:g}"] for name, value in sorted(summary.gauges.items())]
        sections.append(format_table(["gauge", "value"], rows, title="gauges"))

    workers = summary.worker_stats()
    if workers:
        rows = [
            [
                f"w{int(row['worker'])}",
                f"{row['batches']:g}",
                f"{row['requests']:g}",
                f"{row['mean_batch']:.1f}",
            ]
            for row in workers
        ]
        shed = summary.counters.get("serve.worker.shed", 0.0)
        restarts = summary.counters.get("serve.worker.restarts", 0.0)
        spills = summary.counters.get("serve.worker.spills", 0.0)
        sections.append(
            format_table(
                ["worker", "batches", "requests", "mean batch"],
                rows,
                title="serving workers",
            )
            + f"\nshed={shed:g} restarts={restarts:g} spills={spills:g}"
        )

    supervision = summary.supervision_stats()
    if supervision is not None:
        rows = [
            ["chaos", f"slow={supervision['chaos_slow']:g} "
                      f"corrupt={supervision['chaos_corrupt']:g}"],
            ["watchdog", f"hangs={supervision['hangs']:g} "
                         f"kills={supervision['kills']:g} "
                         f"quarantines={supervision['quarantines']:g}"],
            ["workers", "deadline_abandoned="
                        f"{supervision['deadline_abandoned']:g} "
                        f"corrupt_responses={supervision['corrupt_responses']:g} "
                        f"close_leaks={supervision['close_leaks']:g}"],
            ["brownout", f"activations={supervision['brownout_activations']:g} "
                         f"degraded={supervision['brownout_degraded']:g} "
                         f"rejections={supervision['brownout_rejections']:g}"],
            ["client", f"retries={supervision['client_retries']:g} "
                       f"reconnects={supervision['client_reconnects']:g} "
                       f"hedges={supervision['client_hedges']:g} "
                       f"hedge_wins={supervision['client_hedge_wins']:g} "
                       f"breaker_opens={supervision['client_breaker_opens']:g} "
                       f"giveups={supervision['client_giveups']:g}"],
        ]
        sections.append(
            format_table(["plane", "totals"], rows, title="serving supervision")
        )

    fleet = summary.fleet_stats()
    if fleet is not None:
        rows = [
            ["jobs", f"submitted={fleet['submitted']:g} "
                     f"completed={fleet['completed']:g} "
                     f"rejected={fleet['rejected']:g} "
                     f"crash_lost={fleet['crash_lost']:g}"],
            ["smt", f"switches={fleet['smt_switches']:g}"],
            ["nodes", f"crashes={fleet['node_crashes']:g} "
                      f"hangs={fleet['node_hangs']:g}"],
        ]
        sections.append(
            format_table(["plane", "totals"], rows, title="fleet simulation")
        )

    hot_rate = summary.hot_key_hit_rate()
    if hot_rate is not None:
        hits = summary.counters.get("serve.hotkeys.hits", 0.0)
        misses = summary.counters.get("serve.hotkeys.misses", 0.0)
        sections.append(
            f"hot-key cache: {hits:g} hits / {misses:g} misses "
            f"({100.0 * hot_rate:.1f}% hit rate)"
        )

    hit_rate = summary.cache_hit_rate()
    if hit_rate is not None:
        hits = summary.counters.get("runcache.hits", 0.0)
        misses = summary.counters.get("runcache.misses", 0.0)
        sections.append(
            f"run cache: {hits:g} hits / {misses:g} misses "
            f"({100.0 * hit_rate:.1f}% hit rate)"
        )

    slowest = summary.slowest_runs(top)
    if slowest:
        rows = []
        for span in slowest:
            attrs = span.get("attrs", {})
            label = attrs.get("workload", span.get("name", "?"))
            level = attrs.get("level")
            if level is not None:
                label = f"{label}@SMT{level}"
            rows.append([label, f"{float(span.get('duration_s', 0.0)) * 1e3:.2f}"])
        sections.append(
            format_table(["run", "wall (ms)"], rows, title=f"slowest runs (top {top})")
        )

    if not sections:
        return "no telemetry events"
    return "\n\n".join(sections)
