"""Request handlers: the only bridge from the service to the model.

Every operation is implemented in terms of :mod:`repro.api` — the
documented stable facade — and **nothing else**: no deep imports into
``repro.sim``, ``repro.core`` or ``repro.experiments`` (a test pins
this).  Handlers are plain synchronous functions; the server runs them
on a worker executor, and the micro-batcher calls
:func:`handle_predict_batch` with whole coalesced batches so the facade
can vectorize them in one pass.

All handlers take/return plain JSON-able dicts.  Validation errors
raise :class:`HandlerError` (mapped to ``invalid_request`` on the
wire); anything else propagating out is an internal error the server
retries per its :class:`repro.faults.RetryPolicy`.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import repro.api as api

__all__ = [
    "HandlerError",
    "batch_key",
    "handle_ping",
    "handle_predict_batch",
    "handle_score",
    "handle_sweep",
]


class HandlerError(ValueError):
    """Bad request parameters (client error, not retryable)."""


def _session(params: Mapping[str, Any],
             defaults: Optional[Mapping[str, Any]]) -> api.Session:
    """The shared facade session for one request's (arch, chips) target.

    ``defaults`` are server-level session knobs (seed, work budget,
    cache, threshold) applied uniformly so that every request against
    the same system lands in the same session — the precondition for
    batching their runs together.
    """
    kwargs = dict(defaults or {})
    try:
        return api.get_session(
            params.get("arch", "p7"),
            n_chips=params.get("n_chips"),
            **kwargs,
        )
    except (KeyError, ValueError) as exc:
        raise HandlerError(f"cannot resolve system: {exc}") from None


def batch_key(op: str, params: Mapping[str, Any]) -> Tuple[Hashable, ...]:
    """Requests with equal keys may be dispatched as one batch.

    Predictions batch per (architecture, chip count) — the facade
    vectorizes across workloads, levels and seeds within a system.
    Other operations run one-per-dispatch.
    """
    if op == "predict":
        return (op, params.get("arch", "p7"), params.get("n_chips"))
    return (op, id(params))


def handle_predict_batch(
    params_list: Sequence[Mapping[str, Any]],
    defaults: Optional[Mapping[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Answer a coalesced batch of predict requests in one facade call."""
    if not params_list:
        return []
    session = _session(params_list[0], defaults)
    queries = []
    for params in params_list:
        workload = params.get("workload")
        if not isinstance(workload, str) or not workload:
            raise HandlerError("'workload' must be a non-empty string")
        level = params.get("level")
        seed = params.get("seed")
        queries.append(api.PredictQuery(workload=workload, level=level, seed=seed))
    try:
        predictions = session.predict_many(queries)
    except (KeyError, ValueError) as exc:
        raise HandlerError(str(exc)) from None
    return [p.payload() for p in predictions]


def handle_sweep(
    params: Mapping[str, Any],
    defaults: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Run a catalog slice and return its JSON summary."""
    session = _session(params, defaults)
    names = params.get("workloads")
    if names is not None and (
        not isinstance(names, (list, tuple))
        or not all(isinstance(n, str) for n in names)
    ):
        raise HandlerError("'workloads' must be a list of workload names")
    levels = params.get("levels")
    if levels is not None and not isinstance(levels, (list, tuple)):
        raise HandlerError("'levels' must be a list of SMT levels")
    strategy = params.get("strategy", "batched")
    try:
        return session.sweep_summary(
            names, tuple(levels) if levels is not None else None,
            strategy=strategy,
        )
    except (KeyError, ValueError) as exc:
        raise HandlerError(str(exc)) from None


def handle_score(
    params: Mapping[str, Any],
    defaults: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Evaluate SMTsm on raw counter readings shipped by the client."""
    session = _session(params, defaults)
    events = params.get("events")
    if not isinstance(events, dict):
        raise HandlerError("'events' must be an object of counter: count")
    try:
        result = session.score_counters(
            {str(k): float(v) for k, v in events.items()},
            smt_level=int(params["smt_level"]),
            wall_time_s=float(params["wall_time_s"]),
            avg_thread_cpu_s=float(params["avg_thread_cpu_s"]),
            n_software_threads=int(params["n_software_threads"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise HandlerError(f"bad score request: {exc}") from None
    return {
        "smtsm": result.value,
        "factors": {
            "mix_deviation": result.mix_deviation,
            "dispatch_held": result.dispatch_held,
            "scalability_ratio": result.scalability_ratio,
        },
        "smt_level": result.smt_level,
        "arch": result.arch_name,
    }


def handle_ping(params: Mapping[str, Any],
                defaults: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    return {"pong": True}
