"""Brownout degradation: answer worse instead of refusing, under duress.

Backpressure (429 + ``retry_after_ms``) is the right first response to
a load spike — it is cheap, honest, and a well-behaved client recovers.
But when overload is *sustained* (a traffic step the pool cannot
absorb, or a quarantine wave that has benched every worker), pure
shedding turns the service into a wall of errors even though a cheaper
answer exists: the calibrated surrogate fast path
(``repro.sim.surrogate``) predicts the same SMT decision at a fraction
of the solver cost, within its calibrated error band.  Brownout is the
controlled trade of fidelity for availability — the serving analogue of
the paper's premise that a slightly noisy signal still supports a sound
SMT decision.

Mechanics (see ``docs/robustness.md`` for semantics and tuning):

* :class:`BrownoutGate` decides *when*.  Every would-be shed is a
  signal; the gate engages only after signals have persisted for
  ``hold_s`` (one momentary spike still sheds — brownout is for
  weather, not for gusts) and disengages after a quiet ``cool_s``.
  Engagement is counted once per episode
  (``serve.brownout.activations``).
* :class:`DegradedResponder` decides *how*.  Eligible requests
  (``predict`` — the op with a cheap surrogate equivalent) are answered
  through a dedicated single-thread executor running the normal handler
  path with ``surrogate=True`` session defaults, and the result is
  flagged ``degraded: true`` so clients can tell fast answers from full
  ones.  A small ``max_inflight`` cap keeps the degraded lane itself
  from becoming a new unbounded queue: past it, requests shed exactly
  as before (``serve.brownout.rejections``).

Degraded answers bypass the batcher entirely, so — like hot-key cache
hits — they take no batch slot and do not enter the
``serve.admitted``/``serve.settled`` settlement ledger.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Mapping, Optional

from repro.obs import get_tracer

__all__ = ["BrownoutGate", "DegradedResponder"]


class BrownoutGate:
    """Sustained-overload detector: engages after ``hold_s`` of signals.

    Loop-thread-owned state, no locking.  ``signal()`` records one
    would-be shed and returns whether brownout is engaged; signals
    separated by more than ``cool_s`` of quiet reset the episode.
    ``hold_s=0`` engages on the first signal (tests, aggressive
    configs).
    """

    def __init__(self, hold_s: float = 5.0, cool_s: Optional[float] = None):
        if hold_s < 0:
            raise ValueError(f"hold_s must be >= 0, got {hold_s}")
        self.hold_s = hold_s
        self.cool_s = cool_s if cool_s is not None else max(hold_s, 1.0)
        self._first_signal_t: Optional[float] = None
        self._last_signal_t: Optional[float] = None
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def signal(self, now: Optional[float] = None) -> bool:
        """Record one overload signal; True when brownout is engaged."""
        if now is None:
            now = time.monotonic()
        if (self._last_signal_t is not None
                and now - self._last_signal_t > self.cool_s):
            # The previous episode went quiet: start fresh.
            self._first_signal_t = None
            self._active = False
        self._last_signal_t = now
        if self._first_signal_t is None:
            self._first_signal_t = now
        if not self._active and now - self._first_signal_t >= self.hold_s:
            self._active = True
            get_tracer().add("serve.brownout.activations")
        return self._active


class DegradedResponder:
    """The degraded answer lane: surrogate-mode handlers, flagged results.

    Owns one executor thread and an inflight cap.  The caller must
    :meth:`try_reserve` a slot on the event-loop thread before awaiting
    :meth:`respond` (which releases the slot when done) — reservation
    and saturation stay race-free without locks that way.
    """

    #: Operations with a cheap degraded equivalent.  ``predict`` rides
    #: the surrogate fast path; ``sweep`` has no cheap substitute and
    #: ``score``/``ping`` are already cheaper than any substitute.
    DEGRADABLE_OPS = ("predict",)

    def __init__(self, session_defaults: Optional[Mapping[str, Any]] = None,
                 *, max_inflight: int = 4):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        defaults = dict(session_defaults or {})
        defaults["surrogate"] = True
        self._defaults = defaults
        self.max_inflight = max_inflight
        self._inflight = 0
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-brownout"
        )

    def eligible(self, op: str) -> bool:
        return op in self.DEGRADABLE_OPS

    def try_reserve(self) -> bool:
        """Claim a degraded slot; False when the lane is saturated."""
        if self._inflight >= self.max_inflight:
            return False
        self._inflight += 1
        return True

    async def respond(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """One degraded ``predict`` answer (after a successful reserve).

        Raises whatever the handler raises —
        :class:`repro.serve.handlers.HandlerError` for bad params — so
        the server maps errors exactly like the full-fidelity path.
        """
        import asyncio

        try:
            result = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._solve, params
            )
        finally:
            self._inflight -= 1
        return result

    def _solve(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        from repro.serve import handlers

        results = handlers.handle_predict_batch([params], self._defaults)
        result = dict(results[0])
        result["degraded"] = True
        return result

    def close(self) -> None:
        self._executor.shutdown(wait=True)
