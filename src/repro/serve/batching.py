"""Dynamic micro-batching: coalesce concurrent requests, dispatch once.

The same shape ML inference servers use: requests enter a bounded
admission queue; a single collector loop takes the first waiting
request, lingers up to ``max_linger_s`` for company, closes the batch
at ``max_batch``, groups it by batch key (requests that may legally be
answered by one handler call), and dispatches each group to a worker.

Two dispatch planes:

* ``dispatch`` — a synchronous callable run on ``executor`` (the
  single-process mode).  With the default ``max_concurrent=1`` exactly
  one batch is in flight at a time — that is what turns a full queue
  into honest backpressure instead of unbounded buffering.
* ``dispatch_async`` — an awaitable dispatcher (the
  :class:`repro.serve.workers.WorkerPool` mode).  Raising
  ``max_concurrent`` lets the collector pipeline up to that many
  batches into the pool concurrently, so distinct batch keys (and
  spilled groups of one hot key) run on different worker processes in
  parallel; admission stays bounded by the queue plus the pool's own
  per-worker depth accounting.

Failure handling follows :class:`repro.faults.RetryPolicy`: a group
whose dispatch raises (or exceeds ``task_timeout_s``), or whose result
batch fails the :func:`repro.serve.workers.validate_results` shape
check (a corrupted response), is retried with exponential backoff;
exhausted retries fail that group's requests with the dispatch error,
never the whole service.

Deadlines travel with the work: the async plane forwards each item's
absolute deadline to the pool so workers abandon already-expired
positions (returned as the :data:`~repro.serve.workers.EXPIRED`
sentinel, surfaced here as the same ``deadline exceeded`` timeout the
pre-dispatch expiry check raises).

Telemetry (``repro.obs``): ``serve.queue_depth`` gauge,
``serve.batches`` / ``serve.batched_requests`` counters (their ratio is
the mean batch size), a ``serve.batch_size_le_N`` histogram,
``serve.dispatch_retries`` / ``serve.dispatch_failures``, and one
``serve.batch`` span per dispatched group.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.faults.retry import RetryPolicy
from repro.obs import get_tracer
from repro.serve.workers import EXPIRED, validate_results

#: Histogram bucket upper bounds for the batch-size distribution.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32)


class QueueFull(Exception):
    """Admission queue at capacity — reject with 429 semantics."""


class BatcherClosed(Exception):
    """The batcher is draining/closed and accepts no new work."""


@dataclass
class PendingItem:
    """One admitted request waiting for (or undergoing) dispatch."""

    key: Hashable                    # batch-compatibility key
    payload: Any                     # handler input (request params)
    future: "asyncio.Future[Any]"    # resolves to the handler output
    deadline_t: Optional[float]      # loop-clock deadline, None = no deadline
    enqueued_t: float = 0.0

    def expired(self, now: float) -> bool:
        return self.deadline_t is not None and now >= self.deadline_t

    def abandoned(self) -> bool:
        return self.future.done()     # cancelled or already failed


class MicroBatcher:
    """Coalesces :class:`PendingItem` submissions into dispatched batches.

    ``dispatch(key, payloads)`` is a synchronous callable returning one
    result per payload (or raising); it runs on ``executor`` via the
    event loop.  Must be constructed and used on a running loop.
    """

    def __init__(
        self,
        dispatch: Optional[Callable[[Hashable, Sequence[Any]], Sequence[Any]]] = None,
        *,
        dispatch_async: Optional[
            Callable[[Hashable, Sequence[Any]], Awaitable[Sequence[Any]]]
        ] = None,
        max_batch: int = 16,
        max_linger_s: float = 0.002,
        queue_size: int = 256,
        max_concurrent: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        executor=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_linger_s < 0:
            raise ValueError(f"max_linger_s must be >= 0, got {max_linger_s}")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if (dispatch is None) == (dispatch_async is None):
            raise ValueError("pass exactly one of dispatch / dispatch_async")
        self._dispatch = dispatch
        self._dispatch_async = dispatch_async
        self.max_batch = max_batch
        self.max_linger_s = max_linger_s
        self.max_concurrent = max_concurrent
        self._queue: "asyncio.Queue[PendingItem]" = asyncio.Queue(maxsize=queue_size)
        self.retry_policy = retry_policy or RetryPolicy(
            task_timeout_s=300.0, max_retries=1, backoff_s=0.01
        )
        self._executor = executor
        self._closed = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._task: Optional[asyncio.Task] = None
        self._inflight: set = set()          # concurrent _process tasks
        self._pending_batch = False          # collected but not yet processing
        self._slots: Optional[asyncio.Semaphore] = None

    # -- admission -----------------------------------------------------

    def submit(self, key: Hashable, payload: Any,
               deadline_t: Optional[float] = None) -> "asyncio.Future[Any]":
        """Admit one request; raises :class:`QueueFull`/:class:`BatcherClosed`."""
        if self._closed:
            raise BatcherClosed("batcher is draining")
        loop = asyncio.get_running_loop()
        item = PendingItem(
            key=key, payload=payload, future=loop.create_future(),
            deadline_t=deadline_t, enqueued_t=loop.time(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            raise QueueFull(
                f"admission queue at capacity ({self._queue.maxsize})"
            ) from None
        self._idle.clear()
        get_tracer().gauge("serve.queue_depth", self._queue.qsize())
        return item.future

    def depth(self) -> int:
        return self._queue.qsize()

    # -- the collector loop --------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Stop admitting, finish everything already admitted, stop."""
        self._closed = True
        await self._idle.wait()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _collect(self) -> List[PendingItem]:
        """One batch: first waiter + whoever arrives within the linger."""
        first = await self._queue.get()
        batch = [first]
        loop = asyncio.get_running_loop()
        linger_until = loop.time() + self.max_linger_s
        while len(batch) < self.max_batch:
            timeout = linger_until - loop.time()
            if timeout <= 0:
                # Linger over; keep draining only what is already queued.
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
                continue
            try:
                batch.append(await asyncio.wait_for(self._queue.get(), timeout))
            except asyncio.TimeoutError:
                break
        get_tracer().gauge("serve.queue_depth", self._queue.qsize())
        return batch

    async def _run(self) -> None:
        if self.max_concurrent > 1 and self._slots is None:
            self._slots = asyncio.Semaphore(self.max_concurrent)
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect()
            if self.max_concurrent == 1:
                # Sequential plane: one batch in flight, the queue is
                # the whole backpressure story.
                try:
                    await self._process(batch)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    for item in batch:
                        if not item.future.done():
                            item.future.set_exception(exc)
                finally:
                    self._maybe_idle()
                continue
            # Pipelined plane: hand the batch to a tracked task so the
            # collector can assemble the next one while this dispatches.
            # _pending_batch keeps drain() honest in the window between
            # collecting the batch and the task existing.
            self._pending_batch = True
            try:
                await self._slots.acquire()
                task = loop.create_task(self._process_tracked(batch))
                self._inflight.add(task)
                task.add_done_callback(self._on_process_done)
            finally:
                self._pending_batch = False

    async def _process_tracked(self, batch: List[PendingItem]) -> None:
        try:
            await self._process(batch)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
        finally:
            self._slots.release()

    def _on_process_done(self, task: "asyncio.Task") -> None:
        self._inflight.discard(task)
        self._maybe_idle()

    def _maybe_idle(self) -> None:
        if self._queue.empty() and not self._inflight and not self._pending_batch:
            self._idle.set()

    async def _process(self, batch: List[PendingItem]) -> None:
        tracer = get_tracer()
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[PendingItem] = []
        for item in batch:
            if item.abandoned():
                continue
            if item.expired(now):
                item.future.set_exception(asyncio.TimeoutError("deadline exceeded"))
                tracer.add("serve.deadline_expirations")
                continue
            live.append(item)
        if not live:
            return
        groups: Dict[Hashable, List[PendingItem]] = {}
        for item in live:
            groups.setdefault(item.key, []).append(item)
        if self.max_concurrent == 1 or len(groups) == 1:
            for key, items in groups.items():
                await self._dispatch_group(key, items)
        else:
            # Distinct keys route to distinct workers — ship them all
            # at once so a mixed batch spreads across the pool.
            await asyncio.gather(*(
                self._dispatch_group(key, items)
                for key, items in groups.items()
            ))

    async def _dispatch_group(self, key: Hashable,
                              items: List[PendingItem]) -> None:
        tracer = get_tracer()
        size = len(items)
        tracer.add("serve.batches")
        tracer.add("serve.batched_requests", size)
        for bucket in BATCH_SIZE_BUCKETS:
            if size <= bucket:
                tracer.add(f"serve.batch_size_le_{bucket}")
                break
        else:
            tracer.add("serve.batch_size_le_inf")

        loop = asyncio.get_running_loop()
        payloads = [item.payload for item in items]
        deadlines = [item.deadline_t for item in items]
        policy = self.retry_policy
        attempt = 0
        with tracer.span("serve.batch", size=size):
            while True:
                try:
                    if self._dispatch_async is not None:
                        results = await asyncio.wait_for(
                            self._dispatch_async(key, payloads, deadlines),
                            timeout=policy.task_timeout_s,
                        )
                    else:
                        results = await asyncio.wait_for(
                            loop.run_in_executor(
                                self._executor, self._dispatch, key, payloads
                            ),
                            timeout=policy.task_timeout_s,
                        )
                    # Shape-check inside the retry loop: a corrupted
                    # response (short batch, junk bodies) raises a
                    # retryable CorruptResponse and re-dispatches.
                    validate_results(key, results, size)
                    break
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    attempt += 1
                    if attempt > policy.max_retries or not _retryable(exc):
                        tracer.add("serve.dispatch_failures")
                        for item in items:
                            if not item.future.done():
                                item.future.set_exception(exc)
                        return
                    tracer.add("serve.dispatch_retries")
                    delay = policy.backoff_for(attempt)
                    if delay > 0:
                        await asyncio.sleep(delay)
        for item, result in zip(items, results):
            if item.future.done():
                continue
            if isinstance(result, str) and result == EXPIRED:
                tracer.add("serve.deadline_expirations")
                item.future.set_exception(
                    asyncio.TimeoutError("deadline exceeded")
                )
            else:
                item.future.set_result(result)


def _retryable(exc: BaseException) -> bool:
    """Client errors are final; timeouts and transient faults retry."""
    return not isinstance(exc, (ValueError, KeyError, TypeError))
