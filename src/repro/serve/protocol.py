"""Wire protocol of the prediction service: NDJSON over a byte stream.

One JSON object per line in both directions.  Requests::

    {"id": "c1-0", "op": "predict", "params": {"workload": "EP",
     "arch": "p7", "level": null}, "deadline_ms": 5000}

Operations: ``predict`` (best SMT level for a workload), ``sweep`` (a
catalog slice), ``score`` (SMTsm from raw counter readings), ``ping``.
Responses echo the request id::

    {"id": "c1-0", "ok": true, "result": {...}, "batch_size": 4}
    {"id": "c1-0", "ok": false,
     "error": {"code": "overloaded", "message": "...", "retry_after_ms": 50}}

Error codes (``docs/serving.md`` documents the semantics):

* ``invalid_request`` — unparseable line or unknown/malformed fields;
* ``overloaded``      — admission queue full; honour ``retry_after_ms``
  (the 429 of this protocol);
* ``deadline_exceeded`` — the request's deadline elapsed before a
  result could be produced;
* ``shutting_down``   — server is draining; retry against another
  instance (carries ``retry_after_ms`` too);
* ``cancelled``       — the request was abandoned (connection closed);
* ``internal``        — the handler failed after exhausting retries.

This module is deliberately dependency-free (stdlib only): it is shared
verbatim by the asyncio server and the blocking client.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

#: Operations the service accepts.
OPS = ("predict", "sweep", "score", "ping")

#: Error codes (see module docstring).
ERR_INVALID = "invalid_request"
ERR_OVERLOADED = "overloaded"
ERR_DEADLINE = "deadline_exceeded"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_CANCELLED = "cancelled"
ERR_INTERNAL = "internal"

#: Codes a client may retry after backing off.
RETRYABLE_CODES = (ERR_OVERLOADED, ERR_SHUTTING_DOWN, ERR_INTERNAL)


class ProtocolError(Exception):
    """A malformed request; maps to an ``invalid_request`` response."""

    def __init__(self, message: str, request_id: Optional[str] = None):
        super().__init__(message)
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """One parsed request."""

    id: str
    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    deadline_ms: Optional[float] = None


def parse_request(raw: Union[bytes, str, Dict[str, Any]]) -> Request:
    """Parse and validate one request line (or an already-decoded dict)."""
    if isinstance(raw, (bytes, str)):
        try:
            obj = json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"request is not valid JSON: {exc}") from None
    else:
        obj = raw
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    request_id = obj.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request must carry a non-empty string 'id'")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {OPS}", request_id=request_id
        )
    params = obj.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object", request_id=request_id)
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise ProtocolError(
                "'deadline_ms' must be a number", request_id=request_id
            ) from None
        if deadline_ms < 0:
            raise ProtocolError(
                "'deadline_ms' must be >= 0", request_id=request_id
            )
    return Request(id=request_id, op=op, params=params, deadline_ms=deadline_ms)


def response_ok(request_id: str, result: Any, **meta: Any) -> Dict[str, Any]:
    """A success response (``meta`` lands as extra top-level fields)."""
    response = {"id": request_id, "ok": True, "result": result}
    response.update(meta)
    return response


def response_error(
    request_id: Optional[str],
    code: str,
    message: str,
    *,
    retry_after_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """An error response; ``retry_after_ms`` only for retryable codes."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return {"id": request_id, "ok": False, "error": error}


def encode(response: Dict[str, Any]) -> bytes:
    """One response as a wire line (newline-terminated UTF-8)."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")
