"""Liveness supervision for the worker pool: catching the silent failures.

Crash containment (``repro.serve.workers``) handles workers that *die*
— the pipe EOFs, the reader notices, jobs fail retryable and the worker
respawns.  This module handles the strictly worse failure: a worker
that is alive but **silent**.  A deadlocked solver, a runaway C loop
holding the GIL, an NFS stall — the process exists, the pipe stays
open, and nothing ever comes back.  Without supervision every job
routed there waits out its full client deadline, and a sticky batch key
pinned to the hung worker turns one bad process into an outage for one
whole system's traffic.

The :class:`WorkerWatchdog` closes that hole with a per-worker
*progress clock*: ``last_progress_t`` advances on every dispatch and
every completion, so a worker is declared **hung** exactly when it
holds in-flight jobs and has made no progress for ``hang_timeout_s``.
An idle worker is never hung, however long it sits — silence with
nothing to say is health.

The hang state machine (see ``docs/robustness.md``)::

    healthy ──no progress & jobs inflight > hang_timeout_s──▶ hung
      ▲                                                         │
      │                              fail jobs (WorkerHung), kill
      │                                                         ▼
    serving ◀──respawn (restart budget ok)─── dead ──EOF──▶ _on_crash
                                                │
                        over budget in window   ▼
                             quarantined (exponential re-admit)

Declaring a worker hung does three things, in order: every pending job
on it fails with retryable :class:`~repro.serve.workers.WorkerHung`
(``serve.watchdog.hangs``), so the batcher re-dispatches onto healthy
siblings immediately instead of waiting out deadlines; the process is
killed (``serve.watchdog.kills``), which turns the hang into an
ordinary crash; and the existing EOF → ``_on_crash`` path respawns it
and applies the restart budget — a worker that keeps hanging gets
quarantined exactly like one that keeps crashing.

The watchdog is a single asyncio task on the dispatcher loop, polling
at a fraction of ``hang_timeout_s``; detection latency is at most
``hang_timeout_s + poll_interval_s``.  All state it touches is
loop-thread-owned, so there is no locking.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.obs import get_tracer
from repro.serve.workers import WorkerHung, WorkerPool

__all__ = ["WorkerWatchdog"]


class WorkerWatchdog:
    """Hang detector and executioner for a :class:`WorkerPool`.

    Construct with the pool, :meth:`start` on the running loop,
    :meth:`stop` before the pool closes.  ``hang_timeout_s`` is the
    silence budget: a worker with in-flight jobs and no progress for
    that long is failed and killed.  Size it well above the slowest
    legitimate batch (the default 30 s suits cold full-catalog sweeps;
    chaos tests run it at fractions of a second).
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        hang_timeout_s: float = 30.0,
        poll_interval_s: Optional[float] = None,
    ):
        if hang_timeout_s <= 0:
            raise ValueError(
                f"hang_timeout_s must be > 0, got {hang_timeout_s}"
            )
        self.pool = pool
        self.hang_timeout_s = hang_timeout_s
        self.poll_interval_s = (
            poll_interval_s if poll_interval_s is not None
            else max(0.02, hang_timeout_s / 4.0)
        )
        self._task: Optional["asyncio.Task"] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerWatchdog":
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-watchdog"
        )
        return self

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval_s)
            self.sweep()

    # -- detection -----------------------------------------------------

    def sweep(self, now: Optional[float] = None) -> int:
        """One liveness pass; returns how many workers were declared hung.

        Public (and pure event-loop-thread) so tests can drive detection
        deterministically without waiting on the polling task.
        """
        if self.pool._closed:
            return 0
        if now is None:
            now = time.monotonic()
        hung = 0
        for worker in list(self.pool._workers):
            if worker.inflight_jobs <= 0:
                continue
            if now - worker.last_progress_t <= self.hang_timeout_s:
                continue
            self._declare_hung(worker, now)
            hung += 1
        return hung

    def _declare_hung(self, worker, now: float) -> None:
        tracer = get_tracer()
        tracer.add("serve.watchdog.hangs")
        silent_for = now - worker.last_progress_t
        self.pool.fail_worker_jobs(worker, WorkerHung(
            f"no progress for {silent_for:.2f}s "
            f"(hang_timeout_s={self.hang_timeout_s})"
        ))
        # Reset the clock so the next poll tick does not re-declare the
        # same worker while its respawn is still in flight.
        worker.last_progress_t = now
        process = worker.process
        if process is not None and process.is_alive():
            tracer.add("serve.watchdog.kills")
            process.kill()
        # From here the ordinary crash path takes over: the reader
        # thread sees EOF, _on_crash respawns the worker and applies
        # the restart budget / quarantine bookkeeping.
