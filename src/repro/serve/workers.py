"""The sharded worker tier: a process pool behind the micro-batcher.

One asyncio dispatcher process owns admission and coalescing; the
solves run in ``workers`` child processes, so the GIL stops being the
serving ceiling (see ``docs/scaling.md`` for the full architecture and
the capacity model)::

    MicroBatcher ──group──▶ WorkerPool.dispatch(key, payloads)
                               │  route by batch key
                    ┌──────────┼──────────┐
                 worker 0   worker 1   worker N-1     (processes)
                    └── handlers → repro.api → solver ─┘

Three properties the pool preserves:

* **Coalescing survives sharding.**  A dispatched group — requests that
  share one batch key, i.e. one ``(op, arch, n_chips)`` system — is
  shipped to exactly one worker and answered by one vectorized
  ``predict_many`` call there.  Batches are never split across workers.
* **Affinity routing.**  A batch key is pinned to a preferred worker
  the first time it is seen (round-robin over workers), so repeated
  traffic for one system keeps hitting that worker's warm session
  (fitted thresholds, surrogate models, serial-rate memo).  When the
  preferred worker is busy and another is strictly less loaded, the
  group *spills* to the least-loaded worker (``serve.worker.spills``) —
  hot single-key traffic pipelines across the pool instead of queueing
  behind one process.
* **Crash containment.**  A worker that dies mid-job fails only its
  in-flight jobs (with :class:`WorkerCrashed`, which the batcher's
  ``RetryPolicy`` retries) and is respawned immediately
  (``serve.worker.restarts``); the service never goes down with a
  worker.

Per-worker **queue-depth accounting** (``inflight_requests``) feeds the
server's admission control: when the routed worker already holds
``max_inflight_per_worker`` requests, new arrivals for that key are
shed with ``overloaded`` + ``retry_after_ms`` before they are admitted
(``serve.worker.shed``) — backpressure sized for thousands of
connections instead of an unbounded dispatcher backlog.

Workers ship the counter deltas they accumulate per job (run-cache
hits, table solves, schema mismatches...) back with each response; the
dispatcher merges them into its own tracer, so ``repro stats`` sees one
coherent picture across the whole tier.

:class:`HotKeyCache` is the dispatcher-side LRU over *response
payloads* for deterministic operations (``predict``/``score``): a
popular prediction is answered before admission, reaching no worker
and no solver at all, whichever worker computed it first.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import sys
import threading
import traceback
import warnings
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import get_tracer

__all__ = [
    "HotKeyCache",
    "WorkerCrashed",
    "WorkerPool",
    "default_start_method",
    "dispatch_batch",
]

#: Environment override for the pool's multiprocessing start method.
ENV_START_METHOD = "REPRO_SERVE_MP"


def default_start_method() -> str:
    """``fork`` where available (fast, shares the warm import state),
    ``spawn`` elsewhere; override with ``REPRO_SERVE_MP=spawn|fork``."""
    env = os.environ.get(ENV_START_METHOD, "").strip().lower()
    if env in ("fork", "spawn", "forkserver"):
        return env
    return "fork" if sys.platform.startswith("linux") else "spawn"


class WorkerCrashed(Exception):
    """A worker process died with this job in flight (retryable)."""


def dispatch_batch(key: Hashable, payloads: Sequence[Any],
                   defaults: Optional[Mapping[str, Any]]) -> List[Any]:
    """Route one coalesced group to its handler.

    This is the single dispatch routine shared by the in-process
    executor path (``workers=1``) and every pool worker: the op is the
    first element of the batch key, ``defaults`` are the server-level
    session knobs.  Runs synchronously wherever it is called.
    """
    from repro.serve import handlers

    op = key[0]
    tracer = get_tracer()
    with tracer.span("serve.dispatch", op=op, size=len(payloads)):
        if op == "predict":
            return handlers.handle_predict_batch(payloads, defaults)
        if op == "sweep":
            return [handlers.handle_sweep(p, defaults) for p in payloads]
        if op == "score":
            return [handlers.handle_score(p, defaults) for p in payloads]
        if op == "ping":
            return [handlers.handle_ping(p, defaults) for p in payloads]
        raise handlers.HandlerError(f"unroutable op {op!r}")


# -- the worker side ------------------------------------------------------

#: Wire statuses a worker may answer with.
_OK = "ok"
_HANDLER_ERROR = "handler_error"   # client error: re-raised as HandlerError
_ERROR = "error"                   # internal error: re-raised as RuntimeError


def _worker_main(conn, defaults: Dict[str, Any], index: int) -> None:
    """The child process loop: recv (job, key, payloads) → dispatch → send.

    The child detaches from the parent's tracer first (a forked child
    must never share the parent's sink fd) and keeps a fresh in-process
    tracer so each response can carry the counter deltas the job caused.
    """
    from repro.obs import detach_in_subprocess

    tracer = detach_in_subprocess(enabled=True)
    baseline: Dict[str, float] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, key, payloads = message
        try:
            results = dispatch_batch(key, payloads, defaults)
            status, body = _OK, results
        except Exception as exc:
            from repro.serve.handlers import HandlerError

            if isinstance(exc, HandlerError):
                status, body = _HANDLER_ERROR, str(exc)
            else:
                status = _ERROR
                body = "".join(traceback.format_exception_only(exc)).strip()
        counters = tracer.counters()
        delta = {
            name: value - baseline.get(name, 0.0)
            for name, value in counters.items()
            if value != baseline.get(name, 0.0)
        }
        baseline = counters
        try:
            conn.send((job_id, status, body, delta))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


# -- the dispatcher side --------------------------------------------------


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("index", "process", "conn", "reader", "inflight_requests",
                 "inflight_jobs")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.inflight_requests = 0    # requests dispatched, not yet answered
        self.inflight_jobs = 0        # groups dispatched, not yet answered


class WorkerPool:
    """``n_workers`` handler processes behind an async dispatch facade.

    Construct and :meth:`start` on a running event loop; dispatch whole
    coalesced groups with ``await pool.dispatch(key, payloads)``; close
    with :meth:`close` after the batcher has drained.  All routing,
    accounting and crash recovery happen on the event-loop thread (the
    per-worker reader threads only forward completions into the loop).
    """

    def __init__(
        self,
        n_workers: int,
        session_defaults: Optional[Mapping[str, Any]] = None,
        *,
        max_inflight_per_worker: int = 64,
        start_method: Optional[str] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.max_inflight_per_worker = max_inflight_per_worker
        self._defaults = dict(session_defaults or {})
        self._ctx = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self._workers: List[_Worker] = []
        self._assignment: Dict[Hashable, int] = {}    # predict keys → worker
        self._assign_rr = itertools.count()
        self._ephemeral_rr = itertools.count()
        self._job_ids = itertools.count(1)
        self._pending: Dict[int, Tuple["asyncio.Future", _Worker, int]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        self._loop = asyncio.get_running_loop()
        for index in range(self.n_workers):
            worker = _Worker(index)
            self._spawn(worker)
            self._workers.append(worker)
        return self

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        with warnings.catch_warnings():
            # Python >= 3.12 warns on fork from a multi-threaded process
            # (the BackgroundServer path).  The children only ever touch
            # repro + numpy state that is rebuilt on demand, and the
            # spawn method remains one env var away for platforms where
            # fork is genuinely unsafe.
            warnings.simplefilter("ignore", DeprecationWarning)
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._defaults, worker.index),
                name=f"repro-serve-w{worker.index}",
                daemon=True,
            )
            process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.reader = threading.Thread(
            target=self._reader_loop, args=(worker, parent_conn),
            name=f"repro-serve-w{worker.index}-reader", daemon=True,
        )
        worker.reader.start()

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop every worker (sentinel, join, then terminate stragglers)."""
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():  # pragma: no cover - stuck handler
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- routing and accounting ----------------------------------------

    def _sticky(self, key: Hashable) -> bool:
        # Predict keys name a system and recur; other ops carry a
        # per-request identity in their key, so pinning them would only
        # grow the assignment map without ever producing a repeat hit.
        return isinstance(key, tuple) and bool(key) and key[0] == "predict"

    def route(self, key: Hashable) -> _Worker:
        """The worker a group with ``key`` would run on right now.

        Sticky keys go to their assigned worker unless it is busy and
        another worker is strictly less loaded (a *spill*); ephemeral
        keys round-robin.  Pure function of current inflight state —
        calling it does not commit anything.
        """
        if not self._sticky(key):
            return self._workers[next(self._ephemeral_rr) % self.n_workers]
        index = self._assignment.get(key)
        if index is None:
            index = self._assignment[key] = (
                next(self._assign_rr) % self.n_workers
            )
        preferred = self._workers[index]
        if preferred.inflight_jobs == 0:
            return preferred
        least = min(self._workers, key=lambda w: w.inflight_requests)
        if least.inflight_requests < preferred.inflight_requests:
            get_tracer().add("serve.worker.spills")
            return least
        return preferred

    def load(self, key: Hashable) -> int:
        """Dispatched-but-unanswered requests on the worker ``key`` routes
        to — the quantity admission control sheds on."""
        if self._sticky(key):
            index = self._assignment.get(key)
            if index is not None:
                return self._workers[index].inflight_requests
        return min(w.inflight_requests for w in self._workers)

    def overloaded(self, key: Hashable) -> bool:
        """Whether admitting another request for ``key`` should be shed."""
        return self.load(key) >= self.max_inflight_per_worker

    def depths(self) -> List[int]:
        return [w.inflight_requests for w in self._workers]

    # -- dispatch ------------------------------------------------------

    async def dispatch(self, key: Hashable, payloads: Sequence[Any]) -> List[Any]:
        """Run one coalesced group on one worker; returns handler results.

        Raises :class:`WorkerCrashed` if the worker dies mid-job (the
        batcher's retry policy re-dispatches, by then onto the respawned
        or a sibling worker), :class:`repro.serve.handlers.HandlerError`
        for client errors, ``RuntimeError`` for handler failures.
        """
        if self._closed:
            raise WorkerCrashed("worker pool is closed")
        worker = self.route(key)
        job_id = next(self._job_ids)
        future = self._loop.create_future()
        self._pending[job_id] = (future, worker, len(payloads))
        worker.inflight_requests += len(payloads)
        worker.inflight_jobs += 1
        tracer = get_tracer()
        tracer.add("serve.worker.dispatched_batches")
        tracer.add("serve.worker.dispatched_requests", len(payloads))
        tracer.add(f"serve.worker.w{worker.index}.batches")
        tracer.add(f"serve.worker.w{worker.index}.requests", len(payloads))
        if tracer.enabled:
            tracer.gauge("serve.worker.inflight", sum(self.depths()))
        try:
            worker.conn.send((job_id, key, list(payloads)))
        except (BrokenPipeError, OSError):
            self._settle(job_id)
            raise WorkerCrashed(
                f"worker {worker.index} unreachable at dispatch"
            ) from None
        try:
            return await future
        finally:
            # Cancellation (deadline/timeout) must not leak accounting:
            # the reader settles completed jobs, but a job the worker
            # will never answer (crash path) is settled by _on_crash.
            if future.cancelled() and job_id in self._pending:
                self._settle(job_id)

    def _settle(self, job_id: int) -> Optional[Tuple["asyncio.Future", _Worker, int]]:
        entry = self._pending.pop(job_id, None)
        if entry is not None:
            _, worker, n_requests = entry
            worker.inflight_requests -= n_requests
            worker.inflight_jobs -= 1
        return entry

    # -- completions (reader thread → event loop) ----------------------

    def _reader_loop(self, worker: _Worker, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
        # fallthrough: the pipe is gone — either close() or a crash
            else:
                try:
                    self._loop.call_soon_threadsafe(self._complete, message)
                except RuntimeError:   # loop already closed (shutdown)
                    break
                continue
        if not self._closed:
            try:
                self._loop.call_soon_threadsafe(self._on_crash, worker)
            except RuntimeError:
                pass

    def _complete(self, message) -> None:
        job_id, status, body, counter_delta = message
        entry = self._settle(job_id)
        tracer = get_tracer()
        if tracer.enabled:
            for name, value in counter_delta.items():
                tracer.add(name, value)
            tracer.gauge("serve.worker.inflight", sum(self.depths()))
        if entry is None:
            return                     # cancelled and already settled
        future = entry[0]
        if future.done():
            return
        if status == _OK:
            future.set_result(body)
        elif status == _HANDLER_ERROR:
            from repro.serve.handlers import HandlerError

            future.set_exception(HandlerError(body))
        else:
            future.set_exception(RuntimeError(body))

    def _on_crash(self, worker: _Worker) -> None:
        """Fail the dead worker's jobs, respawn it, keep serving."""
        if self._closed:
            return
        get_tracer().add("serve.worker.restarts")
        dead = [
            job_id for job_id, (_, w, _) in self._pending.items() if w is worker
        ]
        for job_id in dead:
            entry = self._settle(job_id)
            if entry is not None and not entry[0].done():
                entry[0].set_exception(WorkerCrashed(
                    f"worker {worker.index} died with this job in flight"
                ))
        try:
            worker.process.join(timeout=1.0)
        except (OSError, AssertionError):  # pragma: no cover - already reaped
            pass
        self._spawn(worker)


# -- the dispatcher-side hot-key cache ------------------------------------


class HotKeyCache:
    """Bounded LRU over response payloads for deterministic operations.

    Keyed on the canonical JSON of ``(op, params)`` — the same inputs
    the handlers see — so a hit is exactly a repeat of an already
    answered request under this server's session defaults.  Only
    ``predict`` and ``score`` results are admitted: both are pure
    functions of their parameters (a seeded simulation / a closed-form
    metric), whereas ``sweep`` responses are large and ``ping`` is
    cheaper than the lookup.

    Telemetry: ``serve.hotkeys.hits`` / ``serve.hotkeys.misses`` /
    ``serve.hotkeys.evictions``, plus a ``serve.hotkeys.size`` gauge.
    """

    #: Operations whose responses may be cached.
    CACHEABLE_OPS = ("predict", "score")

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    @staticmethod
    def cache_key(op: str, params: Mapping[str, Any]) -> Optional[str]:
        """The canonical key, or ``None`` when the request is uncacheable."""
        if op not in HotKeyCache.CACHEABLE_OPS:
            return None
        try:
            return json.dumps({"op": op, "params": params}, sort_keys=True)
        except (TypeError, ValueError):
            return None

    def get(self, op: str, params: Mapping[str, Any]) -> Optional[Any]:
        if self.max_entries <= 0:
            return None
        key = self.cache_key(op, params)
        if key is None:
            return None
        tracer = get_tracer()
        hit = self._entries.get(key)
        if hit is None:
            tracer.add("serve.hotkeys.misses")
            return None
        self._entries.move_to_end(key)
        tracer.add("serve.hotkeys.hits")
        return hit

    def put(self, op: str, params: Mapping[str, Any], result: Any) -> None:
        if self.max_entries <= 0:
            return
        key = self.cache_key(op, params)
        if key is None:
            return
        tracer = get_tracer()
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            tracer.add("serve.hotkeys.evictions")
        if tracer.enabled:
            tracer.gauge("serve.hotkeys.size", len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)
