"""The sharded worker tier: a process pool behind the micro-batcher.

One asyncio dispatcher process owns admission and coalescing; the
solves run in ``workers`` child processes, so the GIL stops being the
serving ceiling (see ``docs/scaling.md`` for the full architecture and
the capacity model)::

    MicroBatcher ──group──▶ WorkerPool.dispatch(key, payloads)
                               │  route by batch key
                    ┌──────────┼──────────┐
                 worker 0   worker 1   worker N-1     (processes)
                    └── handlers → repro.api → solver ─┘

Three properties the pool preserves:

* **Coalescing survives sharding.**  A dispatched group — requests that
  share one batch key, i.e. one ``(op, arch, n_chips)`` system — is
  shipped to exactly one worker and answered by one vectorized
  ``predict_many`` call there.  Batches are never split across workers.
* **Affinity routing.**  A batch key is pinned to a preferred worker
  the first time it is seen (round-robin over workers), so repeated
  traffic for one system keeps hitting that worker's warm session
  (fitted thresholds, surrogate models, serial-rate memo).  When the
  preferred worker is busy and another is strictly less loaded, the
  group *spills* to the least-loaded worker (``serve.worker.spills``) —
  hot single-key traffic pipelines across the pool instead of queueing
  behind one process.
* **Crash containment.**  A worker that dies mid-job fails only its
  in-flight jobs (with :class:`WorkerCrashed`, which the batcher's
  ``RetryPolicy`` retries) and is respawned immediately
  (``serve.worker.restarts``); the service never goes down with a
  worker.  A worker that is alive but *silent* — hung on a job past
  ``hang_timeout_s`` — is detected by the
  :class:`repro.serve.watchdog.WorkerWatchdog`, which fails its jobs
  with retryable :class:`WorkerHung` and kills it so the same respawn
  path takes over.  Workers that crash repeatedly inside
  ``restart_window_s`` blow their ``restart_budget`` and are
  *quarantined*: still respawned, but routed around for an
  exponentially growing re-admit interval
  (``serve.watchdog.quarantines``).

Two more supervision hooks run through the pool:

* **Deadline propagation.**  ``dispatch`` ships each request's absolute
  monotonic deadline with the job; the worker answers already-expired
  positions with the :data:`EXPIRED` sentinel instead of solving them
  (``serve.worker.deadline_abandoned``) — work whose client has already
  timed out never reaches a solver.
* **Chaos injection.**  A :class:`repro.faults.ChaosConfig` handed to
  the pool is executed *inside* each worker by a seeded
  :class:`repro.faults.ChaosPlan` (hangs, crashes, slow jobs, response
  corruption); the dispatcher-side :func:`validate_results` shape check
  turns corrupted responses into retryable :class:`CorruptResponse`.

Per-worker **queue-depth accounting** (``inflight_requests``) feeds the
server's admission control: when the routed worker already holds
``max_inflight_per_worker`` requests, new arrivals for that key are
shed with ``overloaded`` + ``retry_after_ms`` before they are admitted
(``serve.worker.shed``) — backpressure sized for thousands of
connections instead of an unbounded dispatcher backlog.

Workers ship the counter deltas they accumulate per job (run-cache
hits, table solves, schema mismatches...) back with each response; the
dispatcher merges them into its own tracer, so ``repro stats`` sees one
coherent picture across the whole tier.

:class:`HotKeyCache` is the dispatcher-side LRU over *response
payloads* for deterministic operations (``predict``/``score``): a
popular prediction is answered before admission, reaching no worker
and no solver at all, whichever worker computed it first.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import sys
import threading
import time
import traceback
import warnings
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import get_tracer
from repro.util.config import env_str

__all__ = [
    "CorruptResponse",
    "EXPIRED",
    "HotKeyCache",
    "WorkerCrashed",
    "WorkerHung",
    "WorkerPool",
    "default_start_method",
    "dispatch_batch",
    "validate_results",
]

#: Environment override for the pool's multiprocessing start method.
ENV_START_METHOD = "REPRO_SERVE_MP"


def default_start_method() -> str:
    """``fork`` where available (fast, shares the warm import state),
    ``spawn`` elsewhere; override with ``REPRO_SERVE_MP=spawn|fork``."""
    env = env_str(ENV_START_METHOD).lower()
    if env in ("fork", "spawn", "forkserver"):
        return env
    return "fork" if sys.platform.startswith("linux") else "spawn"


class WorkerCrashed(Exception):
    """A worker process died with this job in flight (retryable)."""


class WorkerHung(Exception):
    """The watchdog declared this job's worker hung (retryable)."""


class CorruptResponse(Exception):
    """A worker answered with a malformed result batch (retryable)."""


#: Sentinel a worker returns in place of a result whose client deadline
#: had already passed when the job reached it.  Handlers only ever
#: return mappings, so a module-qualified marker string is unambiguous
#: on the wire (and picklable, unlike a sentinel object identity).
EXPIRED = "__repro.serve.expired__"


def validate_results(key: Hashable, results: Any, expected: int) -> List[Any]:
    """Check a worker's result batch for shape before it is fanned out.

    A well-formed response is a list with one element per payload, each
    element a mapping (every handler returns dicts) or the
    :data:`EXPIRED` deadline sentinel.  Anything else — a short batch
    from a torn frame, junk bodies from a corrupted write — raises
    :class:`CorruptResponse`, which the batcher's retry policy treats
    as retryable (the re-dispatch re-solves; handlers are pure).
    """
    if not isinstance(results, list) or len(results) != expected:
        got = len(results) if isinstance(results, list) else type(results).__name__
        get_tracer().add("serve.worker.corrupt_responses")
        raise CorruptResponse(
            f"group {key!r}: expected {expected} results, got {got}"
        )
    for item in results:
        if item == EXPIRED or isinstance(item, Mapping):
            continue
        get_tracer().add("serve.worker.corrupt_responses")
        raise CorruptResponse(
            f"group {key!r}: malformed result of type {type(item).__name__}"
        )
    return results


def dispatch_batch(key: Hashable, payloads: Sequence[Any],
                   defaults: Optional[Mapping[str, Any]]) -> List[Any]:
    """Route one coalesced group to its handler.

    This is the single dispatch routine shared by the in-process
    executor path (``workers=1``) and every pool worker: the op is the
    first element of the batch key, ``defaults`` are the server-level
    session knobs.  Runs synchronously wherever it is called.
    """
    from repro.serve import handlers

    op = key[0]
    tracer = get_tracer()
    with tracer.span("serve.dispatch", op=op, size=len(payloads)):
        if op == "predict":
            return handlers.handle_predict_batch(payloads, defaults)
        if op == "sweep":
            return [handlers.handle_sweep(p, defaults) for p in payloads]
        if op == "score":
            return [handlers.handle_score(p, defaults) for p in payloads]
        if op == "ping":
            return [handlers.handle_ping(p, defaults) for p in payloads]
        raise handlers.HandlerError(f"unroutable op {op!r}")


# -- the worker side ------------------------------------------------------

#: Wire statuses a worker may answer with.
_OK = "ok"
_HANDLER_ERROR = "handler_error"   # client error: re-raised as HandlerError
_ERROR = "error"                   # internal error: re-raised as RuntimeError


def _run_job(key: Hashable, payloads: Sequence[Any],
             deadlines: Optional[Sequence[Optional[float]]],
             defaults: Optional[Mapping[str, Any]]) -> List[Any]:
    """Dispatch one job, abandoning payloads whose deadline has passed.

    Deadlines are absolute ``time.monotonic()`` times (CLOCK_MONOTONIC
    is system-wide on every platform the pool forks on, so the parent's
    loop clock and the child's clock agree).  Expired positions are
    answered with :data:`EXPIRED` without touching a handler; live
    positions dispatch as one (smaller) coalesced batch.
    """
    if not deadlines:
        return dispatch_batch(key, payloads, defaults)
    now = time.monotonic()
    live = [i for i, d in enumerate(deadlines) if d is None or d > now]
    abandoned = len(payloads) - len(live)
    if abandoned:
        get_tracer().add("serve.worker.deadline_abandoned", abandoned)
    if not live:
        return [EXPIRED] * len(payloads)
    if abandoned == 0:
        return dispatch_batch(key, payloads, defaults)
    answered = dispatch_batch(key, [payloads[i] for i in live], defaults)
    results: List[Any] = [EXPIRED] * len(payloads)
    for position, result in zip(live, answered):
        results[position] = result
    return results


def _worker_main(conn, defaults: Dict[str, Any], index: int,
                 chaos: Optional[Dict[str, Any]] = None,
                 generation: int = 0) -> None:
    """The child loop: recv (job, key, payloads, deadlines) → dispatch → send.

    The child detaches from the parent's tracer first (a forked child
    must never share the parent's sink fd) and keeps a fresh in-process
    tracer so each response can carry the counter deltas the job caused.
    A chaos config (shipped as a plain dict so spawn-mode pickling stays
    trivial) arms a per-worker :class:`repro.faults.ChaosPlan`;
    ``generation`` counts respawns so each incarnation draws a fresh
    chaos schedule instead of replaying its predecessor's.
    """
    from repro.obs import detach_in_subprocess

    tracer = detach_in_subprocess(enabled=True)
    plan = None
    if chaos:
        from repro.faults.chaos import ChaosConfig, ChaosPlan

        config = ChaosConfig.from_dict(chaos)
        if config.any_chaos:
            plan = ChaosPlan(config, index, generation)
    baseline: Dict[str, float] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, key, payloads, deadlines = message
        try:
            if plan is not None:
                plan.before_job()
            results = _run_job(key, payloads, deadlines, defaults)
            if plan is not None:
                results = plan.maybe_corrupt(results)
            status, body = _OK, results
        except Exception as exc:
            from repro.serve.handlers import HandlerError

            if isinstance(exc, HandlerError):
                status, body = _HANDLER_ERROR, str(exc)
            else:
                status = _ERROR
                body = "".join(traceback.format_exception_only(exc)).strip()
        counters = tracer.counters()
        delta = {
            name: value - baseline.get(name, 0.0)
            for name, value in counters.items()
            if value != baseline.get(name, 0.0)
        }
        baseline = counters
        try:
            conn.send((job_id, status, body, delta))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


# -- the dispatcher side --------------------------------------------------


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("index", "process", "conn", "reader", "inflight_requests",
                 "inflight_jobs", "last_progress_t", "restart_times",
                 "quarantined_until", "spawns")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.inflight_requests = 0    # requests dispatched, not yet answered
        self.inflight_jobs = 0        # groups dispatched, not yet answered
        self.last_progress_t = time.monotonic()   # last dispatch or answer
        self.restart_times: List[float] = []      # recent respawn times
        self.quarantined_until = 0.0              # routed around until then
        self.spawns = 0               # incarnations (chaos generation)

    def quarantined(self, now: Optional[float] = None) -> bool:
        return self.quarantined_until > (now if now is not None
                                         else time.monotonic())


class WorkerPool:
    """``n_workers`` handler processes behind an async dispatch facade.

    Construct and :meth:`start` on a running event loop; dispatch whole
    coalesced groups with ``await pool.dispatch(key, payloads)``; close
    with :meth:`close` after the batcher has drained.  All routing,
    accounting and crash recovery happen on the event-loop thread (the
    per-worker reader threads only forward completions into the loop).
    """

    def __init__(
        self,
        n_workers: int,
        session_defaults: Optional[Mapping[str, Any]] = None,
        *,
        max_inflight_per_worker: int = 64,
        start_method: Optional[str] = None,
        chaos: Optional[Any] = None,
        restart_budget: int = 3,
        restart_window_s: float = 60.0,
        quarantine_base_s: float = 1.0,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if restart_budget < 1:
            raise ValueError(f"restart_budget must be >= 1, got {restart_budget}")
        self.n_workers = n_workers
        self.max_inflight_per_worker = max_inflight_per_worker
        self.restart_budget = restart_budget
        self.restart_window_s = restart_window_s
        self.quarantine_base_s = quarantine_base_s
        self._defaults = dict(session_defaults or {})
        self._chaos = chaos.to_dict() if chaos is not None else None
        self._ctx = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self._workers: List[_Worker] = []
        self._assignment: Dict[Hashable, int] = {}    # predict keys → worker
        self._assign_rr = itertools.count()
        self._ephemeral_rr = itertools.count()
        self._job_ids = itertools.count(1)
        self._pending: Dict[int, Tuple["asyncio.Future", _Worker, int]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        self._loop = asyncio.get_running_loop()
        for index in range(self.n_workers):
            worker = _Worker(index)
            self._spawn(worker)
            self._workers.append(worker)
        return self

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        with warnings.catch_warnings():
            # Python >= 3.12 warns on fork from a multi-threaded process
            # (the BackgroundServer path).  The children only ever touch
            # repro + numpy state that is rebuilt on demand, and the
            # spawn method remains one env var away for platforms where
            # fork is genuinely unsafe.
            warnings.simplefilter("ignore", DeprecationWarning)
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._defaults, worker.index, self._chaos,
                      worker.spawns),
                name=f"repro-serve-w{worker.index}",
                daemon=True,
            )
            process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.reader = threading.Thread(
            target=self._reader_loop, args=(worker, parent_conn),
            name=f"repro-serve-w{worker.index}-reader", daemon=True,
        )
        worker.reader.start()
        worker.spawns += 1
        worker.last_progress_t = time.monotonic()

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop every worker (sentinel, join, then terminate stragglers).

        Idempotent: the second and later calls return immediately.  After
        the processes are down the reader threads are joined too; a
        reader that outlives close (a pipe that never delivered its EOF)
        is counted as ``serve.worker.close_leaks`` rather than silently
        abandoned, and any still-pending jobs are failed with
        :class:`WorkerCrashed` so no caller waits on a dead pool.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():  # pragma: no cover - stuck handler
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in self._workers:
            reader = worker.reader
            if reader is None or reader is threading.current_thread():
                continue                   # pragma: no cover - defensive
            reader.join(timeout=2.0)
            if reader.is_alive():          # pragma: no cover - stuck pipe
                get_tracer().add("serve.worker.close_leaks")
        if self._pending and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._fail_leftover_pending)
            except RuntimeError:           # loop already closed
                pass

    def _fail_leftover_pending(self) -> None:
        """Fail any job still pending after close (runs on the loop)."""
        for job_id in list(self._pending):
            entry = self._settle(job_id)
            if entry is not None and not entry[0].done():
                entry[0].set_exception(WorkerCrashed(
                    "worker pool closed with this job in flight"
                ))

    # -- routing and accounting ----------------------------------------

    def _sticky(self, key: Hashable) -> bool:
        # Predict keys name a system and recur; other ops carry a
        # per-request identity in their key, so pinning them would only
        # grow the assignment map without ever producing a repeat hit.
        return isinstance(key, tuple) and bool(key) and key[0] == "predict"

    def _routable(self) -> List[_Worker]:
        """Workers routing may use: the healthy ones, or — when every
        worker is quarantined — all of them (serving degraded beats
        serving nothing; the server layer also sees
        :meth:`all_quarantined` and sheds/brownouts upstream)."""
        now = time.monotonic()
        healthy = [w for w in self._workers if not w.quarantined(now)]
        return healthy or self._workers

    def quarantined_count(self) -> int:
        """How many workers are currently quarantined."""
        now = time.monotonic()
        return sum(1 for w in self._workers if w.quarantined(now))

    def all_quarantined(self) -> bool:
        """Whether every worker is currently quarantined."""
        return self.quarantined_count() == self.n_workers

    def route(self, key: Hashable) -> _Worker:
        """The worker a group with ``key`` would run on right now.

        Sticky keys go to their assigned worker unless it is busy (or
        quarantined) and another healthy worker is strictly less loaded
        (a *spill*); ephemeral keys round-robin over healthy workers.
        Pure function of current inflight/quarantine state — calling it
        does not commit anything.
        """
        routable = self._routable()
        if not self._sticky(key):
            return routable[next(self._ephemeral_rr) % len(routable)]
        index = self._assignment.get(key)
        if index is None:
            index = self._assignment[key] = (
                next(self._assign_rr) % self.n_workers
            )
        preferred = self._workers[index]
        if preferred not in routable:
            least = min(routable, key=lambda w: w.inflight_requests)
            get_tracer().add("serve.worker.spills")
            return least
        if preferred.inflight_jobs == 0:
            return preferred
        least = min(routable, key=lambda w: w.inflight_requests)
        if least.inflight_requests < preferred.inflight_requests:
            get_tracer().add("serve.worker.spills")
            return least
        return preferred

    def load(self, key: Hashable) -> int:
        """Dispatched-but-unanswered requests on the worker ``key`` routes
        to — the quantity admission control sheds on."""
        routable = self._routable()
        if self._sticky(key):
            index = self._assignment.get(key)
            if index is not None:
                worker = self._workers[index]
                if worker in routable:
                    return worker.inflight_requests
        return min(w.inflight_requests for w in routable)

    def overloaded(self, key: Hashable) -> bool:
        """Whether admitting another request for ``key`` should be shed."""
        return self.load(key) >= self.max_inflight_per_worker

    def depths(self) -> List[int]:
        return [w.inflight_requests for w in self._workers]

    # -- dispatch ------------------------------------------------------

    async def dispatch(
        self,
        key: Hashable,
        payloads: Sequence[Any],
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> List[Any]:
        """Run one coalesced group on one worker; returns handler results.

        ``deadlines`` (absolute monotonic times, one per payload, None
        for no deadline) ride along so the worker can abandon
        already-expired positions.  Raises :class:`WorkerCrashed` if the
        worker dies mid-job and :class:`WorkerHung` if the watchdog
        declares it hung (the batcher's retry policy re-dispatches, by
        then onto the respawned or a sibling worker),
        :class:`repro.serve.handlers.HandlerError` for client errors,
        ``RuntimeError`` for handler failures.
        """
        if self._closed:
            raise WorkerCrashed("worker pool is closed")
        worker = self.route(key)
        job_id = next(self._job_ids)
        future = self._loop.create_future()
        self._pending[job_id] = (future, worker, len(payloads))
        worker.inflight_requests += len(payloads)
        worker.inflight_jobs += 1
        worker.last_progress_t = time.monotonic()
        tracer = get_tracer()
        tracer.add("serve.worker.dispatched_batches")
        tracer.add("serve.worker.dispatched_requests", len(payloads))
        tracer.add(f"serve.worker.w{worker.index}.batches")
        tracer.add(f"serve.worker.w{worker.index}.requests", len(payloads))
        if tracer.enabled:
            tracer.gauge("serve.worker.inflight", sum(self.depths()))
        try:
            worker.conn.send((
                job_id, key, list(payloads),
                list(deadlines) if deadlines is not None else None,
            ))
        except (BrokenPipeError, OSError):
            self._settle(job_id)
            raise WorkerCrashed(
                f"worker {worker.index} unreachable at dispatch"
            ) from None
        try:
            return await future
        finally:
            # Cancellation (deadline/timeout) must not leak accounting:
            # the reader settles completed jobs, but a job the worker
            # will never answer (crash path) is settled by _on_crash.
            if future.cancelled() and job_id in self._pending:
                self._settle(job_id)

    def _settle(self, job_id: int) -> Optional[Tuple["asyncio.Future", _Worker, int]]:
        entry = self._pending.pop(job_id, None)
        if entry is not None:
            _, worker, n_requests = entry
            worker.inflight_requests -= n_requests
            worker.inflight_jobs -= 1
        return entry

    # -- completions (reader thread → event loop) ----------------------

    def _reader_loop(self, worker: _Worker, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
        # fallthrough: the pipe is gone — either close() or a crash
            else:
                try:
                    self._loop.call_soon_threadsafe(self._complete, message)
                except RuntimeError:   # loop already closed (shutdown)
                    break
                continue
        if not self._closed:
            try:
                self._loop.call_soon_threadsafe(self._on_crash, worker)
            except RuntimeError:
                pass

    def _complete(self, message) -> None:
        job_id, status, body, counter_delta = message
        entry = self._settle(job_id)
        if entry is not None:
            entry[1].last_progress_t = time.monotonic()
        tracer = get_tracer()
        if tracer.enabled:
            for name, value in counter_delta.items():
                tracer.add(name, value)
            tracer.gauge("serve.worker.inflight", sum(self.depths()))
        if entry is None:
            return                     # cancelled and already settled
        future = entry[0]
        if future.done():
            return
        if status == _OK:
            future.set_result(body)
        elif status == _HANDLER_ERROR:
            from repro.serve.handlers import HandlerError

            future.set_exception(HandlerError(body))
        else:
            future.set_exception(RuntimeError(body))

    def fail_worker_jobs(self, worker: _Worker, exc: Exception) -> int:
        """Fail every pending job on ``worker`` with ``exc`` (loop thread).

        Used by the watchdog before it kills a hung worker, so the
        stranded jobs re-enter the retry path immediately instead of
        waiting out their deadlines.  Returns how many jobs were failed.
        """
        dead = [
            job_id for job_id, (_, w, _) in self._pending.items() if w is worker
        ]
        for job_id in dead:
            entry = self._settle(job_id)
            if entry is not None and not entry[0].done():
                entry[0].set_exception(
                    exc.__class__(f"{exc} (worker {worker.index})")
                )
        return len(dead)

    def _note_restart(self, worker: _Worker) -> None:
        """Quarantine bookkeeping: budget the restarts, back off repeats.

        Each respawn inside ``restart_window_s`` counts against
        ``restart_budget``; once over budget the worker is quarantined —
        routed around — for ``quarantine_base_s`` doubling with every
        further offense (exponential re-admit).  It is still respawned:
        quarantine is a routing state, not a death sentence, so a
        recovered worker re-earns traffic when its sentence lapses.
        """
        now = time.monotonic()
        window = [
            t for t in worker.restart_times if now - t <= self.restart_window_s
        ]
        window.append(now)
        worker.restart_times = window
        overage = len(window) - self.restart_budget
        if overage > 0:
            worker.quarantined_until = (
                now + self.quarantine_base_s * (2.0 ** (overage - 1))
            )
            tracer = get_tracer()
            tracer.add("serve.watchdog.quarantines")
            if tracer.enabled:
                tracer.gauge(
                    "serve.watchdog.quarantined", self.quarantined_count()
                )

    def _on_crash(self, worker: _Worker) -> None:
        """Fail the dead worker's jobs, respawn it, keep serving."""
        if self._closed:
            return
        get_tracer().add("serve.worker.restarts")
        self.fail_worker_jobs(worker, WorkerCrashed(
            "worker died with this job in flight"
        ))
        self._note_restart(worker)
        try:
            worker.process.join(timeout=1.0)
        except (OSError, AssertionError):  # pragma: no cover - already reaped
            pass
        self._spawn(worker)


# -- the dispatcher-side hot-key cache ------------------------------------


class HotKeyCache:
    """Bounded LRU over response payloads for deterministic operations.

    Keyed on the canonical JSON of ``(op, params)`` — the same inputs
    the handlers see — so a hit is exactly a repeat of an already
    answered request under this server's session defaults.  Only
    ``predict`` and ``score`` results are admitted: both are pure
    functions of their parameters (a seeded simulation / a closed-form
    metric), whereas ``sweep`` responses are large and ``ping`` is
    cheaper than the lookup.

    Telemetry: ``serve.hotkeys.hits`` / ``serve.hotkeys.misses`` /
    ``serve.hotkeys.evictions``, plus a ``serve.hotkeys.size`` gauge.
    """

    #: Operations whose responses may be cached.
    CACHEABLE_OPS = ("predict", "score")

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    @staticmethod
    def cache_key(op: str, params: Mapping[str, Any]) -> Optional[str]:
        """The canonical key, or ``None`` when the request is uncacheable."""
        if op not in HotKeyCache.CACHEABLE_OPS:
            return None
        try:
            return json.dumps({"op": op, "params": params}, sort_keys=True)
        except (TypeError, ValueError):
            return None

    def get(self, op: str, params: Mapping[str, Any]) -> Optional[Any]:
        if self.max_entries <= 0:
            return None
        key = self.cache_key(op, params)
        if key is None:
            return None
        tracer = get_tracer()
        hit = self._entries.get(key)
        if hit is None:
            tracer.add("serve.hotkeys.misses")
            return None
        self._entries.move_to_end(key)
        tracer.add("serve.hotkeys.hits")
        return hit

    def put(self, op: str, params: Mapping[str, Any], result: Any) -> None:
        if self.max_entries <= 0:
            return
        key = self.cache_key(op, params)
        if key is None:
            return
        tracer = get_tracer()
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            tracer.add("serve.hotkeys.evictions")
        if tracer.enabled:
            tracer.gauge("serve.hotkeys.size", len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)
