"""repro.serve — the batched SMTsm prediction service.

A stdlib-only asyncio TCP service that answers ``predict`` / ``sweep``
/ ``score`` requests over an NDJSON protocol, coalescing concurrent
requests into dynamic micro-batches that amortize one
``simulate_many`` dispatch across many clients.  With ``workers > 1``
the dispatcher shards those batches across a process pool with
batch-key affinity routing (:mod:`repro.serve.workers`).  See
``docs/serving.md`` for the protocol and batching model, and
``docs/scaling.md`` for the worker tier and capacity planning.

Server side: :class:`ServeConfig`, :class:`PredictionServer`,
:class:`BackgroundServer` (thread helper for tests and benchmarks),
:class:`WorkerPool` / :class:`HotKeyCache` (the scale-out tier).
Client side: :class:`ServeClient` and its typed error hierarchy.
Handlers speak only through :mod:`repro.api`.
"""

from repro.serve.batching import BatcherClosed, MicroBatcher, QueueFull
from repro.serve.workers import (
    HotKeyCache,
    WorkerCrashed,
    WorkerPool,
    dispatch_batch,
)
from repro.serve.client import (
    CancelledError,
    DeadlineExceededError,
    InternalError,
    InvalidRequestError,
    OverloadedError,
    ServeClient,
    ServeError,
    ShuttingDownError,
)
from repro.serve.protocol import OPS, ProtocolError, Request, RETRYABLE_CODES
from repro.serve.server import BackgroundServer, PredictionServer, ServeConfig

__all__ = [
    "BackgroundServer",
    "BatcherClosed",
    "CancelledError",
    "DeadlineExceededError",
    "dispatch_batch",
    "HotKeyCache",
    "InternalError",
    "InvalidRequestError",
    "MicroBatcher",
    "OPS",
    "OverloadedError",
    "PredictionServer",
    "ProtocolError",
    "QueueFull",
    "Request",
    "RETRYABLE_CODES",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShuttingDownError",
    "WorkerCrashed",
    "WorkerPool",
]
