"""repro.serve — the batched SMTsm prediction service.

A stdlib-only asyncio TCP service that answers ``predict`` / ``sweep``
/ ``score`` requests over an NDJSON protocol, coalescing concurrent
requests into dynamic micro-batches that amortize one
``simulate_many`` dispatch across many clients.  With ``workers > 1``
the dispatcher shards those batches across a process pool with
batch-key affinity routing (:mod:`repro.serve.workers`).  See
``docs/serving.md`` for the protocol and batching model,
``docs/scaling.md`` for the worker tier and capacity planning, and
``docs/robustness.md`` for the supervision plane.

Server side: :class:`ServeConfig`, :class:`PredictionServer`,
:class:`BackgroundServer` (thread helper for tests and benchmarks),
:class:`WorkerPool` / :class:`HotKeyCache` (the scale-out tier),
:class:`WorkerWatchdog` (hang detection / quarantine),
:class:`BrownoutGate` / :class:`DegradedResponder` (degraded-mode
answers under sustained overload).
Client side: :class:`ServeClient` and its typed error hierarchy, plus
:class:`ResilientClient` (retry + :class:`CircuitBreaker` + hedging).
Handlers speak only through :mod:`repro.api`.
"""

from repro.serve.batching import BatcherClosed, MicroBatcher, QueueFull
from repro.serve.brownout import BrownoutGate, DegradedResponder
from repro.serve.workers import (
    CorruptResponse,
    HotKeyCache,
    WorkerCrashed,
    WorkerHung,
    WorkerPool,
    dispatch_batch,
)
from repro.serve.client import (
    CancelledError,
    CircuitBreaker,
    CircuitOpenError,
    ClientRetryPolicy,
    DeadlineExceededError,
    InternalError,
    InvalidRequestError,
    OverloadedError,
    ResilientClient,
    ServeClient,
    ServeError,
    ShuttingDownError,
)
from repro.serve.protocol import OPS, ProtocolError, Request, RETRYABLE_CODES
from repro.serve.server import BackgroundServer, PredictionServer, ServeConfig
from repro.serve.watchdog import WorkerWatchdog

__all__ = [
    "BackgroundServer",
    "BatcherClosed",
    "BrownoutGate",
    "CancelledError",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientRetryPolicy",
    "CorruptResponse",
    "DeadlineExceededError",
    "DegradedResponder",
    "dispatch_batch",
    "HotKeyCache",
    "InternalError",
    "InvalidRequestError",
    "MicroBatcher",
    "OPS",
    "OverloadedError",
    "PredictionServer",
    "ProtocolError",
    "QueueFull",
    "Request",
    "ResilientClient",
    "RETRYABLE_CODES",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShuttingDownError",
    "WorkerCrashed",
    "WorkerHung",
    "WorkerPool",
    "WorkerWatchdog",
]
