"""The asyncio prediction server: admission, batching, lifecycle.

Composition — one dispatcher event loop in front of either an
in-process executor (``workers=1``) or a sharded process pool
(``workers>1``, see :mod:`repro.serve.workers` and docs/scaling.md)::

    TCP conn ──parse──▶ hot-key LRU ──▶ admission ──▶ MicroBatcher
       ▲                  │ hit?           │ full/deep?       │
       └───── NDJSON ◀────┘         overloaded(retry-after)   │
                                                   ┌──────────┴─────────┐
                                        workers=1: │          workers>1:│
                                          executor ▼            WorkerPool
                                          handlers ▼        route by batch key
                                         repro.api only    worker 0 … worker N-1

* **Admission** is the micro-batcher's bounded queue plus — under the
  worker pool — per-worker queue-depth accounting
  (``max_inflight_per_worker``); a full queue or a too-deep routed
  worker is answered immediately with an ``overloaded`` error carrying
  ``retry_after_ms`` — the client's cue to back off (429 semantics).
* **Hot-key cache** (pool mode): deterministic ``predict``/``score``
  repeats are answered straight from a dispatcher-side LRU, before
  admission, whichever worker computed them first.
* **Deadlines**: each request may carry ``deadline_ms``; expired
  requests are failed with ``deadline_exceeded`` instead of being
  served late, whether they expire waiting or executing.
* **Cancellation**: a dropped connection cancels that connection's
  pending futures, so abandoned work never occupies a batch slot.
* **Supervision** (pool mode): a
  :class:`repro.serve.watchdog.WorkerWatchdog` kills and respawns hung
  workers (``hang_timeout_s``); repeat offenders are quarantined by the
  pool's restart budget; request deadlines propagate into the workers.
  Chaos injection (``ServeConfig.chaos`` / ``REPRO_SERVE_CHAOS``) tests
  all of it — see :mod:`repro.faults.chaos`.
* **Brownout** (:mod:`repro.serve.brownout`): under *sustained*
  overload or full quarantine, eligible requests are answered by the
  surrogate fast path (flagged ``degraded: true``) instead of shed —
  availability traded against fidelity, bounded by
  ``brownout_max_inflight``.
* **Graceful drain** (:meth:`PredictionServer.stop`): stop accepting
  connections, answer new requests with ``shutting_down``, let every
  admitted request finish and flush, then close.

:class:`BackgroundServer` runs the whole thing on a daemon thread for
tests, benchmarks and the CI smoke job.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.faults.chaos import ENV_SERVE_CHAOS, ChaosConfig
from repro.faults.retry import RetryPolicy
from repro.obs import get_tracer
from repro.serve import handlers
from repro.serve.batching import BatcherClosed, MicroBatcher, QueueFull
from repro.serve.brownout import BrownoutGate, DegradedResponder
from repro.serve import protocol
from repro.serve.protocol import (
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_INVALID,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ProtocolError,
    Request,
    parse_request,
    response_error,
    response_ok,
)
from repro.serve.watchdog import WorkerWatchdog
from repro.serve.workers import (
    ENV_START_METHOD,
    HotKeyCache,
    WorkerPool,
    dispatch_batch,
)
from repro.util.config import dataclass_from_env

__all__ = ["ServeConfig", "PredictionServer", "BackgroundServer"]


def _chaos_from_spec(text: str) -> Optional[ChaosConfig]:
    """Parser for the ``REPRO_SERVE_CHAOS`` env override (empty = off)."""
    if not text.strip():
        return None
    config = ChaosConfig.parse(text)
    return config if config.any_chaos else None


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service can be tuned with (see docs/serving.md)."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral (tests, smoke)
    max_batch: int = 16                 # micro-batch ceiling
    max_linger_ms: float = 2.0          # how long a batch waits for company
    queue_size: int = 256               # admission queue bound
    #: Worker processes running handlers.  1 (the default) keeps the
    #: historical single-process shape: handlers run on an in-process
    #: executor thread.  >1 starts a :class:`repro.serve.workers.WorkerPool`
    #: with batch-key affinity routing (see docs/scaling.md).
    workers: int = 1
    default_deadline_ms: Optional[float] = 30_000.0
    retry_after_ms: float = 50.0        # hint attached to overloaded/shutdown
    drain_timeout_s: float = 30.0       # bound on graceful drain
    #: Pool-mode knobs (ignored when ``workers == 1``).
    max_inflight_per_worker: int = 64   # shed when the routed worker is deeper
    hot_cache_size: int = 1024          # dispatcher LRU entries; 0 disables
    mp_start_method: Optional[str] = None   # fork|spawn; None = platform default
    #: Supervision knobs (pool mode).  The watchdog declares a worker
    #: hung after ``hang_timeout_s`` with jobs in flight and no
    #: progress; more than ``restart_budget`` respawns inside
    #: ``restart_window_s`` quarantines the worker for
    #: ``quarantine_base_s`` (doubling per further offense).
    hang_timeout_s: float = 30.0
    restart_budget: int = 3
    restart_window_s: float = 60.0
    quarantine_base_s: float = 1.0
    #: Fault injection: a :class:`repro.faults.ChaosConfig` executed
    #: inside the pool's workers (None also checks ``REPRO_SERVE_CHAOS``).
    #: Pool mode only — single-process servers have no fleet to chaos.
    chaos: Optional[ChaosConfig] = None
    #: Brownout degradation: when overload signals persist for
    #: ``brownout_hold_s``, eligible requests are answered degraded
    #: (surrogate fast path, ``degraded: true``) instead of shed, at
    #: most ``brownout_max_inflight`` at a time.
    brownout: bool = True
    brownout_hold_s: float = 5.0
    brownout_max_inflight: int = 4
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            task_timeout_s=300.0, max_retries=1, backoff_s=0.01
        )
    )
    #: Session knobs applied to every request (seed, work, use_cache,
    #: threshold, threshold_method) — see :class:`repro.api.Session`.
    session: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_linger_ms < 0:
            raise ValueError(f"max_linger_ms must be >= 0, got {self.max_linger_ms}")
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight_per_worker < 1:
            raise ValueError(
                "max_inflight_per_worker must be >= 1, "
                f"got {self.max_inflight_per_worker}"
            )
        if self.hot_cache_size < 0:
            raise ValueError(
                f"hot_cache_size must be >= 0, got {self.hot_cache_size}"
            )
        if self.hang_timeout_s <= 0:
            raise ValueError(
                f"hang_timeout_s must be > 0, got {self.hang_timeout_s}"
            )
        if self.restart_budget < 1:
            raise ValueError(
                f"restart_budget must be >= 1, got {self.restart_budget}"
            )
        if self.restart_window_s <= 0:
            raise ValueError(
                f"restart_window_s must be > 0, got {self.restart_window_s}"
            )
        if self.quarantine_base_s <= 0:
            raise ValueError(
                f"quarantine_base_s must be > 0, got {self.quarantine_base_s}"
            )
        if self.brownout_hold_s < 0:
            raise ValueError(
                f"brownout_hold_s must be >= 0, got {self.brownout_hold_s}"
            )
        if self.brownout_max_inflight < 1:
            raise ValueError(
                "brownout_max_inflight must be >= 1, "
                f"got {self.brownout_max_inflight}"
            )

    @classmethod
    def from_env(
        cls,
        base: Optional["ServeConfig"] = None,
        *,
        env: Optional[Mapping[str, str]] = None,
    ) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` variables over ``base``.

        Every scalar field maps to ``REPRO_SERVE_<FIELDNAME>``
        (``REPRO_SERVE_MAX_BATCH``, ``REPRO_SERVE_WORKERS``, ...), with
        the two historical short names kept as aliases:
        ``REPRO_SERVE_MP`` for ``mp_start_method`` and
        ``REPRO_SERVE_CHAOS`` (a chaos spec string) for ``chaos``.
        Structured fields (``retry_policy``, ``session``) have no env
        form.  A malformed value raises ``ValueError`` naming the
        variable.
        """
        return dataclass_from_env(
            cls,
            "REPRO_SERVE",
            env=env,
            base=base,
            aliases={
                "mp_start_method": ENV_START_METHOD,
                "chaos": ENV_SERVE_CHAOS,
            },
            parsers={"chaos": _chaos_from_spec},
        )


class PredictionServer:
    """One serving instance; create, :meth:`start`, eventually :meth:`stop`."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional[MicroBatcher] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool: Optional[WorkerPool] = None
        self._hot_cache: Optional[HotKeyCache] = None
        self._watchdog: Optional[WorkerWatchdog] = None
        self._brownout_gate: Optional[BrownoutGate] = None
        self._degraded: Optional[DegradedResponder] = None
        self._draining = False
        self._stopped = asyncio.Event()
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        config = self.config
        if config.workers > 1:
            chaos = config.chaos
            if chaos is None:
                chaos = ChaosConfig.from_env()
            if chaos is not None and not chaos.any_chaos:
                chaos = None
            self._pool = WorkerPool(
                config.workers,
                config.session,
                max_inflight_per_worker=config.max_inflight_per_worker,
                start_method=config.mp_start_method,
                chaos=chaos,
                restart_budget=config.restart_budget,
                restart_window_s=config.restart_window_s,
                quarantine_base_s=config.quarantine_base_s,
            ).start()
            self._watchdog = WorkerWatchdog(
                self._pool, hang_timeout_s=config.hang_timeout_s
            ).start()
            if config.hot_cache_size > 0:
                self._hot_cache = HotKeyCache(config.hot_cache_size)
            self._batcher = MicroBatcher(
                dispatch_async=self._pool.dispatch,
                max_batch=config.max_batch,
                max_linger_s=config.max_linger_ms / 1000.0,
                queue_size=config.queue_size,
                max_concurrent=2 * config.workers,
                retry_policy=config.retry_policy,
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._batcher = MicroBatcher(
                self._dispatch,
                max_batch=config.max_batch,
                max_linger_s=config.max_linger_ms / 1000.0,
                queue_size=config.queue_size,
                retry_policy=config.retry_policy,
                executor=self._executor,
            )
        if config.brownout:
            self._brownout_gate = BrownoutGate(config.brownout_hold_s)
            self._degraded = DegradedResponder(
                config.session, max_inflight=config.brownout_max_inflight
            )
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        get_tracer().add("serve.starts")
        return host, port

    async def stop(self) -> None:
        """Graceful drain: finish admitted work, flush, close, stop."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._batcher.drain(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:  # pragma: no cover - pathological handler
            get_tracer().add("serve.drain_timeouts")
        # Give delivery tasks a chance to flush their responses.
        for _ in range(3):
            await asyncio.sleep(0)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._watchdog is not None:
            await self._watchdog.stop()
            self._watchdog = None
        if self._pool is not None:
            # Joining worker processes blocks; keep the loop responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.close
            )
            self._pool = None
        if self._degraded is not None:
            self._degraded.close()
            self._degraded = None
        self._server = None
        self._stopped.set()
        get_tracer().add("serve.stops")

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- dispatch (runs on the executor) -------------------------------

    def _dispatch(self, key, payloads: Sequence[Any]):
        """Route one coalesced group to its handler (executor thread)."""
        return dispatch_batch(key, payloads, self.config.session)

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        out_q: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        writer_task = asyncio.get_running_loop().create_task(
            self._writer_loop(writer, out_q)
        )
        pending: set = set()
        delivery_tasks: set = set()
        tracer = get_tracer()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The line exceeded the stream's buffer limit.  The
                    # rest of it is still in flight, so there is no way
                    # to resync on the next newline: answer once, then
                    # drop the connection.
                    tracer.add("serve.errors.invalid_request")
                    tracer.add("serve.oversized_lines")
                    await out_q.put(response_error(
                        None, ERR_INVALID,
                        "request line exceeds the size limit",
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                tracer.add("serve.requests")
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    tracer.add("serve.errors.invalid_request")
                    await out_q.put(response_error(
                        exc.request_id, ERR_INVALID, str(exc)
                    ))
                    continue
                if self._draining:
                    tracer.add("serve.errors.shutting_down")
                    await out_q.put(response_error(
                        request.id, ERR_SHUTTING_DOWN, "server is draining",
                        retry_after_ms=self.config.retry_after_ms,
                    ))
                    continue
                if self._hot_cache is not None:
                    cached = self._hot_cache.get(request.op, request.params)
                    if cached is not None:
                        # Answered before admission: no batch slot, no
                        # worker, no admitted/settled accounting.
                        tracer.add("serve.responses")
                        await out_q.put(response_ok(request.id, cached))
                        continue
                key = handlers.batch_key(request.op, request.params)
                if self._pool is not None and self._pool.all_quarantined():
                    await self._shed(
                        request, out_q, delivery_tasks,
                        "all workers quarantined; back off and retry",
                        extra_counter="serve.worker.shed",
                    )
                    continue
                if self._pool is not None and self._pool.overloaded(key):
                    await self._shed(
                        request, out_q, delivery_tasks,
                        "routed worker queue too deep; back off and retry",
                        extra_counter="serve.worker.shed",
                    )
                    continue
                deadline_t = self._deadline_t(request)
                try:
                    future = self._batcher.submit(
                        key,
                        request.params,
                        deadline_t,
                    )
                except QueueFull:
                    await self._shed(
                        request, out_q, delivery_tasks,
                        "admission queue full; back off and retry",
                    )
                    continue
                except BatcherClosed:
                    tracer.add("serve.errors.shutting_down")
                    await out_q.put(response_error(
                        request.id, ERR_SHUTTING_DOWN, "server is draining",
                        retry_after_ms=self.config.retry_after_ms,
                    ))
                    continue
                pending.add(future)
                # Settlement accounting: every admitted request must be
                # settled by exactly one _deliver (the fuzz pillar
                # asserts serve.admitted == serve.settled at quiescence
                # — a difference is a leaked pending request).
                tracer.add("serve.admitted")
                deliver = asyncio.get_running_loop().create_task(
                    self._deliver(request, future, deadline_t, out_q)
                )
                delivery_tasks.add(deliver)
                deliver.add_done_callback(delivery_tasks.discard)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            # Abandon whatever this connection still has in flight.
            for future in pending:
                if not future.done():
                    future.cancel()
                    tracer.add("serve.cancellations")
            if delivery_tasks:
                await asyncio.gather(*delivery_tasks, return_exceptions=True)
            await out_q.put(None)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            self._connections.discard(task)

    async def _shed(self, request: Request, out_q: "asyncio.Queue",
                    delivery_tasks: set, message: str,
                    extra_counter: Optional[str] = None) -> None:
        """One would-be rejection: degrade it if brownout allows, else shed.

        Every call signals the brownout gate; once overload has been
        sustained past ``brownout_hold_s``, eligible requests are
        answered through the degraded lane (bypassing admission, like
        hot-cache hits) and everything else sheds with ``overloaded`` +
        ``retry_after_ms`` exactly as before.
        """
        tracer = get_tracer()
        if self._degraded is not None and self._brownout_gate.signal():
            if self._degraded.eligible(request.op):
                if self._degraded.try_reserve():
                    deliver = asyncio.get_running_loop().create_task(
                        self._deliver_degraded(request, out_q)
                    )
                    delivery_tasks.add(deliver)
                    deliver.add_done_callback(delivery_tasks.discard)
                    return
                tracer.add("serve.brownout.rejections")
        tracer.add("serve.rejections")
        if extra_counter is not None:
            tracer.add(extra_counter)
        await out_q.put(response_error(
            request.id, ERR_OVERLOADED, message,
            retry_after_ms=self.config.retry_after_ms,
        ))

    async def _deliver_degraded(self, request: Request,
                                out_q: "asyncio.Queue") -> None:
        """Answer one request through the degraded (surrogate) lane."""
        tracer = get_tracer()
        try:
            result = await self._degraded.respond(request.params)
        except asyncio.CancelledError:
            tracer.add("serve.errors.cancelled")
            await out_q.put(response_error(
                request.id, ERR_CANCELLED, "request abandoned"
            ))
            return
        except handlers.HandlerError as exc:
            tracer.add("serve.errors.invalid_request")
            await out_q.put(response_error(request.id, ERR_INVALID, str(exc)))
            return
        except Exception as exc:
            tracer.add("serve.errors.internal")
            await out_q.put(response_error(
                request.id, ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
                retry_after_ms=self.config.retry_after_ms,
            ))
            return
        tracer.add("serve.brownout.degraded")
        tracer.add("serve.responses")
        await out_q.put(response_ok(request.id, result))

    def _deadline_t(self, request: Request) -> Optional[float]:
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        if deadline_ms is None:
            return None
        return asyncio.get_running_loop().time() + deadline_ms / 1000.0

    async def _deliver(self, request: Request, future: "asyncio.Future",
                       deadline_t: Optional[float],
                       out_q: "asyncio.Queue") -> None:
        try:
            await self._deliver_inner(request, future, deadline_t, out_q)
        finally:
            # Pairs with serve.admitted: every admitted request settles
            # exactly once, whatever the outcome.
            get_tracer().add("serve.settled")

    async def _deliver_inner(self, request: Request, future: "asyncio.Future",
                             deadline_t: Optional[float],
                             out_q: "asyncio.Queue") -> None:
        tracer = get_tracer()
        try:
            result = await future
        except asyncio.CancelledError:
            tracer.add("serve.errors.cancelled")
            await out_q.put(response_error(
                request.id, ERR_CANCELLED, "request abandoned"
            ))
            return
        except asyncio.TimeoutError:
            tracer.add("serve.errors.deadline_exceeded")
            await out_q.put(response_error(
                request.id, ERR_DEADLINE, "deadline elapsed before dispatch"
            ))
            return
        except handlers.HandlerError as exc:
            tracer.add("serve.errors.invalid_request")
            await out_q.put(response_error(request.id, ERR_INVALID, str(exc)))
            return
        except Exception as exc:
            tracer.add("serve.errors.internal")
            await out_q.put(response_error(
                request.id, ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
                retry_after_ms=self.config.retry_after_ms,
            ))
            return
        # The batcher already failed anything that expired *waiting*;
        # this catches requests that expired mid-execution.
        if (deadline_t is not None
                and asyncio.get_running_loop().time() >= deadline_t):
            tracer.add("serve.errors.deadline_exceeded")
            await out_q.put(response_error(
                request.id, ERR_DEADLINE, "deadline elapsed during execution"
            ))
            return
        if self._hot_cache is not None:
            self._hot_cache.put(request.op, request.params, result)
        tracer.add("serve.responses")
        await out_q.put(response_ok(request.id, result))

    async def _writer_loop(self, writer: asyncio.StreamWriter,
                           out_q: "asyncio.Queue") -> None:
        try:
            while True:
                response = await out_q.get()
                if response is None:
                    break
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class BackgroundServer:
    """A :class:`PredictionServer` on a daemon thread (tests/bench/CLI smoke).

    Usage::

        with BackgroundServer(ServeConfig(...)) as bg:
            client = ServeClient(bg.host, bg.port)
            ...

    ``stop()`` performs the same graceful drain as the foreground path.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("background server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("background server failed to start") \
                from self._startup_error
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        server = PredictionServer(self.config)
        try:
            self.host, self.port = await server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_requested.wait()
        await server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_requested is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_requested.set)
            except RuntimeError:
                pass                 # loop already closed: nothing to stop
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
