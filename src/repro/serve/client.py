"""A pure-python blocking client for the prediction service.

Speaks the NDJSON protocol over a plain TCP socket — no third-party
HTTP stack, usable from tests, benchmarks and user scripts alike::

    with ServeClient(host, port) as client:
        best = client.predict("EP")            # -> dict (Prediction.payload)
        summary = client.sweep(workloads=["EP", "CG"])
        score = client.score_counters(events, smt_level=2, ...)

Error responses are raised as typed exceptions (:class:`OverloadedError`,
:class:`DeadlineExceededError`, ...), each carrying the server's
``retry_after_ms`` hint when present.  Responses are matched to requests
by id, so one connection may be shared by interleaved requests (the
client buffers out-of-order arrivals), though the class itself is not
thread-safe — use one client per thread.

:class:`ServeClient` is deliberately naive: one attempt, every error
raised straight to the caller.  :class:`ResilientClient` wraps the same
operations with the fleet-facing survival kit — jittered-exponential
retry that honors the server's ``retry_after_ms`` hint
(:class:`ClientRetryPolicy`), automatic reconnection, a per-client
:class:`CircuitBreaker` (open after consecutive failures, half-open
probes), and opt-in request hedging against the latency tail.  The
serving-chaos phase of ``scripts/bench_robustness.py`` measures exactly
this gap: availability under worker chaos with the naive vs the
resilient client.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs import get_tracer
from repro.serve.protocol import (
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_INVALID,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
)

__all__ = [
    "ServeClient",
    "ResilientClient",
    "ClientRetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "ServeError",
    "InvalidRequestError",
    "OverloadedError",
    "DeadlineExceededError",
    "ShuttingDownError",
    "CancelledError",
    "InternalError",
]


class ServeError(Exception):
    """Base for error responses; carries the wire code and retry hint."""

    code = "error"

    def __init__(self, message: str, retry_after_ms: Optional[float] = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class InvalidRequestError(ServeError):
    code = ERR_INVALID


class OverloadedError(ServeError):
    code = ERR_OVERLOADED


class DeadlineExceededError(ServeError):
    code = ERR_DEADLINE


class ShuttingDownError(ServeError):
    code = ERR_SHUTTING_DOWN


class CancelledError(ServeError):
    code = ERR_CANCELLED


class InternalError(ServeError):
    code = ERR_INTERNAL


class CircuitOpenError(ServeError):
    """The client's own circuit breaker refused to send (local, typed).

    Raised by :class:`ResilientClient` while its breaker is open;
    ``retry_after_ms`` carries the time until the next half-open probe.
    """

    code = "circuit_open"


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        InvalidRequestError,
        OverloadedError,
        DeadlineExceededError,
        ShuttingDownError,
        CancelledError,
        InternalError,
    )
}


class ServeClient:
    """One blocking connection to a :class:`repro.serve.PredictionServer`."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._unclaimed: Dict[str, Dict[str, Any]] = {}

    # -- plumbing ------------------------------------------------------

    def _send(self, op: str, params: Mapping[str, Any],
              deadline_ms: Optional[float]) -> str:
        self._next_id += 1
        request_id = f"r{self._next_id}"
        line = {"id": request_id, "op": op, "params": dict(params)}
        if deadline_ms is not None:
            line["deadline_ms"] = deadline_ms
        payload = (json.dumps(line, separators=(",", ":")) + "\n").encode("utf-8")
        self._sock.sendall(payload)
        return request_id

    def _recv(self, request_id: str) -> Dict[str, Any]:
        if request_id in self._unclaimed:
            return self._unclaimed.pop(request_id)
        while True:
            raw = self._file.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            response = json.loads(raw)
            if response.get("id") == request_id:
                return response
            # A response for an interleaved request; park it.
            self._unclaimed[response.get("id")] = response

    def request(self, op: str, params: Optional[Mapping[str, Any]] = None, *,
                deadline_ms: Optional[float] = None) -> Any:
        """Send one request and block for its result (or typed error)."""
        request_id = self._send(op, params or {}, deadline_ms)
        response = self._recv(request_id)
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        cls = _ERROR_TYPES.get(error.get("code"), ServeError)
        raise cls(
            error.get("message", "unknown server error"),
            retry_after_ms=error.get("retry_after_ms"),
        )

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def predict(self, workload: str, *, arch: str = "p7",
                n_chips: Optional[int] = None, level: Optional[int] = None,
                seed: Optional[int] = None,
                deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Best SMT level for ``workload`` on ``arch`` (Prediction payload)."""
        params: Dict[str, Any] = {"workload": workload, "arch": arch}
        if n_chips is not None:
            params["n_chips"] = n_chips
        if level is not None:
            params["level"] = level
        if seed is not None:
            params["seed"] = seed
        return self.request("predict", params, deadline_ms=deadline_ms)

    def sweep(self, *, arch: str = "p7", n_chips: Optional[int] = None,
              workloads: Optional[Sequence[str]] = None,
              levels: Optional[Sequence[int]] = None,
              strategy: str = "batched",
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Run a catalog slice; returns the sweep summary dict."""
        params: Dict[str, Any] = {"arch": arch, "strategy": strategy}
        if n_chips is not None:
            params["n_chips"] = n_chips
        if workloads is not None:
            params["workloads"] = list(workloads)
        if levels is not None:
            params["levels"] = list(levels)
        return self.request("sweep", params, deadline_ms=deadline_ms)

    def score_counters(self, events: Mapping[str, float], *, smt_level: int,
                       wall_time_s: float, avg_thread_cpu_s: float,
                       n_software_threads: int, arch: str = "p7",
                       n_chips: Optional[int] = None,
                       deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """SMTsm from raw counter readings taken on a live system."""
        params: Dict[str, Any] = {
            "arch": arch,
            "events": dict(events),
            "smt_level": smt_level,
            "wall_time_s": wall_time_s,
            "avg_thread_cpu_s": avg_thread_cpu_s,
            "n_software_threads": n_software_threads,
        }
        if n_chips is not None:
            params["n_chips"] = n_chips
        return self.request("score", params, deadline_ms=deadline_ms)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the resilient layer ---------------------------------------------------

#: Typed server errors worth another attempt.  ``overloaded`` and
#: ``shutting_down`` explicitly ask for one (retry_after_ms);
#: ``internal`` covers transient dispatch faults (a worker crash that
#: exhausted server-side retries); ``cancelled`` means the server
#: abandoned the request (e.g. its connection died) without running it.
RETRYABLE_CLIENT_ERRORS = (
    OverloadedError,
    ShuttingDownError,
    InternalError,
    CancelledError,
)


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Jittered-exponential retry schedule for :class:`ResilientClient`.

    The delay before attempt ``n+1`` starts from
    ``base_backoff_ms * backoff_mult**(n-1)`` capped at
    ``max_backoff_ms``, is floored at the server's ``retry_after_ms``
    hint when one came back (the server knows its queue better than the
    client's exponent does), then stretched by up to ``jitter`` of
    itself, uniformly at random — jitter breaks the retry synchrony
    that turns one shed into a convoy of re-arrivals.
    ``total_budget_ms`` bounds the whole request (attempts + backoff):
    when spending the next delay would blow it, the last error is
    raised instead.
    """

    max_attempts: int = 5
    base_backoff_ms: float = 25.0
    backoff_mult: float = 2.0
    max_backoff_ms: float = 1000.0
    jitter: float = 0.5
    total_budget_ms: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_ms < 0:
            raise ValueError(
                f"base_backoff_ms must be >= 0, got {self.base_backoff_ms}"
            )
        if self.backoff_mult < 1.0:
            raise ValueError(
                f"backoff_mult must be >= 1, got {self.backoff_mult}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_ms(self, attempt: int, hint_ms: Optional[float],
                 rng: random.Random) -> float:
        """Backoff before the next attempt, after failure #``attempt``."""
        delay = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.backoff_mult ** (attempt - 1),
        )
        if hint_ms is not None:
            delay = max(delay, hint_ms)
        return delay * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    ``failure_threshold`` consecutive failed attempts open the circuit
    for ``reset_timeout_s`` (``client.breaker_opens``); while open,
    :meth:`allow` refuses instantly — the client stops hammering a
    server that is clearly down.  After the timeout one *probe* attempt
    is allowed through (half-open): success closes the circuit, failure
    re-opens it for another full timeout.  Thread-safe (hedge threads
    record outcomes concurrently).
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_t: Optional[float] = None   # None = closed
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_t is None:
                return "closed"
            if time.monotonic() - self._opened_t >= self.reset_timeout_s:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """Whether the next attempt may be sent right now."""
        with self._lock:
            if self._opened_t is None:
                return True
            elapsed = time.monotonic() - self._opened_t
            if elapsed < self.reset_timeout_s:
                return False
            if self._probing:
                return False          # one probe at a time
            self._probing = True
            return True

    def retry_after_ms(self) -> float:
        """Time until the circuit half-opens (hint for CircuitOpenError)."""
        with self._lock:
            if self._opened_t is None:
                return 0.0
            remaining = self.reset_timeout_s - (
                time.monotonic() - self._opened_t
            )
            return max(0.0, remaining) * 1000.0

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_t = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._opened_t is not None:
                # A failed half-open probe: re-open for a full timeout.
                self._opened_t = time.monotonic()
                self._probing = False
                get_tracer().add("client.breaker_opens")
            elif self._failures >= self.failure_threshold:
                self._opened_t = time.monotonic()
                self._probing = False
                get_tracer().add("client.breaker_opens")


class _Lane:
    """One connection a :class:`ResilientClient` may have in flight."""

    __slots__ = ("client", "busy")

    def __init__(self):
        self.client: Optional[ServeClient] = None
        self.busy = False


class ResilientClient:
    """Retrying, breaker-guarded, optionally hedging serving client.

    Same operation surface as :class:`ServeClient` (``request`` /
    ``predict`` / ``sweep`` / ``score_counters`` / ``ping``), but each
    request survives the faults the chaos harness injects:

    * transport failures reconnect automatically
      (``client.reconnects``);
    * retryable typed errors back off and retry per ``policy``,
      honoring the server's ``retry_after_ms`` (``client.retries``);
    * ``breaker`` trips after consecutive failures and refuses with
      :class:`CircuitOpenError` while open;
    * with ``hedge_after_ms`` set, an attempt that has not answered by
      then races a duplicate on a second connection — first response
      wins (``client.hedges`` / ``client.hedge_wins``).  Hedge only
      idempotent traffic: every built-in op is a pure function of its
      params, but a duplicated request does cost server work.

    Like :class:`ServeClient`, one instance serves one caller thread
    (the hedging threads are internal).
    """

    def __init__(self, host: str, port: int, *,
                 policy: Optional[ClientRetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 hedge_after_ms: Optional[float] = None,
                 timeout_s: float = 60.0,
                 seed: int = 0):
        if hedge_after_ms is not None and hedge_after_ms < 0:
            raise ValueError(
                f"hedge_after_ms must be >= 0, got {hedge_after_ms}"
            )
        self.host = host
        self.port = port
        self.policy = policy or ClientRetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.hedge_after_ms = hedge_after_ms
        self.timeout_s = timeout_s
        self._rng = random.Random(seed)
        self._lanes: List[_Lane] = [_Lane()]
        self._lanes_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- lanes (connections) --------------------------------------------

    def _checkout(self) -> _Lane:
        """A lane no other in-flight attempt is using (may grow the list)."""
        with self._lanes_lock:
            for lane in self._lanes:
                if not lane.busy:
                    lane.busy = True
                    return lane
            lane = _Lane()
            lane.busy = True
            self._lanes.append(lane)
            return lane

    def _checkin(self, lane: _Lane) -> None:
        with self._lanes_lock:
            lane.busy = False

    def _attempt(self, op: str, params: Mapping[str, Any],
                 deadline_ms: Optional[float]) -> Any:
        """One attempt on one lane; reconnects a broken lane first."""
        lane = self._checkout()
        try:
            if lane.client is None:
                lane.client = ServeClient(
                    self.host, self.port, timeout_s=self.timeout_s
                )
                get_tracer().add("client.connects")
            try:
                return lane.client.request(op, params, deadline_ms=deadline_ms)
            except (ConnectionError, socket.timeout, OSError):
                # The transport is gone; drop the connection so the next
                # attempt on this lane dials fresh.
                lane.client.close()
                lane.client = None
                get_tracer().add("client.reconnects")
                raise
        finally:
            self._checkin(lane)

    # -- the hedged attempt ----------------------------------------------

    def _hedge_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="repro-client-hedge"
            )
        return self._pool

    def _attempt_hedged(self, op: str, params: Mapping[str, Any],
                        deadline_ms: Optional[float]) -> Any:
        """Primary attempt, plus a duplicate if it is slow; first wins.

        The losing attempt keeps running on its own lane until the
        server answers it (responses to a reused lane are parked by
        :class:`ServeClient`'s id-matching, so the lane stays usable).
        """
        pool = self._hedge_pool()
        primary = pool.submit(self._attempt, op, params, deadline_ms)
        done, _ = wait([primary], timeout=self.hedge_after_ms / 1000.0)
        if done:
            return primary.result()
        get_tracer().add("client.hedges")
        hedge = pool.submit(self._attempt, op, params, deadline_ms)
        futures = {primary, hedge}
        first_exc: Optional[BaseException] = None
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    result = future.result()
                except Exception as exc:
                    if first_exc is None:
                        first_exc = exc
                else:
                    if future is hedge:
                        get_tracer().add("client.hedge_wins")
                    return result
        raise first_exc

    # -- the retry loop ----------------------------------------------------

    def request(self, op: str, params: Optional[Mapping[str, Any]] = None, *,
                deadline_ms: Optional[float] = None) -> Any:
        """Send one request with retries/breaker/hedging; block for a result.

        Raises :class:`CircuitOpenError` without touching the network
        while the breaker is open; otherwise raises the final attempt's
        typed error once retries/budget are exhausted.
        """
        params = params or {}
        policy = self.policy
        started = time.monotonic()
        tracer = get_tracer()
        last_exc: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            if not self.breaker.allow():
                raise CircuitOpenError(
                    "circuit breaker is open",
                    retry_after_ms=self.breaker.retry_after_ms(),
                )
            try:
                if self.hedge_after_ms is not None:
                    result = self._attempt_hedged(op, params, deadline_ms)
                else:
                    result = self._attempt(op, params, deadline_ms)
            except RETRYABLE_CLIENT_ERRORS as exc:
                self.breaker.record_failure()
                last_exc, hint = exc, exc.retry_after_ms
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.breaker.record_failure()
                last_exc, hint = exc, None
            except ServeError as exc:
                # Client errors and elapsed deadlines are final: another
                # attempt would send the same doomed request.
                self.breaker.record_success()
                raise
            else:
                self.breaker.record_success()
                return result
            if attempt >= policy.max_attempts:
                break
            delay_ms = policy.delay_ms(attempt, hint, self._rng)
            if policy.total_budget_ms is not None:
                spent_ms = (time.monotonic() - started) * 1000.0
                if spent_ms + delay_ms >= policy.total_budget_ms:
                    break
            tracer.add("client.retries")
            if delay_ms > 0:
                time.sleep(delay_ms / 1000.0)
        tracer.add("client.giveups")
        raise last_exc

    # -- operations (same surface as ServeClient) ------------------------

    ping = ServeClient.ping
    predict = ServeClient.predict
    sweep = ServeClient.sweep
    score_counters = ServeClient.score_counters

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lanes_lock:
            for lane in self._lanes:
                if lane.client is not None:
                    lane.client.close()
                    lane.client = None

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
