"""A pure-python blocking client for the prediction service.

Speaks the NDJSON protocol over a plain TCP socket — no third-party
HTTP stack, usable from tests, benchmarks and user scripts alike::

    with ServeClient(host, port) as client:
        best = client.predict("EP")            # -> dict (Prediction.payload)
        summary = client.sweep(workloads=["EP", "CG"])
        score = client.score_counters(events, smt_level=2, ...)

Error responses are raised as typed exceptions (:class:`OverloadedError`,
:class:`DeadlineExceededError`, ...), each carrying the server's
``retry_after_ms`` hint when present.  Responses are matched to requests
by id, so one connection may be shared by interleaved requests (the
client buffers out-of-order arrivals), though the class itself is not
thread-safe — use one client per thread.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.serve.protocol import (
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_INVALID,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
)

__all__ = [
    "ServeClient",
    "ServeError",
    "InvalidRequestError",
    "OverloadedError",
    "DeadlineExceededError",
    "ShuttingDownError",
    "CancelledError",
    "InternalError",
]


class ServeError(Exception):
    """Base for error responses; carries the wire code and retry hint."""

    code = "error"

    def __init__(self, message: str, retry_after_ms: Optional[float] = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class InvalidRequestError(ServeError):
    code = ERR_INVALID


class OverloadedError(ServeError):
    code = ERR_OVERLOADED


class DeadlineExceededError(ServeError):
    code = ERR_DEADLINE


class ShuttingDownError(ServeError):
    code = ERR_SHUTTING_DOWN


class CancelledError(ServeError):
    code = ERR_CANCELLED


class InternalError(ServeError):
    code = ERR_INTERNAL


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        InvalidRequestError,
        OverloadedError,
        DeadlineExceededError,
        ShuttingDownError,
        CancelledError,
        InternalError,
    )
}


class ServeClient:
    """One blocking connection to a :class:`repro.serve.PredictionServer`."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._unclaimed: Dict[str, Dict[str, Any]] = {}

    # -- plumbing ------------------------------------------------------

    def _send(self, op: str, params: Mapping[str, Any],
              deadline_ms: Optional[float]) -> str:
        self._next_id += 1
        request_id = f"r{self._next_id}"
        line = {"id": request_id, "op": op, "params": dict(params)}
        if deadline_ms is not None:
            line["deadline_ms"] = deadline_ms
        payload = (json.dumps(line, separators=(",", ":")) + "\n").encode("utf-8")
        self._sock.sendall(payload)
        return request_id

    def _recv(self, request_id: str) -> Dict[str, Any]:
        if request_id in self._unclaimed:
            return self._unclaimed.pop(request_id)
        while True:
            raw = self._file.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            response = json.loads(raw)
            if response.get("id") == request_id:
                return response
            # A response for an interleaved request; park it.
            self._unclaimed[response.get("id")] = response

    def request(self, op: str, params: Optional[Mapping[str, Any]] = None, *,
                deadline_ms: Optional[float] = None) -> Any:
        """Send one request and block for its result (or typed error)."""
        request_id = self._send(op, params or {}, deadline_ms)
        response = self._recv(request_id)
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        cls = _ERROR_TYPES.get(error.get("code"), ServeError)
        raise cls(
            error.get("message", "unknown server error"),
            retry_after_ms=error.get("retry_after_ms"),
        )

    # -- operations ----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def predict(self, workload: str, *, arch: str = "p7",
                n_chips: Optional[int] = None, level: Optional[int] = None,
                seed: Optional[int] = None,
                deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Best SMT level for ``workload`` on ``arch`` (Prediction payload)."""
        params: Dict[str, Any] = {"workload": workload, "arch": arch}
        if n_chips is not None:
            params["n_chips"] = n_chips
        if level is not None:
            params["level"] = level
        if seed is not None:
            params["seed"] = seed
        return self.request("predict", params, deadline_ms=deadline_ms)

    def sweep(self, *, arch: str = "p7", n_chips: Optional[int] = None,
              workloads: Optional[Sequence[str]] = None,
              levels: Optional[Sequence[int]] = None,
              strategy: str = "batched",
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Run a catalog slice; returns the sweep summary dict."""
        params: Dict[str, Any] = {"arch": arch, "strategy": strategy}
        if n_chips is not None:
            params["n_chips"] = n_chips
        if workloads is not None:
            params["workloads"] = list(workloads)
        if levels is not None:
            params["levels"] = list(levels)
        return self.request("sweep", params, deadline_ms=deadline_ms)

    def score_counters(self, events: Mapping[str, float], *, smt_level: int,
                       wall_time_s: float, avg_thread_cpu_s: float,
                       n_software_threads: int, arch: str = "p7",
                       n_chips: Optional[int] = None,
                       deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """SMTsm from raw counter readings taken on a live system."""
        params: Dict[str, Any] = {
            "arch": arch,
            "events": dict(events),
            "smt_level": smt_level,
            "wall_time_s": wall_time_s,
            "avg_thread_cpu_s": avg_thread_cpu_s,
            "n_software_threads": n_software_threads,
        }
        if n_chips is not None:
            params["n_chips"] = n_chips
        return self.request("score", params, deadline_ms=deadline_ms)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
