"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a user of the original system would have:
inspect the benchmark catalog, run one benchmark and read its metric,
characterize a whole suite, or regenerate a paper experiment.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.metric import smtsm_from_run
from repro.sim.engine import RunSpec
from repro.simos import SystemSpec
from repro.util.tables import format_table
from repro.workloads import all_workloads, get_workload


def _system_names() -> List[str]:
    """Every name ``--system``/``--arch`` accepts: the short aliases
    plus the full architecture registry (hetero clusters included)."""
    from repro.arch import list_architectures

    return ["p7", "p7x2"] + list_architectures()


def _system_help() -> str:
    return " | ".join(_system_names())


def _system(name: str) -> SystemSpec:
    from repro.arch import get_architecture

    if name == "p7x2":
        return SystemSpec(get_architecture("power7"), 2)
    if name == "p7":
        return SystemSpec(get_architecture("power7"), 1)
    try:
        return SystemSpec(get_architecture(name), 1)
    except KeyError:
        raise SystemExit(
            f"unknown system {name!r} (use one of: {', '.join(_system_names())})"
        )


def cmd_list_workloads(args: argparse.Namespace) -> int:
    rows = []
    for spec in sorted(all_workloads().values(), key=lambda s: s.name):
        if args.suite and args.suite.lower() not in spec.suite.lower():
            continue
        rows.append([spec.name, spec.suite, spec.problem_size, spec.description])
    print(format_table(["name", "suite", "size", "description"], rows,
                       title="workload catalog"))
    return 0


def cmd_show_workload(args: argparse.Namespace) -> int:
    spec = get_workload(args.name)
    mix = spec.stream.mix
    print(f"{spec.name} ({spec.suite}, {spec.problem_size})")
    print(f"  {spec.description}")
    print(f"  mix: {mix}")
    print(f"  ilp={spec.stream.ilp} mlp={spec.stream.mlp} "
          f"branch_mispredict={spec.stream.branch_mispredict_rate}")
    mem = spec.stream.memory
    print(f"  MPKI (ref): L1={mem.l1_mpki} L2={mem.l2_mpki} L3={mem.l3_mpki} "
          f"alpha={mem.locality_alpha} sharing={mem.data_sharing}")
    print(f"  sync: {spec.sync}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.sim.runcache import RunCache, cache_enabled_by_default

    telemetry_path: Optional[Path] = None
    if args.telemetry is not None:
        from repro.obs import configure, default_telemetry_path

        telemetry_path = (
            Path(args.telemetry)
            if isinstance(args.telemetry, str)
            else default_telemetry_path()
        )
        configure(enabled=True, sink_path=telemetry_path)

    system = _system(args.system)
    spec = get_workload(args.name)
    levels = [args.smt] if args.smt else list(system.arch.smt_levels)
    use_cache = args.cache if args.cache is not None else cache_enabled_by_default()
    cache = RunCache() if use_cache else None
    run_specs = [
        RunSpec(system, level, spec.stream, spec.sync, seed=args.seed)
        for level in levels
    ]
    from repro.obs import get_tracer

    results: List[Optional[object]] = [None] * len(run_specs)
    with get_tracer().span(
        "cli.run",
        workload=spec.name,
        system=f"{system.arch.name} x{system.n_chips}",
        runs=len(run_specs),
    ) as span:
        missing = []
        for i, run_spec in enumerate(run_specs):
            if cache is not None:
                results[i] = cache.get(run_spec)
            if results[i] is None:
                missing.append(i)
        span.set(cache_hits=len(run_specs) - len(missing),
                 cache_misses=len(missing))
        if missing:
            todo = [run_specs[i] for i in missing]
            if args.jobs and args.jobs > 1:
                from repro.experiments.runner import _simulate_parallel

                fresh = _simulate_parallel(todo, args.jobs)
            else:
                from repro.sim.table import simulate_many_columnar

                fresh = simulate_many_columnar(todo)
            for i, result in zip(missing, fresh):
                results[i] = result
                if cache is not None:
                    cache.put(run_specs[i], result)

    rows = []
    metric_row = None
    for level, result in zip(levels, results):
        metric = smtsm_from_run(result)
        rows.append([f"SMT{level}", result.n_threads, result.wall_time_s,
                     result.performance / 1e9, metric.value])
        if level == system.arch.max_smt:
            metric_row = metric
    print(format_table(
        ["level", "threads", "wall (s)", "Ginstr/s", "SMTsm"], rows,
        title=f"{spec.name} on {system.arch.name} x{system.n_chips}",
    ))
    if metric_row is not None:
        print(f"\nSMTsm@SMT{system.arch.max_smt} factors: "
              f"mix={metric_row.mix_deviation:.4f} "
              f"dispHeld={metric_row.dispatch_held:.4f} "
              f"wall/cpu={metric_row.scalability_ratio:.4f}")
    if telemetry_path is not None:
        from repro.obs import get_tracer

        get_tracer().close()
        print(f"\ntelemetry written to {telemetry_path} "
              f"(summarize with: python -m repro stats {telemetry_path})")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run one fleet simulation and print its aggregate summary.

    Precedence for every knob: CLI flag > ``REPRO_FLEET_*`` env var >
    :class:`repro.fleet.FleetConfig` default.  Exit status is the
    settlement gate: 0 only when every submitted job is accounted for
    (completed + rejected + crash-lost).
    """
    import dataclasses
    import json

    from repro.fleet import FleetConfig, simulate_fleet

    if args.nodes is not None and args.arch_mix is not None:
        raise SystemExit(
            "fleet: --nodes is an alias for --arch-mix; pass one, not both"
        )
    arch_mix = args.nodes if args.nodes is not None else args.arch_mix

    base = FleetConfig.from_env()
    overrides = {
        name: value
        for name, value in (
            ("chips", args.chips), ("jobs", args.jobs),
            ("policy", args.policy), ("severity", args.severity),
            ("seed", args.seed), ("arch_mix", arch_mix),
            ("strategy", args.strategy), ("load", args.load),
            ("arrival", args.arrival), ("mix", args.mix),
            ("workloads", args.workloads),
            ("queue_depth", args.queue_depth),
        )
        if value is not None
    }
    try:
        config = dataclasses.replace(base, **overrides) if overrides else base
        result = simulate_fleet(config)
    except ValueError as exc:
        raise SystemExit(f"fleet: {exc}")

    if args.json:
        print(json.dumps(result.payload(), indent=2, sort_keys=False))
    else:
        counts = ", ".join(
            f"{arch} x{n}" for arch, n in sorted(result.arch_counts.items())
        )
        print(
            f"fleet: {result.n_nodes} chips ({counts}), "
            f"policy={config.policy}, severity={config.severity}, "
            f"strategy={config.strategy}"
        )
        print(
            f"jobs: submitted={result.jobs_submitted} "
            f"completed={result.jobs_completed} "
            f"rejected={result.rejected_admission} "
            f"crashed={result.rejected_crashed} "
            f"settled={'yes' if result.settled else 'NO'}"
        )
        print(
            f"throughput: {result.throughput_jobs_s:.3f} jobs/s over "
            f"{result.horizon_s:.1f}s offered "
            f"(drained at {result.makespan_s:.1f}s)"
        )
        print(
            f"latency: mean={result.latency_mean_s:.3f}s "
            f"p50={result.latency_p50_s:.3f}s "
            f"p95={result.latency_p95_s:.3f}s "
            f"p99={result.latency_p99_s:.3f}s"
        )
        levels = ", ".join(
            f"SMT{level}: {n}" for level, n in sorted(result.level_jobs.items())
        )
        print(f"smt: switches={result.smt_switches} jobs per level [{levels}]")
        print(
            f"faults: crashes={result.node_crashes} hangs={result.node_hangs}"
        )
    return 0 if result.settled else 1


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import (
        default_telemetry_dir,
        latest_telemetry_file,
        render_summary,
        summarize_file,
    )

    path: Optional[Path] = Path(args.path) if args.path else None
    if path is None or not path.is_file():
        found = latest_telemetry_file(path) if (path is None or path.is_dir()) \
            else None
        if found is None:
            # Having recorded no telemetry yet is a normal state, not an
            # error: report it clearly and exit 0 (no traceback, no red CI).
            where = path if path is not None else default_telemetry_dir()
            print(f"no telemetry found under {where} "
                  f"(record some with --telemetry or REPRO_TELEMETRY=1)")
            return 0
        path = found
    try:
        summary = summarize_file(path)
    except OSError as exc:
        print(f"cannot read telemetry file {path}: {exc.strerror or exc}")
        return 0
    print(f"telemetry: {path}\n")
    print(render_summary(summary, top=args.top))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the prediction service until SIGINT/SIGTERM, then drain."""
    import asyncio
    import signal

    from repro.serve import PredictionServer, ServeConfig

    from repro.obs import configure, get_tracer

    session: Dict[str, object] = {"seed": args.seed}
    if args.no_cache:
        session["use_cache"] = False
    chaos = None
    if args.chaos:
        from repro.faults.chaos import ChaosConfig

        chaos = ChaosConfig.parse(args.chaos)
        if args.workers <= 1:
            print("warning: --chaos requires --workers > 1; ignoring",
                  flush=True)
            chaos = None
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_linger_ms=args.max_linger_ms,
        queue_size=args.queue_size,
        workers=args.workers,
        max_inflight_per_worker=args.max_inflight_per_worker,
        hot_cache_size=args.hot_cache_size,
        hang_timeout_s=args.hang_timeout_s,
        chaos=chaos,
        brownout=not args.no_brownout,
        session=session,
    )
    # In-process telemetry so the settlement line below is always
    # available (a JSONL sink still attaches via REPRO_TELEMETRY).
    configure(enabled=True)

    async def _serve() -> None:
        server = PredictionServer(config)
        host, port = await server.start()
        mode = (f"{config.workers} worker processes"
                if config.workers > 1 else "in-process")
        if config.chaos is not None and config.chaos.any_chaos:
            mode += ", chaos armed"
        print(f"serving on {host}:{port} ({mode})", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("draining...", flush=True)
        await server.stop()
        counters = get_tracer().counters()
        admitted = int(counters.get("serve.admitted", 0))
        settled = int(counters.get("serve.settled", 0))
        print(f"stopped admitted={admitted} settled={settled}", flush=True)

    asyncio.run(_serve())
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments import noise_ablation

    results = []
    for arch in args.arch:
        result = noise_ablation.run(
            seed=args.seed,
            arch=arch,
            severities=(
                tuple(args.severities)
                if args.severities is not None
                else noise_ablation.NOISE_SEVERITIES
            ),
            samples=args.samples or noise_ablation.SAMPLES_PER_TRIAL,
            trials=args.trials or noise_ablation.TRIALS,
        )
        results.append(result)
        print(result.render())
        print()
    if args.json is not None:
        import json

        payload = {r.arch: r.payload() for r in results}
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the conformance checker (see docs/testing.md)."""
    from repro.check import CheckOptions, run_check
    from repro.check.goldens import update_goldens
    from repro.check.report import PILLARS

    if args.update_goldens:
        for path in update_goldens(args.figures, seed=args.seed):
            print(f"wrote {path}")
        return 0

    selected = [p for p in PILLARS if getattr(args, p)]
    if args.all or not selected:
        selected = list(PILLARS)
    options = CheckOptions(
        arch=args.arch,
        seed=args.seed,
        figures=args.figures,
        include_parallel=not args.no_parallel,
        fuzz_cases=args.fuzz_cases,
        fuzz_seed=args.fuzz_seed,
    )
    report = run_check(selected, options)
    if args.json is True:
        import json

        print(json.dumps(report.payload(), indent=2))
    else:
        if args.json is not None:
            import json

            Path(args.json).write_text(
                json.dumps(report.payload(), indent=2) + "\n"
            )
        print(report.render())
    return report.exit_code


def _experiment_registry() -> Dict[str, Callable[[], str]]:
    from repro import experiments as ex

    def scatter(module, **kwargs):
        return lambda: module.run(**kwargs).render()

    return {
        "fig01": lambda: ex.fig01_motivation.run().render(),
        "fig02": lambda: ex.fig02_naive_metrics.run().render(),
        "fig06": scatter(ex.fig06_smt4v1_at4),
        "fig07": lambda: ex.fig07_instruction_mix.run().render(),
        "fig08": scatter(ex.fig08_smt4v2_at4),
        "fig09": scatter(ex.fig09_smt2v1_at2),
        "fig10": scatter(ex.fig10_nehalem),
        "fig11": scatter(ex.fig11_at_smt1_p7),
        "fig12": scatter(ex.fig12_at_smt1_nehalem),
        "fig13": scatter(ex.fig13_two_chip_41),
        "fig14": scatter(ex.fig14_two_chip_42),
        "fig15": scatter(ex.fig15_two_chip_21),
        "fig16": lambda: ex.fig16_gini.run().render(),
        "fig17": lambda: ex.fig17_ppi.run().render(),
        "table1": lambda: ex.table1.run(),
        "optimizer": lambda: ex.online_optimizer.run().render(),
        "coschedule": lambda: ex.coschedule_symbiosis.run().render(),
        "priorities": lambda: ex.priority_shielding.run().render(),
        "transfer": lambda: ex.threshold_transfer.run().render(),
        "offline-vs-online": lambda: ex.offline_vs_online.run().render(),
        "batch": lambda: ex.batch_scheduler.run().render(),
        "scaling": lambda: ex.scaling_cores.run().render(),
        "mathis-power5": lambda: ex.related_mathis_power5.run().render(),
        "robustness": lambda: ex.noise_ablation.run().render(),
        "armsmt-transfer": lambda: ex.armsmt_transfer.run().render(),
        "hetero": lambda: ex.hetero_biglittle.run().render(),
    }


def cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.name == "list" or args.name not in registry:
        print("available experiments:", ", ".join(sorted(registry)))
        return 0 if args.name == "list" else 1
    print(registry[args.name]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMT-selection metric reproduction (IPDPS 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-workloads", help="list the Table I catalog")
    p.add_argument("--suite", help="filter by suite substring")
    p.set_defaults(func=cmd_list_workloads)

    p = sub.add_parser("show-workload", help="show one workload's model")
    p.add_argument("name")
    p.set_defaults(func=cmd_show_workload)

    p = sub.add_parser("run", help="simulate one workload and read SMTsm")
    p.add_argument("name")
    p.add_argument("--system", default="p7", help=_system_help())
    p.add_argument("--smt", type=int, default=None, help="single SMT level")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="reuse/store converged runs under results/.runcache/ "
        "(default: on unless REPRO_RUNCACHE=0)",
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="simulate cache misses across N worker processes instead of "
        "the vectorized batch path",
    )
    p.add_argument(
        "--telemetry", nargs="?", const=True, default=None, metavar="PATH",
        help="record telemetry for this invocation to a JSONL file "
        "(default: a fresh file under results/.telemetry/)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "fleet",
        help="simulate a datacenter of SMT chips under a placement policy",
    )
    p.add_argument("--chips", type=int, default=None,
                   help="fleet size, one node per chip (default 24)")
    p.add_argument("--jobs", type=int, default=None,
                   help="synthetic trace length (default 2000)")
    p.add_argument("--policy", default=None,
                   help="placement policy: smtsm, least_loaded, "
                        "round_robin, random")
    p.add_argument("--severity", type=float, default=None,
                   help="fault severity in [0,1]: counter noise + node "
                        "crash/hang rates (default 0.0)")
    p.add_argument("--seed", type=int, default=None,
                   help="root seed for trace, faults, and policy draws")
    p.add_argument("--arch-mix", default=None,
                   help="fleet composition, e.g. 'power7' or "
                        "'power7:3,nehalem:1'; hetero chip names expand "
                        "to their clusters")
    p.add_argument("--nodes", default=None, metavar="MIX",
                   help="alias for --arch-mix, e.g. 'power7:2,armsmt:2'")
    p.add_argument("--strategy", default=None,
                   help="mega-batch engine: columnar or surrogate")
    p.add_argument("--load", type=float, default=None,
                   help="offered load vs max-level capacity (default 1.05)")
    p.add_argument("--arrival", default=None,
                   help="arrival process: poisson or uniform")
    p.add_argument("--mix", default=None,
                   help="workload-mix distribution: uniform or zipf")
    p.add_argument("--workloads", default=None,
                   help="comma-separated catalog names (default: the "
                        "POWER7 set)")
    p.add_argument("--queue-depth", type=int, default=None,
                   help="per-node queue bound; a full node sheds "
                        "(default 8)")
    p.add_argument("--json", action="store_true",
                   help="print the full JSON payload instead of the summary")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("stats", help="summarize a telemetry JSONL file")
    p.add_argument(
        "path", nargs="?", default=None,
        help="telemetry file or directory "
        "(default: the latest file under results/.telemetry/)",
    )
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="slowest runs to list")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="run the batched SMTsm prediction service (NDJSON over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: an ephemeral port, printed on start)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="micro-batch size ceiling")
    p.add_argument("--max-linger-ms", type=float, default=2.0,
                   help="how long a batch waits to coalesce more requests")
    p.add_argument("--queue-size", type=int, default=256,
                   help="admission queue bound (full queue => overloaded)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes running handlers "
                        "(1 = in-process, >1 = sharded pool)")
    p.add_argument("--max-inflight-per-worker", type=int, default=64,
                   help="shed requests once the routed worker is this deep")
    p.add_argument("--hot-cache-size", type=int, default=1024,
                   help="dispatcher hot-key LRU entries, pool mode "
                        "(0 disables)")
    p.add_argument("--seed", type=int, default=11,
                   help="simulation seed applied to every session")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the persistent run cache for this server")
    p.add_argument("--hang-timeout-s", type=float, default=30.0,
                   help="watchdog: declare a worker hung after this much "
                        "silence with jobs in flight (pool mode)")
    p.add_argument("--chaos", default="",
                   help="inject worker faults (pool mode): a preset "
                        "('worker_hang'), 'severity=0.4', or "
                        "'hang=0.02,crash=0.04,slow=0.2,corrupt=0.1,seed=7'")
    p.add_argument("--no-brownout", action="store_true",
                   help="shed with hard overloaded errors instead of "
                        "degraded (surrogate) answers under sustained "
                        "overload")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "robustness",
        help="sweep SMT decision accuracy vs injected counter noise",
    )
    p.add_argument(
        "--arch", nargs="+", default=["p7"], choices=_system_names(),
        help="architectures to sweep (default: p7)",
    )
    p.add_argument("--seed", type=int, default=11)
    p.add_argument(
        "--severities", nargs="+", type=float, default=None, metavar="S",
        help="fault severities in [0, 1] (default: the documented sweep)",
    )
    p.add_argument("--samples", type=int, default=None, metavar="N",
                   help="sampling intervals per workload trial")
    p.add_argument("--trials", type=int, default=None, metavar="N",
                   help="independent trials per workload")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the full sweep as JSON")
    p.set_defaults(func=cmd_robustness)

    p = sub.add_parser(
        "check",
        help="verify simulator physics, strategy equivalence, golden "
        "snapshots and serve-protocol robustness",
    )
    p.add_argument("--all", action="store_true",
                   help="run every pillar (the default when none is selected)")
    p.add_argument("--invariants", action="store_true",
                   help="simulator physics invariants over a catalog sweep")
    p.add_argument("--differential", action="store_true",
                   help="serial vs batched/parallel/cache/predict_many")
    p.add_argument("--goldens", action="store_true",
                   help="compare figure summaries to tests/goldens/")
    p.add_argument("--fuzz", action="store_true",
                   help="fuzz the prediction service's NDJSON protocol")
    p.add_argument("--arch", default="p7", help=_system_help())
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--figures", nargs="+", default=None, metavar="FIG",
                   help="golden subset, e.g. fig06 fig16 (default: all)")
    p.add_argument("--no-parallel", action="store_true",
                   help="skip the fork-pool path in the differential pillar")
    p.add_argument("--fuzz-cases", type=int, default=500, metavar="N",
                   help="malformed/valid frames to fire at the server")
    p.add_argument("--fuzz-seed", type=int, default=1207)
    p.add_argument(
        "--update-goldens", action="store_true",
        help="recompute and rewrite the golden snapshots, then exit",
    )
    p.add_argument(
        "--json", nargs="?", const=True, default=None, metavar="PATH",
        help="emit the machine-readable report (to stdout, or to PATH)",
    )
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("experiment", help="regenerate a paper experiment")
    p.add_argument("name", help="fig01..fig17, table1, optimizer, "
                                "coschedule, priorities, transfer, scaling, "
                                "or 'list'")
    p.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
