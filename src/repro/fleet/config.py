"""Fleet simulation configuration.

One frozen dataclass carries every knob of the simulated datacenter:
fleet composition, trace shape, scheduling policy, fault severity and
the engine strategy the mega-batch solve uses.  Every scalar field is
overridable from ``REPRO_FLEET_<FIELD>`` environment variables through
the shared :func:`repro.util.config.dataclass_from_env` helper — the
same machinery :class:`repro.serve.ServeConfig` uses for
``REPRO_SERVE_*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.util.config import dataclass_from_env
from repro.util.validation import check_fraction, check_positive

__all__ = ["FleetConfig", "parse_arch_mix", "ARRIVALS", "MIXES"]

#: Supported arrival processes for the synthetic trace.
ARRIVALS = ("poisson", "uniform")
#: Supported workload-mix distributions.
MIXES = ("uniform", "zipf")


def parse_arch_mix(spec: str) -> List[Tuple[str, int]]:
    """Parse an architecture-mix spec into ``[(arch_name, weight), ...]``.

    The spec is a comma-separated list of ``name`` or ``name:weight``
    entries, e.g. ``"power7"`` (homogeneous) or ``"power7:3,nehalem:1"``
    (three POWER7 chips for every Nehalem).  Weights must be positive
    integers; names are validated against the arch registry by the
    perf model, not here.
    """
    entries: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, _, weight_text = part.partition(":")
            try:
                weight = int(weight_text)
            except ValueError:
                raise ValueError(
                    f"bad arch-mix weight in {part!r} (want name:integer)"
                ) from None
        else:
            name, weight = part, 1
        name = name.strip().lower()
        if not name:
            raise ValueError(f"empty arch name in arch-mix spec {spec!r}")
        if weight < 1:
            raise ValueError(f"arch-mix weight must be >= 1, got {weight}")
        entries.append((name, weight))
    if not entries:
        raise ValueError(f"arch-mix spec {spec!r} names no architectures")
    return entries


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet simulation can be tuned with (docs/fleet.md).

    The defaults describe the *reference fleet* the benchmarks and the
    ranking regression test use: 24 POWER7 chips under a Poisson trace
    offered at 1.05x the fleet's max-level capacity.
    """

    chips: int = 24                     # fleet size (one node per chip)
    jobs: int = 2000                    # trace length
    arch_mix: str = "power7"            # see parse_arch_mix()
    policy: str = "smtsm"               # placement policy name
    strategy: str = "columnar"          # mega-batch engine: columnar|surrogate
    seed: int = 11                      # root of every RNG stream
    severity: float = 0.0               # repro.faults noise_profile severity
    arrival: str = "poisson"            # arrival process: poisson|uniform
    load: float = 1.05                  # offered load vs max-level capacity
    job_size_sigma: float = 0.35        # lognormal sigma of job sizes
    mix: str = "uniform"                # workload-mix distribution
    workloads: str = ""                 # comma-separated names; "" = POWER7 set
    queue_depth: int = 8                # per-node queue bound (admission)
    crash_prob: float = 0.002           # per-completion node-crash prob at severity 1
    hang_prob: float = 0.02             # per-dispatch node-hang prob at severity 1
    restart_s: float = 30.0             # node downtime after a crash
    hang_s: float = 5.0                 # extra service time on a hang
    measure_interval_s: float = 0.1     # wall time per online counter sample

    def __post_init__(self):
        if self.chips < 1:
            raise ValueError(f"chips must be >= 1, got {self.chips}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        parse_arch_mix(self.arch_mix)
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; use one of {ARRIVALS}"
            )
        if self.mix not in MIXES:
            raise ValueError(
                f"unknown workload mix {self.mix!r}; use one of {MIXES}"
            )
        check_fraction("severity", self.severity)
        check_positive("load", self.load)
        if self.job_size_sigma < 0:
            raise ValueError(
                f"job_size_sigma must be >= 0, got {self.job_size_sigma}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        check_fraction("crash_prob", self.crash_prob)
        check_fraction("hang_prob", self.hang_prob)
        check_positive("restart_s", self.restart_s)
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")
        check_positive("measure_interval_s", self.measure_interval_s)

    def workload_names(self) -> Tuple[str, ...]:
        """The catalog names jobs are sampled from (declaration order)."""
        if self.workloads.strip():
            names = tuple(
                n.strip() for n in self.workloads.split(",") if n.strip()
            )
            if not names:
                raise ValueError(f"workloads spec {self.workloads!r} is empty")
            return names
        from repro.workloads.catalog import POWER7_SET

        return POWER7_SET

    @classmethod
    def from_env(
        cls,
        base: Optional["FleetConfig"] = None,
        *,
        env: Optional[Mapping[str, str]] = None,
    ) -> "FleetConfig":
        """Build a config from ``REPRO_FLEET_*`` variables over ``base``."""
        return dataclass_from_env(cls, "REPRO_FLEET", env=env, base=base)
