"""One node of the simulated fleet: a chip, its queue, its meter.

A node serves one job at a time from a bounded FIFO queue.  What the
scheduler learns about a finished job comes through the node's
:class:`~repro.fleet.perfmodel.NodeMeter` wrapped in a per-node
:class:`~repro.faults.FaultyApp` — so severity-scaled counter noise,
multiplex dropout and stale reads all stand between the true SMTsm and
the level decision, with each node corrupting its stream along its own
deterministic trajectory.  Level decisions themselves live in the
scheduler's per-(arch, workload) controller bank; the node records the
level each job actually ran at and counts real SMT transitions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.counters.pmu import CounterSample
from repro.faults.app import FaultyApp
from repro.faults.model import FaultConfig
from repro.fleet.perfmodel import FleetPerfModel, NodeMeter
from repro.fleet.trace import Job
from repro.util.rng import RngStream

__all__ = ["Node"]


class Node:
    """Mutable per-chip state owned by the discrete-event loop."""

    __slots__ = (
        "node_id", "arch", "max_level", "level", "queue", "running",
        "busy_until", "down_until", "est_free_at", "meter", "faulty",
        "fault_rng", "n_smt_switches", "n_crashes", "n_hangs",
        "n_completed",
    )

    def __init__(
        self,
        node_id: int,
        arch: str,
        model: FleetPerfModel,
        fault_config: FaultConfig,
        rng: RngStream,
    ):
        self.node_id = node_id
        self.arch = arch
        self.max_level = model.max_level(arch)
        self.level = self.max_level          # level the latest job ran at
        self.queue: Deque[Job] = deque()
        self.running: Optional[Job] = None
        self.busy_until = 0.0
        self.down_until = 0.0                # > now while restarting after a crash
        self.est_free_at = 0.0               # scheduler-maintained backlog estimate
        self.meter = NodeMeter(
            model, arch, model.workload_names[0], self.max_level
        )
        # One persistent FaultyApp per node: the corruption RNG stream
        # advances across jobs, so a node's fault history is one
        # deterministic trajectory rather than a fresh draw per job.
        self.faulty = FaultyApp(
            self.meter, fault_config, rng=rng.child("counters")
        )
        self.fault_rng = rng.child("lifecycle")
        self.n_smt_switches = 0
        self.n_crashes = 0
        self.n_hangs = 0
        self.n_completed = 0

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    @property
    def busy(self) -> bool:
        return self.running is not None

    def accepts(self, queue_depth: int) -> bool:
        return len(self.queue) < queue_depth

    def apply_level(self, level: int) -> None:
        """Set the level the next job runs at, counting real transitions."""
        if level != self.level:
            self.level = level
            self.n_smt_switches += 1

    def measure(self, job: Job, interval_s: float) -> CounterSample:
        """One corrupted counter sample for the job that just finished."""
        self.meter.retarget(job.workload, self.level)
        return self.faulty.advance(interval_s)

    def crash(self, now: float, restart_s: float) -> int:
        """Drop all queued/running work; return the number of jobs lost."""
        lost = len(self.queue) + (1 if self.running is not None else 0)
        self.queue.clear()
        self.running = None
        self.busy_until = now
        self.down_until = now + restart_s
        self.est_free_at = self.down_until
        self.level = self.max_level          # fresh boot comes up at max
        self.n_crashes += 1
        return lost
