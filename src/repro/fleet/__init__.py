"""Fleet-scale SMTsm placement: a simulated datacenter of SMT chips.

The paper picks the best SMT level for *one* chip; this package asks
the same question at datacenter scale.  A :class:`FleetScheduler`
drives a discrete-event simulation of N chips (mixed POWER7/Nehalem
fleets supported) under a seeded synthetic job trace, consulting noisy
online SMTsm readings per node (through
:class:`~repro.core.robust.HardenedController`, with
:mod:`repro.faults` counter corruption and node crash/hang injection)
to decide both the SMT level *and* the placement of every job.

Layout::

    config     FleetConfig (+ REPRO_FLEET_* env overrides), arch-mix spec
    trace      Job + the seeded synthetic arrival-trace generator
    perfmodel  one columnar/surrogate mega-batch -> per-(arch, workload,
               level) reference runs, fitted predictors, online meters
    node       Node: queue, SMT level, meter and fault state of one chip
    policy     Policy enum + PlacementPolicy protocol + implementations
    scheduler  the discrete-event loop, ControllerBank, FleetResult,
               simulate_fleet()
"""

from repro.fleet.config import FleetConfig, parse_arch_mix
from repro.fleet.policy import (
    PlacementPolicy,
    Policy,
    list_policies,
    make_policy,
    register_policy,
)
from repro.fleet.scheduler import FleetResult, FleetScheduler, simulate_fleet
from repro.fleet.trace import Job, generate_trace

__all__ = [
    "FleetConfig",
    "FleetResult",
    "FleetScheduler",
    "Job",
    "PlacementPolicy",
    "Policy",
    "generate_trace",
    "list_policies",
    "make_policy",
    "parse_arch_mix",
    "register_policy",
    "simulate_fleet",
]
