"""The fleet's performance model: one mega-batch solve, reused everywhere.

A 1000-chip x 100k-job simulation cannot afford a chip-solver call per
job.  It does not need one: every node is one chip of a registered
architecture and every job is a catalog workload at some SMT level, so
the full space of distinct steady states is just ``arch x workload x
level`` — about 140 rows for the reference fleet.  This module lowers
that whole space onto the columnar :class:`~repro.sim.table.ScenarioTable`
engine (or the surrogate fast path) as **one mega-batch**, then serves
the discrete-event loop from the precomputed results:

* job service times — ``size * wall_time(arch, workload, level)``;
* per-arch :class:`~repro.core.predictor.SmtPredictor` thresholds,
  fitted from the same runs (metric at the max level vs. measured
  speedup), feeding each node's
  :class:`~repro.core.robust.HardenedController`;
* :class:`NodeMeter` — the online measurable app whose ``advance``
  returns interval counters scaled from the reference run (the same
  linear model :class:`~repro.sim.online.SteadyApp` uses), which
  :class:`~repro.faults.FaultyApp` then corrupts.

Models are memoized per ``(arch set, workload set, strategy)``, so the
benchmark's policy x severity grid pays for the solve once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.arch.registry import get_architecture
from repro.core.metric import smtsm_from_run
from repro.core.predictor import Observation, SmtPredictor
from repro.counters.pmu import CounterSample
from repro.obs import get_tracer
from repro.sim.engine import RunSpec
from repro.sim.results import RunResult, speedup
from repro.simos.system import SystemSpec
from repro.util.validation import check_positive
from repro.workloads.catalog import all_workloads

__all__ = ["FleetPerfModel", "NodeMeter", "get_perf_model"]

#: Fleet mega-batches run the two batch engines only; per-run serial
#: strategies would defeat the point of the lowering.
FLEET_STRATEGIES = ("columnar", "surrogate")


@dataclass(frozen=True)
class FleetPerfModel:
    """Precomputed reference runs and fitted predictors for one fleet."""

    arch_names: Tuple[str, ...]
    workload_names: Tuple[str, ...]
    strategy: str
    systems: Mapping[str, SystemSpec]
    levels: Mapping[str, Tuple[int, ...]]
    #: runs[arch][workload][level] -> the size-1.0 reference run.
    runs: Mapping[str, Mapping[str, Mapping[int, RunResult]]]
    #: predictors[arch][low_level] -> threshold vs. the arch max level.
    predictors: Mapping[str, Mapping[int, SmtPredictor]]

    def max_level(self, arch: str) -> int:
        return self.levels[arch][-1]

    def reference(self, arch: str, workload: str, level: int) -> RunResult:
        return self.runs[arch][workload][level]

    def wall_s(self, arch: str, workload: str, level: int) -> float:
        """Service seconds for a size-1.0 job of ``workload`` at ``level``."""
        return self.runs[arch][workload][level].times.wall_time_s

    def mean_service_s(
        self, arch: str, mix_weights: Mapping[str, float], mean_size: float
    ) -> float:
        """Expected max-level service time under the trace's workload mix."""
        level = self.max_level(arch)
        return mean_size * sum(
            weight * self.wall_s(arch, name, level)
            for name, weight in mix_weights.items()
        )


class NodeMeter:
    """Online counters for the job currently running on one node.

    The measurable-app twin of :class:`~repro.sim.online.SteadyApp`,
    but served from the perf model's precomputed reference runs instead
    of a fresh solver call: ``advance(dt)`` scales the reference run's
    per-run counters to ``dt`` seconds of wall time at the current SMT
    level.  A per-node :class:`~repro.faults.FaultyApp` wraps this and
    corrupts what the controller sees.
    """

    def __init__(self, model: FleetPerfModel, arch: str, workload: str, level: int):
        self._model = model
        self._arch = arch
        self.workload = workload
        self.smt_level = level

    @property
    def phase_name(self) -> str:
        return self.workload

    def retarget(self, workload: str, level: int) -> None:
        """Point the meter at the job now running (workload + level)."""
        if level not in self._model.levels[self._arch]:
            raise ValueError(
                f"SMT{level} not valid on {self._arch}: "
                f"{self._model.levels[self._arch]}"
            )
        self.workload = workload
        self.smt_level = level

    def switch_level(self, level: int) -> None:
        self.retarget(self.workload, level)

    def advance(self, wall_seconds: float) -> CounterSample:
        check_positive("wall_seconds", wall_seconds)
        ref = self._model.reference(self._arch, self.workload, self.smt_level)
        scale = wall_seconds / ref.times.wall_time_s
        return CounterSample(
            arch=ref.arch,
            smt_level=self.smt_level,
            events={name: value * scale for name, value in ref.events.items()},
            wall_time_s=wall_seconds,
            avg_thread_cpu_s=wall_seconds
            * (ref.times.avg_thread_cpu_s / ref.times.wall_time_s),
            n_software_threads=ref.n_threads,
        )


def _build(
    arch_names: Tuple[str, ...],
    workload_names: Tuple[str, ...],
    strategy: str,
) -> FleetPerfModel:
    if strategy not in FLEET_STRATEGIES:
        raise ValueError(
            f"fleet strategy must be one of {FLEET_STRATEGIES}, got {strategy!r}"
        )
    catalog = all_workloads()
    unknown = [n for n in workload_names if n not in catalog]
    if unknown:
        raise KeyError(f"unknown workloads {unknown}; known: {sorted(catalog)}")

    systems: Dict[str, SystemSpec] = {}
    levels: Dict[str, Tuple[int, ...]] = {}
    for arch in arch_names:
        system = SystemSpec(get_architecture(arch), n_chips=1)
        systems[arch] = system
        levels[arch] = tuple(sorted(system.arch.smt_levels))

    # One mega-batch over the whole (arch x workload x level) space.
    specs: List[RunSpec] = []
    index: List[Tuple[str, str, int]] = []
    for arch in arch_names:
        for name in workload_names:
            spec = catalog[name]
            for level in levels[arch]:
                specs.append(
                    RunSpec(
                        system=systems[arch],
                        smt_level=level,
                        stream=spec.stream,
                        sync=spec.sync,
                        seed=0,
                        noise_rel=0.0,
                    )
                )
                index.append((arch, name, level))

    with get_tracer().span(
        "fleet.perfmodel", rows=len(specs), strategy=strategy
    ):
        if strategy == "surrogate":
            from repro.sim.surrogate import simulate_many_surrogate

            results, _ = simulate_many_surrogate(specs)
        else:
            from repro.sim.table import simulate_many_columnar

            results = simulate_many_columnar(specs)

    runs: Dict[str, Dict[str, Dict[int, RunResult]]] = {
        arch: {name: {} for name in workload_names} for arch in arch_names
    }
    for (arch, name, level), result in zip(index, results):
        runs[arch][name][level] = result

    predictors: Dict[str, Dict[int, SmtPredictor]] = {}
    for arch in arch_names:
        high = levels[arch][-1]
        fitted: Dict[int, SmtPredictor] = {}
        for low in levels[arch][:-1]:
            observations = [
                Observation(
                    name=name,
                    metric=smtsm_from_run(runs[arch][name][high]).value,
                    speedup=speedup(runs[arch][name][high], runs[arch][name][low]),
                )
                for name in workload_names
            ]
            fitted[low] = SmtPredictor.fit(
                observations, high_level=high, low_level=low
            )
        predictors[arch] = fitted

    return FleetPerfModel(
        arch_names=arch_names,
        workload_names=workload_names,
        strategy=strategy,
        systems=systems,
        levels=levels,
        runs=runs,
        predictors=predictors,
    )


_MODELS: Dict[Tuple[Tuple[str, ...], Tuple[str, ...], str], FleetPerfModel] = {}


def get_perf_model(
    arch_names: Tuple[str, ...],
    workload_names: Tuple[str, ...],
    strategy: str = "columnar",
) -> FleetPerfModel:
    """Memoized :func:`_build`; keys are the exact name tuples."""
    key = (tuple(arch_names), tuple(workload_names), strategy)
    model = _MODELS.get(key)
    if model is None:
        model = _build(*key)
        _MODELS[key] = model
    return model
