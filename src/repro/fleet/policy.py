"""The placement-policy API and its four implementations.

A policy answers two questions per job: *where* does it run (which
node) and *at what SMT level*.  The scheduler calls:

* :meth:`PlacementPolicy.bind` once, with the live node list;
* :meth:`PlacementPolicy.place` per arrival — returns a node id whose
  queue has room, or ``None`` to reject;
* :meth:`PlacementPolicy.level_for` per dispatch — the SMT level the
  job runs at;
* :meth:`PlacementPolicy.touch` whenever a node's state changed
  (dispatch, completion, crash), so index structures can refresh.

All four implementations keep per-job cost O(log n) via lazy heaps —
a 1000-node fleet never scans all nodes per job:

``smtsm``         places on the node with the earliest *estimated
                  completion* (backlog estimate from the perf model at
                  the node's controller-chosen level) and runs the job
                  at the controller's level — the full
                  telemetry-driven scheduler.
``least_loaded``  shortest queue, max SMT level (load signal only).
``round_robin``   rotating cursor, max SMT level.
``random``        seeded uniform pick, max SMT level.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fleet.node import Node
from repro.fleet.trace import Job
from repro.util.enums import ValidatedStrEnum
from repro.util.rng import RngStream

__all__ = [
    "Policy",
    "PlacementPolicy",
    "list_policies",
    "make_policy",
    "register_policy",
]


class Policy(ValidatedStrEnum):
    """Placement policies :func:`~repro.fleet.simulate_fleet` accepts.

    Members are their literal strings (``Policy.SMTSM == "smtsm"``),
    so CLI/config strings and typed constants are interchangeable; a
    typo raises a ``ValueError`` listing the valid options.
    """

    SMTSM = "smtsm"
    LEAST_LOADED = "least_loaded"
    ROUND_ROBIN = "round_robin"
    RANDOM = "random"


class PlacementPolicy:
    """Protocol base: where a job runs, and at what SMT level.

    ``bank`` is the scheduler's per-(arch, workload) controller bank —
    the fleet's online SMTsm oracle.  Telemetry-driven policies read
    levels from it; load-only policies ignore it and run at the arch
    maximum.
    """

    #: Registry name; set by subclasses.
    name = "abstract"
    #: Whether the scheduler should measure completed jobs and feed the
    #: controller bank.  Load-only policies skip the telemetry path.
    uses_telemetry = False

    def bind(self, nodes: Sequence[Node], queue_depth: int, bank) -> None:
        self.nodes = list(nodes)
        self.queue_depth = queue_depth
        self.bank = bank

    def place(self, job: Job, now: float) -> Optional[int]:
        """Node id to enqueue ``job`` on, or ``None`` to reject."""
        raise NotImplementedError

    def level_for(self, node: Node, job: Job) -> int:
        """SMT level the job runs at (default: the arch maximum)."""
        return node.max_level

    def touch(self, node: Node, now: float = 0.0) -> None:
        """Node state changed; refresh any index entries for it."""


class _HeapPolicy(PlacementPolicy):
    """Lazy-heap skeleton: order nodes by a key, skip stale entries.

    ``touch`` pushes the node's fresh key; ``place`` pops until the top
    entry's key matches the node's current key (stale entries from
    earlier pushes are discarded), giving O(log n) amortized placement.
    """

    def _key(self, node: Node, now: float) -> Tuple:
        raise NotImplementedError

    def bind(self, nodes: Sequence[Node], queue_depth: int, bank) -> None:
        super().bind(nodes, queue_depth, bank)
        self._heap: List[Tuple] = []
        self._current: Dict[int, Tuple] = {}
        for node in self.nodes:
            self.touch(node)

    def touch(self, node: Node, now: float = 0.0) -> None:
        key = self._key(node, now)
        self._current[node.node_id] = key
        heapq.heappush(self._heap, key + (node.node_id,))

    def place(self, job: Job, now: float) -> Optional[int]:
        heap = self._heap
        while heap:
            entry = heap[0]
            node_id = entry[-1]
            if self._current.get(node_id) != entry[:-1]:
                heapq.heappop(heap)      # stale: superseded by a later touch
                continue
            node = self.nodes[node_id]
            if node.down_until > now or not node.accepts(self.queue_depth):
                return None              # best candidate full/down -> shed
            return node_id
        return None


class LeastLoadedPolicy(_HeapPolicy):
    """Shortest queue wins; ties broken by node id (deterministic)."""

    name = "least_loaded"

    def _key(self, node: Node, now: float) -> Tuple:
        if node.down_until > now:
            load = self.queue_depth + 1  # restarting: sort behind everyone
        else:
            load = node.queue_len + (1 if node.busy else 0)
        return (load,)


class SmtsmPolicy(_HeapPolicy):
    """Earliest estimated completion at the controller-chosen level.

    ``node.est_free_at`` is maintained by the scheduler: the time the
    node's current backlog drains, estimated from the perf model at
    the levels the controller bank currently recommends.  The level
    decision comes from the hardened controller for the job's (arch,
    workload) pair, i.e. from noisy online SMTsm — this policy is
    exactly "the paper's metric, used as a placement signal".
    """

    name = "smtsm"
    uses_telemetry = True

    def _key(self, node: Node, now: float) -> Tuple:
        return (node.est_free_at,)

    def level_for(self, node: Node, job: Job) -> int:
        return self.bank.level(node.arch, job.workload)


class RoundRobinPolicy(PlacementPolicy):
    """Rotating cursor; skips full/down nodes up to one full lap."""

    name = "round_robin"

    def bind(self, nodes: Sequence[Node], queue_depth: int, bank) -> None:
        super().bind(nodes, queue_depth, bank)
        self._cursor = 0

    def place(self, job: Job, now: float) -> Optional[int]:
        n = len(self.nodes)
        for _ in range(n):
            node = self.nodes[self._cursor]
            self._cursor = (self._cursor + 1) % n
            if node.down_until <= now and node.accepts(self.queue_depth):
                return node.node_id
        return None


class RandomPolicy(PlacementPolicy):
    """Seeded uniform pick; one retry lap is a queue scan, so a full
    pick is simply rejected (matching an open-loop spray balancer)."""

    name = "random"

    def __init__(self, rng: RngStream):
        self._rng = rng

    def place(self, job: Job, now: float) -> Optional[int]:
        node = self.nodes[int(self._rng.integers(0, len(self.nodes)))]
        if node.down_until <= now and node.accepts(self.queue_depth):
            return node.node_id
        return None


_REGISTRY: Dict[str, Callable[[RngStream], PlacementPolicy]] = {
    Policy.SMTSM.value: lambda rng: SmtsmPolicy(),
    Policy.LEAST_LOADED.value: lambda rng: LeastLoadedPolicy(),
    Policy.ROUND_ROBIN.value: lambda rng: RoundRobinPolicy(),
    Policy.RANDOM.value: lambda rng: RandomPolicy(rng),
}


def register_policy(
    name: str, factory: Callable[[RngStream], PlacementPolicy]
) -> None:
    """Register a custom policy factory (``factory(rng) -> policy``).

    Shadowing a built-in raises — ambiguous benchmark configs are worse
    than a rename.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[key] = factory


def list_policies() -> List[str]:
    """Every registered policy name, built-ins first."""
    builtin = [p.value for p in Policy]
    extra = sorted(k for k in _REGISTRY if k not in builtin)
    return builtin + extra


def make_policy(name, rng: RngStream) -> PlacementPolicy:
    """Build a policy by name (enum member or literal string)."""
    key = str(name).lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ValueError(
            f"unknown policy {name!r}; valid options: "
            f"{', '.join(list_policies())}"
        )
    return factory(rng)
