"""The fleet discrete-event loop: arrivals, dispatch, completion, faults.

:func:`simulate_fleet` is the subsystem's entry point.  It

1. expands the arch-mix spec into one node per chip;
2. solves the whole ``arch x workload x level`` space in **one**
   columnar/surrogate mega-batch (:mod:`repro.fleet.perfmodel`) — the
   event loop itself never touches the chip solver, which is what
   keeps a 1000-chip x 100k-job run tractable;
3. calibrates the arrival rate to ``load x`` the fleet's max-level
   capacity and samples the seeded job trace;
4. runs the event loop: the placement policy picks a node (or sheds),
   jobs run at the policy-chosen SMT level, and every completion on a
   telemetry-driven policy feeds one fault-injected counter sample to
   the per-(arch, workload) :class:`ControllerBank` — the online SMTsm
   path, complete with blind-below-max probing;
5. injects node crashes (queue dropped, restart downtime) and hangs
   (stretched service) at severity-scaled rates.

Settlement is a hard invariant: every submitted job is exactly one of
completed / rejected at admission / lost to a crash, checked before the
result is returned and re-checked by the CI smoke gate.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.robust import HardenedConfig, HardenedController
from repro.faults.model import noise_profile
from repro.fleet.config import FleetConfig, parse_arch_mix
from repro.fleet.node import Node
from repro.fleet.perfmodel import (
    FLEET_STRATEGIES,
    FleetPerfModel,
    get_perf_model,
)
from repro.fleet.policy import PlacementPolicy, make_policy
from repro.fleet.trace import Job, generate_trace, mean_job_size, mix_weights
from repro.obs import get_tracer
from repro.sim.engine import DEFAULT_WORK
from repro.util.rng import RngStream

__all__ = ["ControllerBank", "FleetResult", "FleetScheduler", "simulate_fleet"]

_ARRIVE, _COMPLETE, _RESTART = 0, 1, 2


class ControllerBank:
    """Per-(arch, workload) hardened controllers, shared across nodes.

    The fleet's online SMTsm state: every node's (corrupted) completion
    samples for a workload feed one controller, whose current level is
    what telemetry-driven policies run that workload at, anywhere in
    the fleet.  Sharing is what lets the controllers actually warm up —
    a 1000-node fleet sees each (arch, workload) pair constantly even
    though any single node sees it rarely.
    """

    def __init__(
        self,
        model: FleetPerfModel,
        config: Optional[HardenedConfig] = None,
    ):
        self._model = model
        self._config = config
        self._controllers: Dict[Tuple[str, str], HardenedController] = {}

    def controller(self, arch: str, workload: str) -> HardenedController:
        key = (arch, workload)
        ctrl = self._controllers.get(key)
        if ctrl is None:
            ctrl = HardenedController(
                dict(self._model.predictors[arch]), self._config
            )
            self._controllers[key] = ctrl
        return ctrl

    def level(self, arch: str, workload: str) -> int:
        return self.controller(arch, workload).level

    def observe(self, arch: str, workload: str, sample):
        return self.controller(arch, workload).observe(sample)

    @property
    def n_switches(self) -> int:
        return sum(c.n_switches for c in self._controllers.values())


@dataclass(frozen=True)
class FleetResult:
    """Aggregate outcome of one fleet simulation (shape of BENCH_fleet)."""

    config: FleetConfig
    n_nodes: int
    arch_counts: Mapping[str, int]
    jobs_submitted: int
    jobs_completed: int
    rejected_admission: int
    rejected_crashed: int
    horizon_s: float                  # offered-trace duration (last arrival)
    makespan_s: float                 # last event (queues fully drained)
    #: Aggregate throughput is normalized by the *horizon*, not the
    #: makespan: the horizon is identical for every policy under the
    #: same trace, so shedding jobs (which shortens the drain tail)
    #: can never inflate a policy's score.
    throughput_jobs_s: float
    work_throughput: float            # useful instructions per second
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    smt_switches: int                 # node-level transitions actually applied
    controller_switches: int          # controller decisions (incl. probes)
    node_crashes: int
    node_hangs: int
    level_jobs: Mapping[int, int]     # dispatched jobs per SMT level

    @property
    def settled(self) -> bool:
        """Every submitted job is accounted for exactly once."""
        return self.jobs_submitted == (
            self.jobs_completed + self.rejected_admission + self.rejected_crashed
        )

    def payload(self) -> Dict[str, object]:
        """JSON-ready summary; stable key order, no float post-processing
        (bit-identical across runs of the same seed + config)."""
        return {
            "policy": self.config.policy,
            "strategy": self.config.strategy,
            "severity": self.config.severity,
            "seed": self.config.seed,
            "chips": self.config.chips,
            "arch_mix": self.config.arch_mix,
            "arch_counts": dict(sorted(self.arch_counts.items())),
            "load": self.config.load,
            "arrival": self.config.arrival,
            "mix": self.config.mix,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "rejected_admission": self.rejected_admission,
            "rejected_crashed": self.rejected_crashed,
            "settled": self.settled,
            "horizon_s": self.horizon_s,
            "makespan_s": self.makespan_s,
            "throughput_jobs_s": self.throughput_jobs_s,
            "work_throughput": self.work_throughput,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "smt_switches": self.smt_switches,
            "controller_switches": self.controller_switches,
            "node_crashes": self.node_crashes,
            "node_hangs": self.node_hangs,
            "level_jobs": {
                str(level): count
                for level, count in sorted(self.level_jobs.items())
            },
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def _expand_arch_mix(spec: str, chips: int) -> List[str]:
    """One arch name per chip, interleaved by the mix weights.

    A heterogeneous chip name in the mix (e.g. ``biglittle``) expands
    to its registered cluster architectures — a big/little node appears
    in the fleet as one node per cluster, each with its own SMT ceiling
    and bandwidth slice, so the placement policy schedules over the
    chip's per-cluster (arch, level) spaces.
    """
    from repro.arch.hetero import expand_node_archs

    entries = parse_arch_mix(spec)
    pattern: List[str] = []
    for name, weight in entries:
        pattern.extend(expand_node_archs(name) * weight)
    return [pattern[i % len(pattern)] for i in range(chips)]


class FleetScheduler:
    """One simulation run: owns nodes, policy, bank, and the event heap."""

    def __init__(self, config: FleetConfig):
        strategy = str(config.strategy)
        if strategy not in FLEET_STRATEGIES:
            # Route through the Strategy enum for the self-diagnosing
            # error, then reject batch-incapable strategies explicitly.
            from repro.experiments.runner import Strategy

            Strategy.parse(strategy)
            raise ValueError(
                f"fleet runs mega-batches; strategy must be one of "
                f"{FLEET_STRATEGIES}, got {strategy!r}"
            )
        self.config = config
        self.workload_names = config.workload_names()
        self.node_archs = _expand_arch_mix(config.arch_mix, config.chips)
        arch_names = tuple(dict.fromkeys(self.node_archs))  # stable unique
        self.model = get_perf_model(arch_names, self.workload_names, strategy)

        self.rng = RngStream(config.seed, ("fleet",))
        fault_config = noise_profile(config.severity)
        self.nodes = [
            Node(i, arch, self.model, fault_config, self.rng.child("node", i))
            for i, arch in enumerate(self.node_archs)
        ]
        self.bank = ControllerBank(self.model)
        self.policy: PlacementPolicy = make_policy(
            config.policy, self.rng.child("policy")
        )
        self.policy.bind(self.nodes, config.queue_depth, self.bank)

        self._crash_p = config.crash_prob * config.severity
        self._hang_p = config.hang_prob * config.severity

        # Offered load is calibrated against the fleet's *max-level*
        # capacity under the trace's workload mix, so every policy sees
        # the same arrival process and rate.
        weights = mix_weights(config, self.workload_names)
        mean_size = mean_job_size(config)
        capacity = sum(
            1.0 / self.model.mean_service_s(node.arch, weights, mean_size)
            for node in self.nodes
        )
        self.arrival_rate = config.load * capacity

        # Tallies
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.crash_lost = 0
        self.completed_work = 0.0
        self.latencies: List[float] = []
        self.level_jobs: Dict[int, int] = {}
        self._seq = 0
        self._heap: List[Tuple] = []
        self._last_t = 0.0

    # -- event plumbing ------------------------------------------------
    def _push(self, t: float, kind: int, node_id: int, job: Optional[Job]):
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, kind, node_id, job))

    def _est_service(self, node: Node, job: Job) -> float:
        level = self.policy.level_for(node, job)
        return job.size * self.model.wall_s(node.arch, job.workload, level)

    def _refresh_est(self, node: Node, now: float) -> None:
        if node.running is not None:
            est = node.busy_until
        else:
            est = max(now, node.down_until)
        for queued in node.queue:
            est += self._est_service(node, queued)
        node.est_free_at = est
        self.policy.touch(node, now)

    # -- event handlers ------------------------------------------------
    def _arrive(self, job: Job, now: float) -> None:
        self.submitted += 1
        node_id = self.policy.place(job, now)
        if node_id is None:
            self.rejected += 1
            return
        node = self.nodes[node_id]
        node.queue.append(job)
        if not node.busy and node.down_until <= now:
            self._dispatch(node, now)
        self._refresh_est(node, now)

    def _dispatch(self, node: Node, now: float) -> None:
        job = node.queue.popleft()
        level = self.policy.level_for(node, job)
        node.apply_level(level)
        service = job.size * self.model.wall_s(node.arch, job.workload, level)
        if self._hang_p > 0 and node.fault_rng.random() < self._hang_p:
            service += self.config.hang_s
            node.n_hangs += 1
        node.running = job
        node.busy_until = now + service
        self.level_jobs[level] = self.level_jobs.get(level, 0) + 1
        self._push(now + service, _COMPLETE, node.node_id, job)

    def _complete(self, node: Node, job: Job, now: float) -> None:
        if node.running is not job:
            return  # the node crashed while this job ran; already counted
        node.running = None
        node.n_completed += 1
        self.completed += 1
        self.completed_work += job.size
        self.latencies.append(now - job.t_arrival)

        if self.policy.uses_telemetry:
            sample = node.measure(job, self.config.measure_interval_s)
            self.bank.observe(node.arch, job.workload, sample)

        if self._crash_p > 0 and node.fault_rng.random() < self._crash_p:
            self.crash_lost += node.crash(now, self.config.restart_s)
            self._push(node.down_until, _RESTART, node.node_id, None)
        elif node.queue:
            self._dispatch(node, now)
        self._refresh_est(node, now)

    # -- the run -------------------------------------------------------
    def run(self) -> FleetResult:
        config = self.config
        trace = generate_trace(
            config, self.workload_names, self.arrival_rate,
            self.rng.child("trace"),
        )
        horizon = trace[-1].t_arrival
        for job in trace:
            self._push(job.t_arrival, _ARRIVE, -1, job)

        tracer = get_tracer()
        with tracer.span(
            "fleet.simulate",
            chips=config.chips, jobs=config.jobs,
            policy=str(config.policy), severity=config.severity,
        ):
            while self._heap:
                now, _, kind, node_id, job = heapq.heappop(self._heap)
                self._last_t = now
                if kind == _ARRIVE:
                    self._arrive(job, now)
                elif kind == _COMPLETE:
                    self._complete(self.nodes[node_id], job, now)
                else:  # _RESTART: recovered node rejoins the indexes
                    self._refresh_est(self.nodes[node_id], now)

        makespan = self._last_t if self._last_t > 0 else 1.0
        horizon = horizon if horizon > 0 else makespan
        latencies = sorted(self.latencies)
        n_complete = self.completed
        arch_counts: Dict[str, int] = {}
        for arch in self.node_archs:
            arch_counts[arch] = arch_counts.get(arch, 0) + 1

        result = FleetResult(
            config=config,
            n_nodes=len(self.nodes),
            arch_counts=arch_counts,
            jobs_submitted=self.submitted,
            jobs_completed=n_complete,
            rejected_admission=self.rejected,
            rejected_crashed=self.crash_lost,
            horizon_s=horizon,
            makespan_s=makespan,
            throughput_jobs_s=n_complete / horizon,
            work_throughput=self.completed_work * DEFAULT_WORK / horizon,
            latency_mean_s=(
                sum(latencies) / n_complete if n_complete else 0.0
            ),
            latency_p50_s=_percentile(latencies, 50.0),
            latency_p95_s=_percentile(latencies, 95.0),
            latency_p99_s=_percentile(latencies, 99.0),
            smt_switches=sum(n.n_smt_switches for n in self.nodes),
            controller_switches=self.bank.n_switches,
            node_crashes=sum(n.n_crashes for n in self.nodes),
            node_hangs=sum(n.n_hangs for n in self.nodes),
            level_jobs=dict(self.level_jobs),
        )
        if not result.settled:
            raise RuntimeError(
                f"fleet settlement broken: submitted={result.jobs_submitted} "
                f"!= completed={result.jobs_completed} + "
                f"rejected={result.rejected_admission} + "
                f"crashed={result.rejected_crashed}"
            )
        tracer.add("fleet.jobs_submitted", result.jobs_submitted)
        tracer.add("fleet.jobs_completed", result.jobs_completed)
        tracer.add("fleet.jobs_rejected", result.rejected_admission)
        tracer.add("fleet.jobs_crash_lost", result.rejected_crashed)
        tracer.add("fleet.smt_switches", result.smt_switches)
        tracer.add("fleet.node_crashes", result.node_crashes)
        tracer.add("fleet.node_hangs", result.node_hangs)
        return result


def simulate_fleet(
    config: Optional[FleetConfig] = None, **overrides
) -> FleetResult:
    """Run one fleet simulation.

    Pass a :class:`FleetConfig`, keyword overrides over one, or
    keywords alone (``simulate_fleet(chips=8, jobs=500)``).
    """
    if config is None:
        config = FleetConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)
    return FleetScheduler(config).run()
