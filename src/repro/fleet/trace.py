"""Seeded synthetic job traces for the fleet simulation.

A trace is a time-ordered list of :class:`Job` records sampled from the
workload catalog.  Three independently-configurable distributions shape
it (all drawn from :class:`~repro.util.rng.RngStream` children of the
fleet seed, so a ``(seed, config)`` pair always produces the identical
trace):

* **arrival process** — ``poisson`` (exponential inter-arrival gaps,
  the classic open-system model) or ``uniform`` (evenly spaced with
  ±25% jitter, a paced load generator);
* **job size** — a lognormal multiplier around 1.0 with configurable
  sigma; size scales the useful instructions a job carries, hence its
  service time at any SMT level;
* **workload mix** — ``uniform`` over the catalog names or ``zipf``
  (weight 1/rank in declaration order), modelling a fleet dominated by
  a few hot services with a long tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.fleet.config import FleetConfig
from repro.util.rng import RngStream

__all__ = ["Job", "generate_trace", "mean_job_size", "mix_weights"]


@dataclass(frozen=True)
class Job:
    """One unit of work offered to the fleet."""

    job_id: int
    t_arrival: float      # seconds since trace start
    workload: str         # catalog name
    size: float           # useful-work multiplier (1.0 = DEFAULT_WORK)

    def __post_init__(self):
        if self.t_arrival < 0:
            raise ValueError(f"t_arrival must be >= 0, got {self.t_arrival}")
        if self.size <= 0:
            raise ValueError(f"size must be > 0, got {self.size}")


def mean_job_size(config: FleetConfig) -> float:
    """Expected job-size multiplier (lognormal mean at the config sigma)."""
    return float(np.exp(0.5 * config.job_size_sigma**2))


def _mix_weights(config: FleetConfig, n: int) -> np.ndarray:
    if config.mix == "zipf":
        weights = 1.0 / np.arange(1, n + 1, dtype=float)
    else:
        weights = np.ones(n, dtype=float)
    return weights / weights.sum()


def mix_weights(config: FleetConfig, names: Sequence[str]):
    """Workload-name -> probability under the config's mix distribution."""
    probs = _mix_weights(config, len(names))
    return {name: float(p) for name, p in zip(names, probs)}


def generate_trace(
    config: FleetConfig,
    workload_names: Sequence[str],
    arrival_rate: float,
    rng: RngStream,
) -> List[Job]:
    """Sample ``config.jobs`` jobs arriving at ``arrival_rate`` jobs/s."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
    names = list(workload_names)
    if not names:
        raise ValueError("need at least one workload name")
    n_jobs = config.jobs

    arrivals_rng = rng.child("arrivals")
    if config.arrival == "poisson":
        gaps = arrivals_rng.gen.exponential(1.0 / arrival_rate, size=n_jobs)
    else:  # uniform: paced with bounded jitter, never reordering arrivals
        base = 1.0 / arrival_rate
        gaps = arrivals_rng.uniform(0.75 * base, 1.25 * base, size=n_jobs)
    times = np.cumsum(gaps)

    sizes = np.exp(
        rng.child("sizes").normal(0.0, 1.0, size=n_jobs) * config.job_size_sigma
    )
    picks = rng.child("mix").choice(
        len(names), size=n_jobs, p=_mix_weights(config, len(names))
    )

    return [
        Job(
            job_id=i,
            t_arrival=float(times[i]),
            workload=names[int(picks[i])],
            size=float(sizes[i]),
        )
        for i in range(n_jobs)
    ]
