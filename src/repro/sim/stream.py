"""Per-thread instruction-stream parameters.

A :class:`StreamParams` is the steady-state description of one software
thread's dynamic instruction stream, sufficient for both simulator
engines: the instruction mix, the exploitable instruction-level
parallelism, memory behaviour (reference miss rates plus how they scale
under cache sharing), branch behaviour, and memory-level parallelism.

Workload models (:mod:`repro.workloads`) produce these; the simulator
consumes them.  Keeping the boundary at "stream parameters" is what
lets the same engines run paper benchmarks, synthetic property-test
workloads and user-defined applications.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.arch.classes import Mix
from repro.util.validation import check_fraction, check_nonnegative, check_positive

#: Reference geometry at which workload MPKIs are specified: one thread
#: owning a full POWER7 private L1/L2 and a 1/8 share of its 32 MB L3.
REF_L1_KB = 32.0
REF_L2_KB = 256.0
REF_L3_MB_PER_THREAD = 4.0


@dataclass(frozen=True)
class MemoryBehavior:
    """Cache/memory behaviour of a thread's stream.

    Miss rates are given as misses per kilo-instruction (MPKI) at the
    reference geometry above; :mod:`repro.sim.cache` rescales them for
    the actual cache share a thread gets on a given machine at a given
    SMT level using a power law with exponent ``locality_alpha``:

    * ``locality_alpha = 0`` — compulsory/streaming misses, insensitive
      to cache size (STREAM);
    * large ``locality_alpha`` — strong reuse that thrashes when the
      per-thread share shrinks (blocked array codes).

    ``data_sharing`` in [0, 1] says how much of the footprint is shared
    between threads (1 = all threads walk the same data, so co-running
    threads add no cache pressure; 0 = disjoint slices).
    """

    l1_mpki: float
    l2_mpki: float
    l3_mpki: float
    locality_alpha: float
    data_sharing: float
    writeback_factor: float = 1.3  # DRAM traffic per miss, incl. writebacks

    def __post_init__(self):
        check_nonnegative("l1_mpki", self.l1_mpki)
        check_nonnegative("l2_mpki", self.l2_mpki)
        check_nonnegative("l3_mpki", self.l3_mpki)
        if not (self.l1_mpki >= self.l2_mpki >= self.l3_mpki):
            raise ValueError(
                "reference MPKIs must be monotone (global rates): "
                f"L1={self.l1_mpki} >= L2={self.l2_mpki} >= L3={self.l3_mpki} violated"
            )
        check_nonnegative("locality_alpha", self.locality_alpha)
        check_fraction("data_sharing", self.data_sharing)
        if self.writeback_factor < 1.0:
            raise ValueError(f"writeback_factor must be >= 1, got {self.writeback_factor}")


@dataclass(frozen=True)
class StreamParams:
    """Steady-state description of one thread's instruction stream."""

    mix: Mix
    ilp: float                     # exploitable instructions/cycle with a full window
    memory: MemoryBehavior
    branch_mispredict_rate: float  # mispredicts per branch instruction
    mlp: float = 2.0               # overlapping outstanding misses

    def __post_init__(self):
        check_positive("ilp", self.ilp)
        if self.ilp > 8.0:
            raise ValueError(f"ilp {self.ilp} is implausible (> 8)")
        check_fraction("branch_mispredict_rate", self.branch_mispredict_rate)
        check_positive("mlp", self.mlp)

    def with_mix(self, mix: Mix) -> "StreamParams":
        """Copy with a different mix (spin-loop blending)."""
        return replace(self, mix=mix)

    def scaled_misses(self, factor: float) -> "StreamParams":
        """Copy with all reference MPKIs multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"miss scale factor must be >= 0, got {factor}")
        mem = replace(
            self.memory,
            l1_mpki=self.memory.l1_mpki * factor,
            l2_mpki=self.memory.l2_mpki * factor,
            l3_mpki=self.memory.l3_mpki * factor,
        )
        return replace(self, memory=mem)
