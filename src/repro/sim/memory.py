"""DRAM bandwidth and NUMA models.

The paper's second contention mechanism (§I): "a workload stressing the
memory system may cause memory-related stalls to become even longer and
more frequent on an SMT processor due to increased contention for the
memory bandwidth".  We model the memory controller as a queueing
station: as offered traffic approaches the sustainable bandwidth, the
effective memory latency inflates super-linearly; the chip solver
iterates this against the core throughput model to a fixed point
(more threads -> more traffic -> longer latency -> lower per-thread
throughput -> less traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_fraction, check_nonnegative, check_positive

#: Queueing saturation guard: utilization is clipped here so the latency
#: multiplier stays finite; the fixed point settles below it.
RHO_CAP = 0.96
#: Upper bound on latency inflation (row-buffer and controller effects
#: bound the real-world blow-up too).
MAX_LATENCY_MULT = 10.0


@dataclass(frozen=True)
class BandwidthModel:
    """M/M/1-flavoured latency inflation for a memory channel pool."""

    capacity_gbps: float

    def __post_init__(self):
        check_positive("capacity_gbps", self.capacity_gbps)

    def utilization(self, traffic_gbps: float) -> float:
        check_nonnegative("traffic_gbps", traffic_gbps)
        return float(traffic_gbps / self.capacity_gbps)

    def latency_multiplier(self, traffic_gbps: float) -> float:
        """Effective-latency multiplier at the given offered traffic.

        DRAM controllers keep latency nearly flat until utilization
        approaches the sustainable limit, then queueing delay blows up;
        the cubed-utilization M/M/1 variant ``1 / (1 - rho^3)`` captures
        that knee (flat to ~70%, steep past 85%).  A softer curve would
        let the bandwidth fixed point settle far below capacity and
        leave headroom that real saturated streams don't have.
        """
        rho = min(self.utilization(traffic_gbps), RHO_CAP)
        return float(min(1.0 / (1.0 - rho ** 3), MAX_LATENCY_MULT))

    def achievable_traffic(self, demand_gbps: float) -> float:
        """Traffic actually served (can't exceed capacity)."""
        check_nonnegative("demand_gbps", demand_gbps)
        return float(min(demand_gbps, self.capacity_gbps))


def numa_remote_fraction(n_chips: int, data_sharing: float) -> float:
    """Fraction of memory accesses that cross the chip interconnect.

    With one chip there is no remote traffic.  With ``c`` chips, shared
    data is spread uniformly across the chips' memories, so a fraction
    ``(c - 1) / c`` of accesses to *shared* data are remote; accesses to
    a thread's private slice are local (first-touch placement).
    """
    if n_chips < 1:
        raise ValueError(f"n_chips must be >= 1, got {n_chips}")
    check_fraction("data_sharing", data_sharing)
    if n_chips == 1:
        return 0.0
    return data_sharing * (n_chips - 1) / n_chips


def numa_extra_latency(n_chips: int, data_sharing: float, numa_extra_cycles: float) -> float:
    """Average extra memory latency (cycles) from cross-chip accesses."""
    check_nonnegative("numa_extra_cycles", numa_extra_cycles)
    return numa_remote_fraction(n_chips, data_sharing) * numa_extra_cycles
