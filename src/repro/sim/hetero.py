"""Simulating heterogeneous chips: per-cluster decomposition.

A :class:`~repro.arch.hetero.HeteroChip` is a set of clusters whose
DRAM bandwidth is statically QoS-partitioned (see ``repro.arch.hetero``),
so a run that spreads an SPMD workload across the whole chip decomposes
*exactly* into one independent homogeneous sub-run per cluster: each
cluster solves its own port/bandwidth fixed point against its own
bandwidth slice, at its own SMT level.  That makes every existing
engine — the scalar reference, the batched solver, and the columnar
:class:`~repro.sim.table.ScenarioTable` — reusable per cluster, and the
serial-vs-columnar differential bound (≤ 1e-9 relative) carries over to
heterogeneous results for free.

The chip-level wall time is the slowest cluster's wall time (a barrier
at the end of the data-parallel region); chip-level throughput is the
sum of per-cluster useful rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.hetero import HeteroChip
from repro.sim.chip import ChipSolution, solve_chip
from repro.sim.engine import DEFAULT_WORK, RunSpec, simulate_many, simulate_run
from repro.sim.results import RunResult
from repro.sim.stream import StreamParams
from repro.simos.scheduler import place_threads
from repro.simos.sync import SyncProfile
from repro.simos.system import SystemSpec

#: Mirrors ``repro.experiments.runner.Strategy`` for the subset that is
#: meaningful per cluster.
_STRATEGIES = ("serial", "batched", "columnar")


@dataclass(frozen=True)
class HeteroRunSpec:
    """One workload run spread across every cluster of a hetero chip.

    ``levels`` maps cluster name -> SMT level; omitted clusters run at
    their maximum level (the chip's asymmetric ceilings).  Per-cluster
    seeds are derived from ``seed`` and the cluster index so clusters
    have independent (but reproducible) measurement jitter.
    """

    chip: HeteroChip
    stream: StreamParams
    sync: SyncProfile
    levels: Mapping[str, int] = field(default_factory=dict)
    n_chips: int = 1
    useful_instructions: float = DEFAULT_WORK
    seed: int = 0
    noise_rel: float = 0.01

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {self.n_chips}")
        # Validates cluster names and each level against its ceiling.
        self.chip.validate_levels(self.levels)

    def resolved_levels(self) -> Dict[str, int]:
        return self.chip.validate_levels(self.levels)

    def cluster_specs(self) -> List[Tuple[str, RunSpec]]:
        """The per-cluster homogeneous sub-runs, in cluster order.

        Work splits across clusters proportionally to their context
        counts at the selected levels — breadth-first data-parallel
        decomposition, every context gets an equal slice.
        """
        levels = self.resolved_levels()
        contexts = {
            spec.name: spec.cores * levels[spec.name] * self.n_chips
            for spec in self.chip.clusters
        }
        total = sum(contexts.values())
        out: List[Tuple[str, RunSpec]] = []
        for i, spec in enumerate(self.chip.clusters):
            share = contexts[spec.name] / total
            out.append((
                spec.name,
                RunSpec(
                    system=SystemSpec(spec.arch, n_chips=self.n_chips),
                    smt_level=levels[spec.name],
                    stream=self.stream,
                    sync=self.sync,
                    useful_instructions=self.useful_instructions * share,
                    seed=self.seed * 1000003 + i,
                    noise_rel=self.noise_rel,
                ),
            ))
        return out


@dataclass(frozen=True)
class HeteroResult:
    """Chip-level outcome plus the per-cluster breakdown."""

    chip: HeteroChip
    levels: Mapping[str, int]
    cluster_results: Mapping[str, RunResult]

    @property
    def wall_seconds(self) -> float:
        """Slowest cluster: the data-parallel region's closing barrier."""
        return max(r.times.wall_time_s for r in self.cluster_results.values())

    @property
    def performance(self) -> float:
        """Useful work per second for the whole chip.

        Clusters finishing early idle at the barrier, so the chip-level
        rate is total useful work over the barrier wall time — not the
        sum of the clusters' isolated rates.
        """
        total_work = sum(
            r.useful_instructions for r in self.cluster_results.values()
        )
        return total_work / self.wall_seconds

    @property
    def aggregate_rate(self) -> float:
        """Sum of isolated per-cluster rates (no-barrier upper bound)."""
        return sum(r.performance for r in self.cluster_results.values())


def simulate_hetero(spec: HeteroRunSpec, strategy: str = "columnar") -> HeteroResult:
    """Simulate one hetero run via the per-cluster decomposition."""
    results = simulate_many_hetero([spec], strategy=strategy)
    return results[0]


def simulate_many_hetero(
    specs: Sequence[HeteroRunSpec], strategy: str = "columnar"
) -> List[HeteroResult]:
    """Simulate many hetero runs, batching sub-runs across specs.

    All clusters of all specs are flattened into one spec list and
    handed to the selected engine — the columnar path then groups by
    cluster architecture instance, so e.g. every ``biglittle.big``
    sub-run across the whole batch shares one :class:`ScenarioTable`.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r} for hetero runs; use one of "
            f"{_STRATEGIES}"
        )
    specs = list(specs)
    flat: List[RunSpec] = []
    shapes: List[Tuple[HeteroRunSpec, List[str]]] = []
    for hspec in specs:
        names: List[str] = []
        for name, sub in hspec.cluster_specs():
            names.append(name)
            flat.append(sub)
        shapes.append((hspec, names))

    if strategy == "serial":
        flat_results = [simulate_run(s) for s in flat]
    elif strategy == "batched":
        flat_results = simulate_many(flat)
    else:
        from repro.sim.table import simulate_many_columnar

        flat_results = simulate_many_columnar(flat)

    out: List[HeteroResult] = []
    cursor = 0
    for hspec, names in shapes:
        cluster_results = {
            name: flat_results[cursor + i] for i, name in enumerate(names)
        }
        cursor += len(names)
        out.append(
            HeteroResult(
                chip=hspec.chip,
                levels=hspec.resolved_levels(),
                cluster_results=cluster_results,
            )
        )
    return out


def solve_hetero_chip(
    chip: HeteroChip,
    stream: StreamParams,
    levels: Optional[Mapping[str, int]] = None,
    n_chips: int = 1,
) -> Dict[str, ChipSolution]:
    """Steady-state fixed point per cluster (no sync/jitter layer).

    The hetero analogue of :func:`repro.sim.chip.solve_chip`: each
    cluster is packed breadth-first at its level and solved against its
    own QoS bandwidth slice.  Used by the invariant pillar to re-check
    physics laws on heterogeneous samples.
    """
    resolved = chip.validate_levels(levels or {})
    out: Dict[str, ChipSolution] = {}
    for spec in chip.clusters:
        system = SystemSpec(spec.arch, n_chips=n_chips)
        level = resolved[spec.name]
        placement = place_threads(system, level, system.contexts_at(level))
        out[spec.name] = solve_chip(placement, stream)
    return out
