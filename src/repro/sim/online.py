"""Online-measurement adapter: a running application PerfStat can probe.

:class:`SteadyApp` exposes a (possibly phase-changing) simulated
application as a :class:`~repro.counters.perfstat.MeasurableApp`: each
``advance(dt)`` returns the exact counters the hardware would have
accumulated over ``dt`` seconds of wall time at the current phase and
SMT level.  This is the piece that lets the perf-overhead ablation ask
the reproduction-band question — how much sampling cost can the online
metric absorb before its decisions degrade?
"""

from __future__ import annotations

from typing import Optional

from repro.counters.pmu import CounterSample
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.results import RunResult
from repro.simos.sync import SyncProfile
from repro.simos.system import SystemSpec
from repro.sim.stream import StreamParams
from repro.util.validation import check_positive
from repro.workloads.phases import PhasedWorkload
from repro.workloads.spec import WorkloadSpec


class SteadyApp:
    """A simulated application running at a fixed SMT level.

    The steady-state solution is computed once per phase; ``advance``
    scales the per-second counter rates by the requested interval, so
    sampling is cheap and exactly linear in time — matching a real
    stationary program.
    """

    def __init__(
        self,
        system: SystemSpec,
        smt_level: int,
        workload: WorkloadSpec,
        *,
        phases: Optional[PhasedWorkload] = None,
        seed: int = 0,
    ):
        self.system = system
        self.smt_level = system.arch.validate_smt_level(smt_level)
        self.workload = workload
        self.phases = phases
        self.seed = seed
        self.elapsed_s = 0.0
        self.work_done = 0.0  # useful instructions completed so far
        self._phase_name: Optional[str] = None
        self._reference: Optional[RunResult] = None
        self._refresh(self._current_spec())

    def _current_spec(self) -> WorkloadSpec:
        if self.phases is None:
            return self.workload
        return self.phases.phase_at(self.work_done).spec

    def _refresh(self, spec: WorkloadSpec) -> None:
        self._phase_name = spec.name
        self._reference = simulate_run(
            RunSpec(
                system=self.system,
                smt_level=self.smt_level,
                stream=spec.stream,
                sync=spec.sync,
                seed=self.seed,
                noise_rel=0.0,
            )
        )

    def advance(self, wall_seconds: float) -> CounterSample:
        """Run for ``wall_seconds``; return the exact interval counters."""
        check_positive("wall_seconds", wall_seconds)
        spec = self._current_spec()
        if spec.name != self._phase_name:
            self._refresh(spec)
        ref = self._reference
        scale = wall_seconds / ref.times.wall_time_s
        events = {name: value * scale for name, value in ref.events.items()}
        self.elapsed_s += wall_seconds
        # Progress accumulates at the *current* phase's rate; the total
        # is monotone, so phases advance and never flip back.
        self.work_done += wall_seconds * ref.performance
        return CounterSample(
            arch=self.system.arch,
            smt_level=self.smt_level,
            events=events,
            wall_time_s=wall_seconds,
            avg_thread_cpu_s=wall_seconds
            * (ref.times.avg_thread_cpu_s / ref.times.wall_time_s),
            n_software_threads=ref.n_threads,
        )

    def switch_level(self, level: int) -> None:
        """Re-place the application at a new SMT level (online switch).

        Progress (elapsed time, completed work) carries over; the
        steady-state solution is recomputed at the new level, so the
        next ``advance`` samples counters as the re-placed program
        would generate them.  This is the hook a closed-loop controller
        (:func:`repro.core.robust.drive_online`) drives.
        """
        level = self.system.arch.validate_smt_level(level)
        if level == self.smt_level:
            return
        self.smt_level = level
        self._refresh(self._current_spec())

    @property
    def phase_name(self) -> Optional[str]:
        return self._phase_name
