"""Cache-hierarchy sharing model.

Converts a stream's reference MPKIs into the effective MPKIs it sees on
a particular machine with a particular number of co-resident threads.

The model is a capacity power law.  A thread's miss rate at level L
scales with the ratio of its *reference* per-thread capacity to its
*actual* per-thread capacity:

    mpki_L = mpki_L_ref * (C_ref / C_actual) ** locality_alpha

where the actual capacity is the level's size divided by the number of
*effective* sharers.  Threads that share data do not multiply pressure:
with ``data_sharing = d`` and ``k`` sharers, the effective sharer count
is ``1 + (k - 1) * (1 - d)``.

L1/L2 are private per core and shared by that core's hardware threads;
L3 is shared by every thread on the chip.  Monotonicity (global miss
rates can only shrink down the hierarchy) is enforced after scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.machine import Architecture
from repro.sim.stream import (
    MemoryBehavior,
    REF_L1_KB,
    REF_L2_KB,
    REF_L3_MB_PER_THREAD,
    StreamParams,
)
from repro.util.validation import check_positive

#: A miss-rate scale factor cap: sharing can thrash a cache badly, but a
#: finite reuse distance bounds how bad it gets.
MAX_PRESSURE_SCALE = 12.0


@dataclass(frozen=True)
class SharingContext:
    """Who shares what with the thread under analysis.

    ``core_pressure`` optionally overrides the count-based effective
    sharer number for the private (L1/L2) caches with a value computed
    from *who* the co-runners actually are — heavier-footprint partners
    push harder (see :func:`corunner_pressure`).  ``None`` falls back to
    the homogeneous count-based formula.
    """

    threads_per_core: int
    threads_per_chip: int
    core_pressure: Optional[float] = None

    def __post_init__(self):
        if self.threads_per_core < 1:
            raise ValueError(f"threads_per_core must be >= 1, got {self.threads_per_core}")
        if self.threads_per_chip < self.threads_per_core:
            raise ValueError(
                f"threads_per_chip ({self.threads_per_chip}) < "
                f"threads_per_core ({self.threads_per_core})"
            )
        if self.core_pressure is not None and self.core_pressure < 1.0:
            raise ValueError(
                f"core_pressure must be >= 1 (self included), got {self.core_pressure}"
            )


@dataclass(frozen=True)
class EffectiveMissRates:
    """Global MPKIs after sharing adjustment (monotone down the hierarchy)."""

    l1_mpki: float
    l2_mpki: float
    l3_mpki: float

    @property
    def l2_hit_mpki(self) -> float:
        """References served by L2 (missed L1, hit L2), per kilo-instruction."""
        return self.l1_mpki - self.l2_mpki

    @property
    def l3_hit_mpki(self) -> float:
        return self.l2_mpki - self.l3_mpki


def effective_sharers(k: int, data_sharing: float) -> float:
    """Effective number of cache sharers given the sharing degree."""
    if k < 1:
        raise ValueError(f"sharer count must be >= 1, got {k}")
    return 1.0 + (k - 1) * (1.0 - data_sharing)


#: Bounds on a co-runner's relative footprint pressure.
MIN_RELATIVE_PRESSURE = 0.25
MAX_RELATIVE_PRESSURE = 3.0


def corunner_pressure(victim: MemoryBehavior, others) -> float:
    """Partner-aware effective sharers for the private caches.

    Each co-runner displaces the victim in proportion to its footprint
    heat relative to the victim's own (measured by reference L1 MPKI),
    discounted by the co-runner's data sharing.  With identical streams
    this reduces exactly to :func:`effective_sharers`, so homogeneous
    (SPMD) runs are unaffected; only mixed co-schedules feel it.
    """
    victim_heat = victim.l1_mpki + 1e-3
    pressure = 1.0
    for other in others:
        relative = float(
            np.clip((other.l1_mpki + 1e-3) / victim_heat,
                    MIN_RELATIVE_PRESSURE, MAX_RELATIVE_PRESSURE)
        )
        pressure += (1.0 - other.data_sharing) * relative
    return pressure


class CacheModel:
    """Evaluates effective miss rates for streams on an architecture."""

    def __init__(self, arch: Architecture):
        self.arch = arch

    def pressure_scale(self, c_ref: float, c_actual: float, alpha: float) -> float:
        """The power-law scale, clipped to [1/MAX, MAX].

        More capacity than the reference can *reduce* misses (this is
        how POWER7's 4 MB/core L3 tames Streamcluster relative to
        Nehalem's 2 MB/thread, paper §IV-A), bounded below so misses
        never vanish entirely.
        """
        check_positive("c_ref", c_ref)
        check_positive("c_actual", c_actual)
        scale = (c_ref / c_actual) ** alpha
        return float(np.clip(scale, 1.0 / MAX_PRESSURE_SCALE, MAX_PRESSURE_SCALE))

    def effective_rates(
        self, memory: MemoryBehavior, sharing: SharingContext
    ) -> EffectiveMissRates:
        caches = self.arch.caches
        alpha = memory.locality_alpha
        d = memory.data_sharing

        if sharing.core_pressure is not None:
            k_core = sharing.core_pressure
        else:
            k_core = effective_sharers(sharing.threads_per_core, d)
        c_l1 = caches.l1d_kb / k_core
        c_l2 = caches.l2_kb / k_core
        l1 = memory.l1_mpki * self.pressure_scale(REF_L1_KB, c_l1, alpha)
        l2 = memory.l2_mpki * self.pressure_scale(REF_L2_KB, c_l2, alpha)

        k_chip = effective_sharers(sharing.threads_per_chip, d)
        c_l3 = (caches.l3_mb * 1024.0) / k_chip  # KB per thread
        l3 = memory.l3_mpki * self.pressure_scale(
            REF_L3_MB_PER_THREAD * 1024.0, c_l3, alpha
        )

        # Global rates are monotone: a deeper level cannot miss more
        # often (per instruction) than a shallower one.
        l2 = min(l2, l1)
        l3 = min(l3, l2)
        return EffectiveMissRates(l1_mpki=l1, l2_mpki=l2, l3_mpki=l3)

    def memory_stall_per_instruction(
        self,
        rates: EffectiveMissRates,
        stream: StreamParams,
        mem_latency_mult: float = 1.0,
        extra_mem_latency: float = 0.0,
    ) -> float:
        """Average memory-stall cycles charged to one instruction.

        Hits in deeper caches charge their level latency; L3 misses
        charge the (possibly bandwidth-inflated, possibly NUMA-extended)
        memory latency.  All stalls are divided by the stream's
        memory-level parallelism — overlapping misses hide each other.
        """
        if mem_latency_mult < 1.0:
            raise ValueError(f"mem_latency_mult must be >= 1, got {mem_latency_mult}")
        caches = self.arch.caches
        lat_mem = caches.lat_mem * mem_latency_mult + extra_mem_latency
        per_kilo = (
            rates.l2_hit_mpki * caches.lat_l2
            + rates.l3_hit_mpki * caches.lat_l3
            + rates.l3_mpki * lat_mem
        )
        return per_kilo / 1000.0 / stream.mlp

    def long_stall_per_instruction(
        self,
        rates: EffectiveMissRates,
        stream: StreamParams,
        mem_latency_mult: float = 1.0,
        extra_mem_latency: float = 0.0,
    ) -> float:
        """The L3-and-beyond part of the stall — the component during
        which a thread's issue-queue share fills and dispatch is held
        (short L2 round trips rarely back up the dispatcher)."""
        caches = self.arch.caches
        lat_mem = caches.lat_mem * mem_latency_mult + extra_mem_latency
        per_kilo = rates.l3_hit_mpki * caches.lat_l3 + rates.l3_mpki * lat_mem
        return per_kilo / 1000.0 / stream.mlp

    def traffic_bytes_per_instruction(
        self, rates: EffectiveMissRates, memory: MemoryBehavior
    ) -> float:
        """DRAM bytes moved per instruction (fills + writebacks)."""
        return (
            rates.l3_mpki / 1000.0 * self.arch.caches.line_bytes * memory.writeback_factor
        )
