"""Persistent on-disk cache of converged :class:`RunResult`s.

A full catalog sweep is deterministic: the result of one run is a pure
function of the architecture, system shape, run spec (stream, sync,
work, seed, noise) and the simulator's model constants.  Bench sessions
and figure projections repeat the same sweeps over and over, so the
converged results are content-addressed and stored on disk — a rerun
with identical inputs is a file read, not a simulation.

The cache key is a SHA-256 over a canonical JSON rendering of:

* ``MODEL_VERSION`` — bumped whenever the simulator's semantics change;
* the physics constants of every model layer (cache pressure caps,
  bandwidth knee, spin iteration count, ...), so editing a constant
  invalidates stale entries automatically;
* the full architecture description (ports, partition, caches, ...);
* the system shape and every :class:`RunSpec` field (stream, sync,
  thread count, work, seed, noise).

Floats are embedded with ``repr`` round-tripping (Python's ``json``
preserves IEEE doubles exactly), so any change in any input produces a
different key.  Entries live under ``results/.runcache/`` by default;
override with the ``REPRO_RUNCACHE_DIR`` environment variable or the
constructor argument, and disable default use entirely by setting
``REPRO_RUNCACHE=0``.  Stored payloads carry the full result (times,
counter events, per-thread IPC), so a cache hit reconstructs a
:class:`RunResult` that is exactly equal to the recomputed one.

**Multi-process safety.**  The serving tier's worker pool (and
``--jobs`` sweeps) has many processes reading and writing one cache
directory concurrently, with no lock.  Three rules make that safe:

* *Atomic publish*: :meth:`RunCache.put` writes the payload to an
  exclusive ``mkstemp`` temp file in the cache directory and publishes
  it with ``os.replace`` — atomic within a filesystem — so a reader
  sees either no entry or a complete entry, never a torn half-write.
  Concurrent writers of the same key are last-write-wins, which is
  harmless: the payload is a pure function of the key.
* *Schema-checked reads*: every :meth:`RunCache.get` validates the
  stored ``schema`` stamp and the full field set before trusting the
  bytes; anything malformed is counted (``runcache.corrupt`` /
  ``runcache.schema_mismatch``), deleted, and treated as a miss —
  unlinking is itself atomic, so racing readers degrade to misses.
* *Crash-safe cleanup*: a writer killed between ``mkstemp`` and
  ``os.replace`` leaves only an orphaned ``*.tmp`` file that no reader
  ever looks at (``get`` resolves ``*.json`` paths only);
  :meth:`RunCache.clear` sweeps such stragglers.

``tests/sim/test_runcache_concurrent.py`` hammers these guarantees
with N simultaneous writer/reader processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.arch.machine import Architecture
from repro.obs import get_tracer
from repro.sim import chip, fast_core, memory
from repro.sim.branch import SHARING_PENALTY_PER_THREAD
from repro.sim.cache import (
    MAX_PRESSURE_SCALE,
    MAX_RELATIVE_PRESSURE,
    MIN_RELATIVE_PRESSURE,
)
from repro.sim.results import RunResult
from repro.sim.stream import REF_L1_KB, REF_L2_KB, REF_L3_MB_PER_THREAD
from repro.simos.timebase import TimeAccounting

#: Bump on any behavioural change to the solvers or run loop.
MODEL_VERSION = 1

#: Environment switches.
ENV_DISABLE = "REPRO_RUNCACHE"      # "0" disables default caching
ENV_CACHE_DIR = "REPRO_RUNCACHE_DIR"

DEFAULT_CACHE_DIR = Path("results") / ".runcache"


def cache_enabled_by_default() -> bool:
    """Whether callers should cache when the user expressed no choice."""
    return os.environ.get(ENV_DISABLE, "1") != "0"


def default_cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR, str(DEFAULT_CACHE_DIR)))


def _constants_fingerprint() -> Dict[str, Any]:
    """Model constants whose change must invalidate cached runs."""
    from repro.arch.classes import SPIN_LOOP_MIX
    from repro.sim.engine import MAX_SPIN, SPIN_ITERATIONS

    return {
        "queue_fill_factor": fast_core.QUEUE_FILL_FACTOR,
        "priority_weight_base": fast_core.PRIORITY_WEIGHT_BASE,
        "neutral_priority": fast_core.NEUTRAL_PRIORITY,
        "sharing_penalty_per_thread": SHARING_PENALTY_PER_THREAD,
        "max_pressure_scale": MAX_PRESSURE_SCALE,
        "relative_pressure": [MIN_RELATIVE_PRESSURE, MAX_RELATIVE_PRESSURE],
        "ref_geometry": [REF_L1_KB, REF_L2_KB, REF_L3_MB_PER_THREAD],
        "rho_cap": memory.RHO_CAP,
        "max_latency_mult": memory.MAX_LATENCY_MULT,
        "bisection": [chip.BISECTION_STEPS, chip.TOLERANCE],
        "spin": [SPIN_ITERATIONS, MAX_SPIN],
        "spin_loop_mix": SPIN_LOOP_MIX.vector.tolist(),
        "model_version": MODEL_VERSION,
    }


def _arch_fingerprint(arch: Architecture) -> Dict[str, Any]:
    topo = arch.topology
    part = arch.partition
    return {
        "name": arch.name,
        "frequency_ghz": arch.frequency_ghz,
        "cores_per_chip": arch.cores_per_chip,
        "smt_levels": list(arch.smt_levels),
        "routing": topo.routing_matrix.tolist(),
        "capacities": topo.capacities.tolist(),
        "port_names": list(topo.port_names),
        "partition": {
            "fetch_width": part.fetch_width,
            "dispatch_width": part.dispatch_width,
            "issue_width": part.issue_width,
            "queue_entries": part.queue_entries,
            "rob_entries": part.rob_entries,
            "queue_share": {str(k): v for k, v in sorted(part.queue_share.items())},
            "rob_share": {str(k): v for k, v in sorted(part.rob_share.items())},
            "smt1_boost": part.smt1_boost,
        },
        "caches": asdict(arch.caches),
        "branch_penalty": arch.branch_penalty,
        "metric_space": arch.metric_space,
        "ideal_class_fractions": (
            list(arch.ideal_class_fractions)
            if arch.ideal_class_fractions is not None
            else None
        ),
        "dispatch_held_event": arch.dispatch_held_event,
    }


def _spec_fingerprint(spec) -> Dict[str, Any]:
    stream = spec.stream
    return {
        "smt_level": spec.smt_level,
        "n_threads": spec.resolved_threads(),
        "n_chips": spec.system.n_chips,
        "useful_instructions": spec.useful_instructions,
        "seed": spec.seed,
        "noise_rel": spec.noise_rel,
        "stream": {
            "mix": stream.mix.vector.tolist(),
            "ilp": stream.ilp,
            "mlp": stream.mlp,
            "branch_mispredict_rate": stream.branch_mispredict_rate,
            "memory": asdict(stream.memory),
        },
        "sync": asdict(spec.sync),
    }


#: Architectures are unhashable (dict-valued partition tables), so their
#: serialized fingerprints are memoized by object identity; the stored
#: reference pins the id against reuse.
_ARCH_FP_CACHE: Dict[int, Tuple[Architecture, str]] = {}


def _arch_fp_json(arch: Architecture) -> str:
    hit = _ARCH_FP_CACHE.get(id(arch))
    if hit is not None and hit[0] is arch:
        return hit[1]
    text = json.dumps(_arch_fingerprint(arch), sort_keys=True)
    _ARCH_FP_CACHE[id(arch)] = (arch, text)
    return text


_CONSTANTS_FP_JSON: Optional[str] = None


def _constants_fp_json() -> str:
    global _CONSTANTS_FP_JSON
    if _CONSTANTS_FP_JSON is None:
        _CONSTANTS_FP_JSON = json.dumps(_constants_fingerprint(), sort_keys=True)
    return _CONSTANTS_FP_JSON


def run_cache_key(spec) -> str:
    """Content-hash key for one :class:`repro.sim.engine.RunSpec`."""
    digest = hashlib.sha256()
    digest.update(_constants_fp_json().encode())
    digest.update(b"\x00")
    digest.update(_arch_fp_json(spec.system.arch).encode())
    digest.update(b"\x00")
    digest.update(json.dumps(_spec_fingerprint(spec), sort_keys=True).encode())
    return digest.hexdigest()


#: Version of the stored-payload *format* (distinct from
#: :data:`MODEL_VERSION`, which fingerprints solver behaviour and is
#: part of the key).  Bump whenever ``_result_payload`` changes shape so
#: that entries written by an older layout are rejected instead of
#: silently deserializing into wrong fields.
PAYLOAD_SCHEMA = 2


def _result_payload(result: RunResult) -> Dict[str, Any]:
    return {
        "schema": PAYLOAD_SCHEMA,
        "smt_level": result.smt_level,
        "n_threads": result.n_threads,
        "n_chips": result.n_chips,
        "useful_instructions": result.useful_instructions,
        "times": asdict(result.times),
        "events": dict(result.events),
        "spin_fraction": result.spin_fraction,
        "blocked_fraction": result.blocked_fraction,
        "mem_latency_mult": result.mem_latency_mult,
        "mem_utilization": result.mem_utilization,
        "per_thread_ipc": list(result.per_thread_ipc),
        "dispatch_held_fraction": result.dispatch_held_fraction,
    }


def _result_from_payload(payload: Dict[str, Any], arch: Architecture) -> RunResult:
    return RunResult(
        arch=arch,
        smt_level=int(payload["smt_level"]),
        n_threads=int(payload["n_threads"]),
        n_chips=int(payload["n_chips"]),
        useful_instructions=float(payload["useful_instructions"]),
        times=TimeAccounting(**payload["times"]),
        events=dict(payload["events"]),
        spin_fraction=float(payload["spin_fraction"]),
        blocked_fraction=float(payload["blocked_fraction"]),
        mem_latency_mult=float(payload["mem_latency_mult"]),
        mem_utilization=float(payload["mem_utilization"]),
        per_thread_ipc=tuple(float(v) for v in payload["per_thread_ipc"]),
        dispatch_held_fraction=float(payload["dispatch_held_fraction"]),
    )


class RunCache:
    """Content-addressed store of converged runs under one directory.

    All I/O failures degrade to cache misses (``get``) or silent no-ops
    (``put``): a read-only filesystem or a corrupt entry never breaks a
    sweep, it just forfeits the speedup.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def key(self, spec) -> str:
        return run_cache_key(spec)

    def get(self, spec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` on a miss.

        Telemetry: ``runcache.hits`` / ``runcache.misses`` count lookup
        outcomes; a present-but-malformed entry additionally counts as
        ``runcache.corrupt`` and is *deleted* — it behaves as a miss
        once, instead of being re-parsed (and re-missed) on every
        sweep until someone clears the cache by hand.  An entry whose
        stored ``schema`` differs from :data:`PAYLOAD_SCHEMA` (written
        by an older/newer layout) is likewise deleted and counted as
        ``runcache.schema_mismatch``.
        """
        tracer = get_tracer()
        path = self._path(run_cache_key(spec))
        try:
            text = path.read_text()
        except OSError:
            tracer.add("runcache.misses")
            return None
        try:
            payload = json.loads(text)
            if (not isinstance(payload, dict)
                    or payload.get("schema") != PAYLOAD_SCHEMA):
                # A different (or pre-versioning) payload layout: the
                # fields may parse but mean something else.  Refuse it.
                tracer.add("runcache.misses")
                tracer.add("runcache.schema_mismatch")
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing eviction
                    pass
                return None
            result = _result_from_payload(payload, spec.system.arch)
        except (ValueError, KeyError, TypeError):
            tracer.add("runcache.misses")
            tracer.add("runcache.corrupt")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction
                pass
            return None
        tracer.add("runcache.hits")
        return result

    def put(self, spec, result: RunResult) -> None:
        """Store ``result`` under ``spec``'s key (atomic, best-effort)."""
        get_tracer().add("runcache.puts")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(_result_payload(result))
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, self._path(run_cache_key(spec)))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Also sweeps orphaned ``*.tmp`` files — the droppings of a
        writer killed between ``mkstemp`` and the atomic publish
        (counted separately as ``runcache.tmp_swept``, not in the
        return value).
        """
        removed = 0
        swept = 0
        try:
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.root.glob("*.tmp"):
                try:
                    path.unlink()
                    swept += 1
                except OSError:
                    pass
        except OSError:
            pass
        tracer = get_tracer()
        tracer.add("runcache.invalidated", removed)
        if swept:
            tracer.add("runcache.tmp_swept", swept)
        return removed

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
