"""Full-system run loop: one application run at one SMT level.

Composes the substrate layers exactly the way §IV's experiments do:

1. the OS places one software thread per available hardware context
   (or any requested count) — :mod:`repro.simos.scheduler`;
2. lock contention converts a thread-count-dependent fraction of each
   thread's cycles into spin-loop instructions, changing the executed
   mix — :mod:`repro.simos.sync`;
3. the chip solver finds steady-state throughput, port pressure,
   dispatch-held and memory contention — :mod:`repro.sim.chip`;
4. wall/CPU times follow from the serial/parallel decomposition —
   :mod:`repro.simos.timebase`;
5. hardware counters accumulate per context — :mod:`repro.counters`.

Run-to-run variance is modelled with a small seeded jitter on times and
counters, so experiment scatter looks like (and stresses the threshold
machinery like) real measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.classes import CLASS_ORDER, SPIN_LOOP_MIX, InstrClass
from repro.counters.events import CLASS_COUNT_EVENTS, port_issue_event
from repro.counters.pmu import Pmu
from repro.obs import get_tracer
from repro.sim.chip import ChipSolution, solve_chip, solve_chip_batch
from repro.sim.fast_core import CoreInput, solve_core, solve_core_batch
from repro.sim.results import RunResult
from repro.sim.stream import StreamParams
from repro.simos.scheduler import Placement, place_threads
from repro.simos.sync import SyncProfile
from repro.simos.system import SystemSpec
from repro.simos.timebase import TimeAccounting, account_run
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive

#: Default amount of useful work per run; large enough that per-run
#: noise averages out, small enough to keep sweeps fast.
DEFAULT_WORK = 2e10


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to simulate one run."""

    system: SystemSpec
    smt_level: int
    stream: StreamParams           # application stream, before spin pollution
    sync: SyncProfile
    n_threads: Optional[int] = None  # default: one per hardware context
    useful_instructions: float = DEFAULT_WORK
    seed: int = 0
    noise_rel: float = 0.01

    def __post_init__(self):
        self.system.arch.validate_smt_level(self.smt_level)
        check_positive("useful_instructions", self.useful_instructions)
        check_fraction("noise_rel", self.noise_rel)

    def resolved_threads(self) -> int:
        if self.n_threads is not None:
            if self.n_threads < 1:
                raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
            return self.n_threads
        return self.system.contexts_at(self.smt_level)


#: Spinning can dominate but never fully starve the application.
MAX_SPIN = 0.95
#: Fixed-point sweeps over the spin fraction (mix pollution feeds back
#: into throughput, which feeds back into the spin fraction).
SPIN_ITERATIONS = 3


def simulate_run(spec: RunSpec) -> RunResult:
    """Simulate one application run; see the module docstring for the flow."""
    system = spec.system
    n = spec.resolved_threads()
    placement = place_threads(system, spec.smt_level, n)
    freq = system.arch.cycles_per_second()
    runnable = spec.sync.runnable_fraction(n)

    # --- contended-lock throughput cap -------------------------------
    # The lock holder executes the *application* mix at this SMT level's
    # per-thread speed; its rate bounds how fast work can flow through
    # the critical section (paper §II's scalability bottleneck, and why
    # SMT4 can hurt lock-heavy codes: the holder itself runs slower).
    base_solution = solve_chip(placement, spec.stream)
    holder_rate = float(np.mean(base_solution.per_thread_ipc())) * freq
    lock_cap = spec.sync.lock_throughput_cap(holder_rate, n)

    # --- spin fixed point ---------------------------------------------
    # Spin pollution of the executed stream (paper §II: spinning raises
    # the branch fraction and the deviation from the ideal mix).  The
    # spin fraction has two sources: a direct busy-wait component
    # (barrier-style) and the derived component from the lock cap.
    spin0 = spec.sync.spin_fraction(n)
    spin = spin0
    solution = base_solution
    if spin0 == 0.0 and math.isinf(lock_cap):
        # Sync-free workload: a zero spin fraction blends the mix with
        # weight 0 and an uncapped lock leaves the rate untouched, so
        # every iteration would reproduce the base solution exactly.
        useful_rate = float(np.sum(solution.per_thread_ipc())) * freq * runnable
        get_tracer().add("engine.sync_free_runs")
    else:
        useful_rate = None
        for _ in range(SPIN_ITERATIONS):
            effective_stream = spec.stream.with_mix(
                spec.stream.mix.blend(SPIN_LOOP_MIX, spin)
            )
            solution = solve_chip(placement, effective_stream)
            raw_rate = float(np.sum(solution.per_thread_ipc())) * freq
            available = raw_rate * runnable  # executed instr/s among running threads
            useful_rate = min(available * (1.0 - spin0), lock_cap)
            spin = min(MAX_SPIN, 1.0 - useful_rate / available)
        tracer = get_tracer()
        tracer.add("engine.spin_rounds", SPIN_ITERATIONS)
        tracer.add("engine.spin_iterations", SPIN_ITERATIONS)

    return _finalize_run(spec, n, placement, solution, spin, useful_rate)


def simulate_many(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Simulate many runs, batching the chip solves across specs.

    Semantically equivalent to ``[simulate_run(s) for s in specs]`` (to
    floating-point round-off): the lock cap, spin fixed point, time
    accounting, jitter, and counters follow the exact scalar control
    flow, but every round of chip solves — the base solve and each spin
    iteration — runs through :func:`repro.sim.chip.solve_chip_batch` so
    the whole sweep shares vectorized core evaluations.  Specs are
    grouped by architecture instance (a batch cannot mix architectures);
    results come back in input order.
    """
    specs = list(specs)
    results: List[Optional[RunResult]] = [None] * len(specs)
    groups: Dict[int, List[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(id(spec.system.arch), []).append(i)
    with get_tracer().span(
        "engine.simulate_many", runs=len(specs), arch_groups=len(groups)
    ):
        for indices in groups.values():
            for i, result in zip(indices, _simulate_group([specs[i] for i in indices])):
                results[i] = result
    return results  # type: ignore[return-value]


def _simulate_group(specs: List[RunSpec]) -> List[RunResult]:
    """Batched run loop for specs sharing one architecture instance."""
    arch = specs[0].system.arch
    freq = arch.cycles_per_second()
    ns = [spec.resolved_threads() for spec in specs]
    placements = [
        place_threads(spec.system, spec.smt_level, n) for spec, n in zip(specs, ns)
    ]

    # Warm the serial-rate memo for the group's distinct streams in one
    # vectorized pass (they are all independent SMT1 solo solves).
    pending: Dict[Tuple[int, StreamParams], StreamParams] = {}
    for spec in specs:
        key = (id(arch), spec.stream)
        hit = _SERIAL_RATE_CACHE.get(key)
        if (hit is None or hit[0] is not arch) and key not in pending:
            pending[key] = spec.stream
    if pending:
        get_tracer().add("engine.serial_memo_misses", len(pending))
        solo = solve_core_batch(
            [
                CoreInput(arch=arch, smt_level=1, streams=(stream,), threads_per_chip=1)
                for stream in pending.values()
            ]
        )
        for key, out in zip(pending, solo):
            _SERIAL_RATE_CACHE[key] = (arch, float(out.ipc[0]) * freq)

    base = solve_chip_batch(
        [(pl, spec.stream) for pl, spec in zip(placements, specs)]
    )
    solutions: List[ChipSolution] = list(base)
    runnables: List[float] = []
    lock_caps: List[float] = []
    spin0s: List[float] = []
    spins: List[float] = []
    useful_rates: List[Optional[float]] = []
    loop_idx: List[int] = []
    for i, (spec, n, sol) in enumerate(zip(specs, ns, base)):
        runnable = spec.sync.runnable_fraction(n)
        holder_rate = float(np.mean(sol.per_thread_ipc())) * freq
        lock_cap = spec.sync.lock_throughput_cap(holder_rate, n)
        spin0 = spec.sync.spin_fraction(n)
        runnables.append(runnable)
        lock_caps.append(lock_cap)
        spin0s.append(spin0)
        spins.append(spin0)
        if spin0 == 0.0 and math.isinf(lock_cap):
            useful_rates.append(float(np.sum(sol.per_thread_ipc())) * freq * runnable)
        else:
            useful_rates.append(None)
            loop_idx.append(i)

    tracer = get_tracer()
    if tracer.enabled:
        tracer.add("engine.sync_free_runs", len(specs) - len(loop_idx))
        if loop_idx:
            tracer.add("engine.spin_rounds", SPIN_ITERATIONS)
            tracer.add("engine.spin_iterations", SPIN_ITERATIONS * len(loop_idx))

    if loop_idx:
        for _ in range(SPIN_ITERATIONS):
            jobs = [
                (
                    placements[i],
                    specs[i].stream.with_mix(
                        specs[i].stream.mix.blend(SPIN_LOOP_MIX, spins[i])
                    ),
                )
                for i in loop_idx
            ]
            for i, sol in zip(loop_idx, solve_chip_batch(jobs)):
                solutions[i] = sol
                raw_rate = float(np.sum(sol.per_thread_ipc())) * freq
                available = raw_rate * runnables[i]
                useful = min(available * (1.0 - spin0s[i]), lock_caps[i])
                useful_rates[i] = useful
                spins[i] = min(MAX_SPIN, 1.0 - useful / available)

    return [
        _finalize_run(spec, n, placement, solution, spin, useful_rate)
        for spec, n, placement, solution, spin, useful_rate in zip(
            specs, ns, placements, solutions, spins, useful_rates
        )
    ]


def _finalize_run(
    spec: RunSpec,
    n: int,
    placement: Placement,
    solution: ChipSolution,
    spin: float,
    useful_rate: Optional[float],
) -> RunResult:
    """Time accounting, jitter, and counters for a converged run."""
    system = spec.system
    arch = system.arch
    effective_stream = spec.stream.with_mix(spec.stream.mix.blend(SPIN_LOOP_MIX, spin))
    per_thread_ipc = solution.per_thread_ipc()
    runnable = spec.sync.runnable_fraction(n)

    # Parallel overhead inflates executed work relative to useful work.
    inflation = spec.sync.work_inflation(n)
    serial_rate = _serial_rate(system, spec.stream)
    times = account_run(
        useful_instructions=spec.useful_instructions * inflation,
        parallel_useful_rate=useful_rate,
        serial_rate=serial_rate,
        sync=spec.sync,
        n_threads=n,
    )

    rng = RngStream(spec.seed, ("run", arch.name, spec.smt_level, n))
    times = _jitter_times(times, rng, spec.noise_rel)

    pmu = _fill_counters(
        placement, solution, effective_stream, times, runnable, rng, spec.noise_rel
    )
    events = pmu.aggregate()

    return RunResult(
        arch=arch,
        smt_level=spec.smt_level,
        n_threads=n,
        n_chips=system.n_chips,
        useful_instructions=spec.useful_instructions,
        times=times,
        events=events,
        spin_fraction=spin,
        blocked_fraction=spec.sync.blocked_fraction(n),
        mem_latency_mult=solution.mem_latency_mult,
        mem_utilization=solution.mem_utilization,
        per_thread_ipc=per_thread_ipc,
        dispatch_held_fraction=solution.mean_dispatch_held,
    )


#: Serial rates depend only on (architecture, stream) — not the SMT
#: level — so one entry serves a workload's whole level sweep.  Keys use
#: ``id(arch)`` because architectures hold dict-valued partition tables
#: and are unhashable; the stored arch reference pins the id.
_SERIAL_RATE_CACHE: Dict[Tuple[int, StreamParams], Tuple[object, float]] = {}
_SERIAL_RATE_CACHE_MAX = 4096


def _serial_rate(system: SystemSpec, stream: StreamParams) -> float:
    """Single-thread throughput during serial sections (memoized).

    One thread on one otherwise-idle core: the core reverts to SMT1
    mode (paper §II-A) and sees no bandwidth contention.
    """
    arch = system.arch
    key = (id(arch), stream)
    hit = _SERIAL_RATE_CACHE.get(key)
    if hit is not None and hit[0] is arch:
        get_tracer().add("engine.serial_memo_hits")
        return hit[1]
    get_tracer().add("engine.serial_memo_misses")
    out = solve_core(
        CoreInput(
            arch=arch,
            smt_level=1,
            streams=(stream,),
            threads_per_chip=1,
        )
    )
    rate = float(out.ipc[0]) * arch.cycles_per_second()
    if len(_SERIAL_RATE_CACHE) >= _SERIAL_RATE_CACHE_MAX:
        _SERIAL_RATE_CACHE.clear()
    _SERIAL_RATE_CACHE[key] = (arch, rate)
    return rate


def _jitter_times(times: TimeAccounting, rng: RngStream, noise_rel: float) -> TimeAccounting:
    if noise_rel <= 0:
        return times
    wall_factor = max(0.5, 1.0 + rng.normal(0.0, noise_rel))
    cpu_factor = max(0.5, 1.0 + rng.normal(0.0, noise_rel * 0.5))
    total_cpu = min(
        times.total_cpu_s * wall_factor * cpu_factor,
        times.wall_time_s * wall_factor * times.n_threads,
    )
    return TimeAccounting(
        wall_time_s=times.wall_time_s * wall_factor,
        serial_time_s=times.serial_time_s * wall_factor,
        parallel_time_s=times.parallel_time_s * wall_factor,
        total_cpu_s=total_cpu,
        n_threads=times.n_threads,
    )


def _fill_counters(
    placement: Placement,
    solution: ChipSolution,
    stream: StreamParams,
    times: TimeAccounting,
    runnable: float,
    rng: RngStream,
    noise_rel: float,
) -> Pmu:
    """Accumulate per-context counters from the steady-state solution."""
    arch = placement.system.arch
    freq = arch.cycles_per_second()
    pmu = Pmu(arch, placement.n_threads)
    mix_vec = stream.mix.vector
    port_fracs = arch.topology.routing_matrix @ mix_vec
    par_cycles = times.parallel_time_s * freq * runnable

    def noisy(value: float) -> float:
        return rng.jitter(value, noise_rel) if noise_rel > 0 else value

    ctx = 0
    for occ, core_out in zip(solution.core_occupancy, solution.core_outputs):
        for slot in range(occ):
            ipc = float(core_out.ipc[slot])
            instructions = ipc * par_cycles
            rates = core_out.miss_rates[slot]
            br_frac = mix_vec[InstrClass.BRANCH]
            pmu.add(ctx, "CYCLES", noisy(par_cycles))
            pmu.add(ctx, "INSTRUCTIONS", noisy(instructions))
            pmu.add(
                ctx,
                "DISP_HELD_RES",
                noisy(core_out.dispatch_held_fraction * par_cycles),
            )
            for klass, event in zip(CLASS_ORDER, CLASS_COUNT_EVENTS):
                pmu.add(ctx, event, noisy(instructions * mix_vec[klass]))
            for p, name in enumerate(arch.topology.port_names):
                pmu.add(ctx, port_issue_event(name), noisy(instructions * port_fracs[p]))
            pmu.add(ctx, "L1_DMISS", noisy(instructions * rates.l1_mpki / 1000.0))
            pmu.add(ctx, "L2_MISS", noisy(instructions * rates.l2_mpki / 1000.0))
            pmu.add(ctx, "L3_MISS", noisy(instructions * rates.l3_mpki / 1000.0))
            # BR_CMPL is already covered by the class-count loop above.
            branches = instructions * br_frac
            pmu.add(
                ctx, "BR_MISPRED", noisy(branches * float(core_out.branch_rate[slot]))
            )
            ctx += 1
    assert ctx == placement.n_threads
    return pmu
