"""Branch prediction model.

Branch state (history tables, BTB) is shared between a core's hardware
threads, so co-running contexts both alias each other's history and
shrink the effective table share — mispredict rates creep up with the
SMT level.  A mispredicted branch costs a pipeline refill; unlike a
long memory stall it *flushes* the dispatcher rather than backing it
up, so it contributes to lost cycles but not to the dispatch-held
counter (the distinction matters for the SMTsm's second factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.classes import InstrClass, Mix
from repro.arch.machine import Architecture
from repro.util.validation import check_fraction, check_nonnegative

#: Per-extra-context relative increase in mispredict rate from shared
#: predictor state (measured effects on real SMT cores are mild).
SHARING_PENALTY_PER_THREAD = 0.06


@dataclass(frozen=True)
class BranchModel:
    """Evaluates effective mispredict behaviour on an architecture."""

    arch: Architecture

    def effective_rate(self, base_rate: float, threads_per_core: int) -> float:
        """Mispredicts per branch with ``threads_per_core`` contexts."""
        check_fraction("base_rate", base_rate)
        if threads_per_core < 1:
            raise ValueError(f"threads_per_core must be >= 1, got {threads_per_core}")
        rate = base_rate * (1.0 + SHARING_PENALTY_PER_THREAD * (threads_per_core - 1))
        return min(rate, 1.0)

    def stall_per_instruction(self, mix: Mix, rate: float) -> float:
        """Average mispredict-penalty cycles charged to one instruction."""
        check_fraction("rate", rate)
        return mix[InstrClass.BRANCH] * rate * self.arch.branch_penalty

    def mispredicts_per_kilo(self, mix: Mix, rate: float) -> float:
        """Branch MPKI — the Fig. 2 baseline predictor's input."""
        return 1000.0 * mix[InstrClass.BRANCH] * rate
