"""Calibrated surrogate fast path for SMTsm prediction.

The bandwidth bisection dominates solver cost: every phase of every run
spends ~15 lockstep kernel evaluations closing a bracket on the DRAM
utilization fixed point ``u(mult(rho)) == rho``.  This module replaces
the bracket search with a *calibrated warm start*: a ridge regression,
fit offline per ``(architecture, chip count)`` from converged solver
outputs and persisted next to the runcache with a
:func:`repro.check.goldens.model_fingerprint` stamp, predicts the
fixed-point utilization ``rho`` directly from scenario features.  At
query time the prediction is **verified, never trusted**:

* a leverage gate rejects queries outside the calibration envelope
  (classic regression uncertainty: ``h = x (XtX + lI)^-1 xt`` beyond
  the training maximum means extrapolation) before any solving;
* the predicted ``rho`` is checked for self-consistency with one kernel
  evaluation — ``|u(mult(rho)) - rho| <= EPS_RHO`` — and refined with a
  secant step when the residual is above the bound (the fixed-point map
  ``g(rho) = u(rho) - rho`` is strictly decreasing with slope <= -1, so
  the residual *is* a distance bound to the true root);
* runs that do not reach the bound within :data:`MAX_POLISH` kernel
  evaluations fall back to the full table solver
  (:meth:`repro.sim.table.ScenarioTable.drive`), as do leverage
  rejects.

Spin/lock runs replay the engine's exact three-iteration spin
trajectory, warm-starting each phase's utilization from the previous
phase (the blend barely moves ``rho``), so accepted answers track the
solver even when the spin sequence has not converged.  Accepted runs
re-enter the shared vectorized finalization
(:meth:`~repro.sim.table.ScenarioTable.finalize`), so jitter and
counters are produced by the same code path as the full solver; the
``surrogate_vs_solver`` differential pillar pins the end-to-end error.

Cost: a typical all-phases-accepted batch needs ~4-8 whole-table kernel
evaluations instead of the ~68 a bisection-driven batch performs.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_tracer
from repro.sim.chip import TOLERANCE
from repro.sim.engine import MAX_SPIN, SPIN_ITERATIONS, RunSpec
from repro.sim.memory import RHO_CAP
from repro.sim.results import RunResult
from repro.sim.table import ScenarioTable, TableState, _latency_multiplier

__all__ = [
    "EPS_RHO",
    "EPS_SPIN",
    "MAX_POLISH",
    "LEVERAGE_SLACK",
    "SurrogateModel",
    "fit_surrogate",
    "load_surrogate",
    "save_surrogate",
    "get_surrogate",
    "surrogate_path",
    "simulate_many_surrogate",
    "clear_surrogate_cache",
]

#: Accept a predicted utilization only when its fixed-point residual
#: ``|u(mult(rho)) - rho|`` is within this bound — the same order as the
#: bisection's own bracket tolerance, so accepted answers are as close
#: to the true fixed point as the full solver's.
EPS_RHO = 1e-4
#: Accepted spin trajectories must reproduce the engine's reported spin
#: fraction to this tolerance (checked implicitly by replaying the exact
#: three-iteration recurrence; kept for documentation and tests).
EPS_SPIN = 2e-3
#: Kernel evaluations per phase before giving up and falling back.
MAX_POLISH = 4
#: Leverage threshold multiplier over the training maximum.
LEVERAGE_SLACK = 2.0

#: Predictions below this try the solver's unit-latency branch first;
#: above ``RHO_SAT`` they probe the saturation pin first.
RHO_MIN = 0.02
RHO_SAT = 0.94

_RIDGE_LAMBDA = 1e-6

#: In-process model cache keyed (arch id, n_chips, fingerprint).
_MODEL_CACHE: Dict[Tuple[int, int, str], "SurrogateModel"] = {}


def _fingerprint() -> str:
    from repro.check.goldens import model_fingerprint

    return model_fingerprint()


def _rho_of_mult(mult: np.ndarray) -> np.ndarray:
    """Invert ``mult = 1 / (1 - rho^3)`` (the bisection's rho space)."""
    return np.cbrt(1.0 - 1.0 / np.maximum(mult, 1.0))


def _features(table: ScenarioTable) -> np.ndarray:
    """Per-run scenario features, aggregated from the table's columns.

    Occupancy-weighted means collapse the (at most two) core-occupancy
    rows of a run; the analytic ``rho_ub`` block (offered utilization at
    unit latency, from the uncontended IPC upper bound) carries most of
    the signal since the fixed point is monotone in it.
    """
    t = table
    seg = t.run_row_start[:-1]
    w = t.row_cores * t.row_occ
    wsum = np.add.reduceat(w, seg)

    def wmean(col: np.ndarray) -> np.ndarray:
        return np.add.reduceat(w * col, seg) / wsum

    br_frac = t.row_mix[:, 2]
    br_stall0 = br_frac * t.row_br_rate * t.branch_penalty
    stall0 = t.row_mem_base + br_stall0
    x_ub = 1.0 / (t.row_inv_r + stall0 + t.row_mem_coef)
    traffic_coef = (
        np.add.reduceat(w * t.row_traffic_bpi * t.bytes_to_gbps, seg) / t.run_cap
    )
    rho_ub = (
        np.add.reduceat(w * (x_ub * t.row_traffic_bpi) * t.bytes_to_gbps, seg)
        / t.run_cap
    )
    knee = 1.0 / (1.0 - np.minimum(rho_ub, 0.95) ** 3)

    levels = np.array([spec.smt_level for spec in t.specs], dtype=float)
    spin0 = np.empty(t.n_runs)
    runnable = np.empty(t.n_runs)
    lock = np.empty(t.n_runs)
    pingpong = np.empty(t.n_runs)
    for j, (spec, n) in enumerate(zip(t.specs, t.ns)):
        sync = spec.sync
        spin0[j] = sync.spin_fraction(n)
        runnable[j] = sync.runnable_fraction(n)
        lock[j] = sync.lock_serial_fraction
        if n > 1:
            pingpong[j] = 1.0 + sync.lock_pingpong_coeff * (n - 1) / (
                n - 1 + sync.lock_pingpong_half
            )
        else:
            pingpong[j] = 1.0

    return np.column_stack(
        [
            levels,
            t.run_n,
            spin0,
            runnable,
            lock,
            pingpong,
            rho_ub,
            rho_ub ** 2,
            rho_ub ** 3,
            knee,
            traffic_coef,
            wmean(t.row_mem_coef),
            wmean(t.row_long_base),
            wmean(stall0),
            wmean(t.row_inv_r),
            wmean(x_ub),
            wmean(br_frac),
        ]
    )


@dataclass
class SurrogateModel:
    """Ridge model predicting the base-phase fixed-point utilization.

    ``a_inv`` is the regularized normal-matrix inverse used both for the
    coefficients and for prediction leverage (the uncertainty estimate
    driving the out-of-calibration fallback).
    """

    arch_name: str
    n_chips: int
    fingerprint: str
    mean: np.ndarray        # (F,)
    std: np.ndarray         # (F,)
    coef: np.ndarray        # (F + 1,) with intercept last
    a_inv: np.ndarray       # (F + 1, F + 1)
    max_leverage: float
    n_train: int

    def _design(self, features: np.ndarray) -> np.ndarray:
        scaled = (features - self.mean) / self.std
        return np.column_stack([scaled, np.ones(len(scaled))])

    def predict_rho(self, features: np.ndarray) -> np.ndarray:
        return np.clip(self._design(features) @ self.coef, 0.0, RHO_CAP)

    def leverage(self, features: np.ndarray) -> np.ndarray:
        x = self._design(features)
        return np.einsum("ij,jk,ik->i", x, self.a_inv, x)

    def in_domain(self, features: np.ndarray) -> np.ndarray:
        return self.leverage(features) <= LEVERAGE_SLACK * self.max_leverage

    def to_json(self) -> Dict:
        return {
            "arch": self.arch_name,
            "n_chips": self.n_chips,
            "fingerprint": self.fingerprint,
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
            "coef": self.coef.tolist(),
            "a_inv": self.a_inv.tolist(),
            "max_leverage": self.max_leverage,
            "n_train": self.n_train,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "SurrogateModel":
        return cls(
            arch_name=payload["arch"],
            n_chips=int(payload["n_chips"]),
            fingerprint=payload["fingerprint"],
            mean=np.asarray(payload["mean"], dtype=float),
            std=np.asarray(payload["std"], dtype=float),
            coef=np.asarray(payload["coef"], dtype=float),
            a_inv=np.asarray(payload["a_inv"], dtype=float),
            max_leverage=float(payload["max_leverage"]),
            n_train=int(payload["n_train"]),
        )


def _calibration_specs(arch, n_chips: int) -> List[RunSpec]:
    """Default catalog x SMT levels: the distribution served queries draw
    from.  Noise is irrelevant — the fixed point is noise-free."""
    from repro.simos.system import SystemSpec
    from repro.workloads.catalog import all_workloads

    system = SystemSpec(arch, n_chips)
    specs: List[RunSpec] = []
    for workload in all_workloads().values():
        for level in sorted(arch.smt_levels):
            specs.append(
                RunSpec(
                    system=system,
                    smt_level=level,
                    stream=workload.stream,
                    sync=workload.sync,
                    noise_rel=0.0,
                )
            )
    return specs


def fit_surrogate(arch, n_chips: int = 1) -> SurrogateModel:
    """Calibrate a surrogate from solver outputs on the default catalog."""
    specs = _calibration_specs(arch, n_chips)
    table = ScenarioTable(specs)
    state = table.drive()
    features = _features(table)
    labels = _rho_of_mult(state.base_mult)

    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0.0] = 1.0
    x = np.column_stack([(features - mean) / std, np.ones(len(features))])
    a = x.T @ x + _RIDGE_LAMBDA * np.eye(x.shape[1])
    a_inv = np.linalg.inv(a)
    coef = a_inv @ (x.T @ labels)
    leverage = np.einsum("ij,jk,ik->i", x, a_inv, x)

    get_tracer().add("surrogate.fits")
    return SurrogateModel(
        arch_name=arch.name,
        n_chips=n_chips,
        fingerprint=_fingerprint(),
        mean=mean,
        std=std,
        coef=coef,
        a_inv=a_inv,
        max_leverage=float(leverage.max()),
        n_train=len(specs),
    )


def surrogate_path(arch_name: str, n_chips: int, fingerprint: Optional[str] = None) -> str:
    """Where a model is persisted: next to the runcache, fingerprint-stamped."""
    from repro.sim.runcache import default_cache_dir

    fp = fingerprint if fingerprint is not None else _fingerprint()
    return os.path.join(
        default_cache_dir(), "surrogate", f"{arch_name}-x{n_chips}-{fp}.json"
    )


def save_surrogate(model: SurrogateModel) -> str:
    """Atomically persist a fitted model; returns the path."""
    path = surrogate_path(model.arch_name, model.n_chips, model.fingerprint)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(model.to_json(), fh)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    get_tracer().add("surrogate.saves")
    return path


def load_surrogate(arch_name: str, n_chips: int) -> Optional[SurrogateModel]:
    """Load a persisted model; ``None`` if absent, unreadable, or stale
    (the fingerprint is part of the filename *and* revalidated)."""
    fp = _fingerprint()
    path = surrogate_path(arch_name, n_chips, fp)
    try:
        with open(path) as fh:
            payload = json.load(fh)
        model = SurrogateModel.from_json(payload)
    except (OSError, ValueError, KeyError):
        return None
    if model.fingerprint != fp or model.arch_name != arch_name or model.n_chips != n_chips:
        return None
    get_tracer().add("surrogate.loads")
    return model


def get_surrogate(arch, n_chips: int = 1) -> SurrogateModel:
    """Load-or-fit a model for ``(arch, n_chips)``, memoized in-process."""
    fp = _fingerprint()
    key = (id(arch), n_chips, fp)
    model = _MODEL_CACHE.get(key)
    if model is not None:
        return model
    model = load_surrogate(arch.name, n_chips)
    if model is None:
        model = fit_surrogate(arch, n_chips)
        save_surrogate(model)
    _MODEL_CACHE[key] = model
    return model


def clear_surrogate_cache() -> None:
    """Drop in-process models (tests; fingerprint changes are automatic)."""
    _MODEL_CACHE.clear()


# ---------------------------------------------------------------------------
# Prediction: verified warm starts over the scenario table.
# ---------------------------------------------------------------------------


class _PhaseResult:
    __slots__ = ("ok", "mult", "rho", "x", "held", "traffic", "ipc_sum")

    def __init__(self, m: int, rows: int):
        self.ok = np.zeros(m, dtype=bool)
        self.mult = np.ones(m)
        self.rho = np.zeros(m)
        self.x = np.zeros(rows)
        self.held = np.zeros(rows)
        self.traffic = np.zeros(m)
        self.ipc_sum = np.zeros(m)


def _polish_phase(view, w: np.ndarray, rho_start: np.ndarray) -> _PhaseResult:
    """Verify-and-refine a utilization warm start for every run of a view.

    Mirrors the solver's three bisection outcomes exactly — unit latency
    when offered utilization is within tolerance, the saturation pin
    when demand exceeds capacity at maximum inflation, and an interior
    root otherwise — but reaches them from the warm start with secant
    steps instead of a bracket search.  ``g(rho) = u(rho) - rho`` is
    strictly decreasing with slope <= -1, so ``|g|`` bounds the distance
    to the interior root and acceptance is rigorous, not heuristic.
    """
    m = len(view)
    out = _PhaseResult(m, len(view.rows))
    cap = view.cap
    target = np.clip(rho_start, 0.0, RHO_CAP)
    # Route the extremes through the solver's special branches.
    target = np.where(target < RHO_MIN, 0.0, target)
    target = np.where(target > RHO_SAT, RHO_CAP, target)
    active = np.ones(m, dtype=bool)
    have_prev = np.zeros(m, dtype=bool)
    rho_prev = np.zeros(m)
    g_prev = np.zeros(m)
    tracer = get_tracer()

    for _ in range(MAX_POLISH):
        mult_try = np.where(target <= 0.0, 1.0, _latency_multiplier(target * cap, cap))
        sol = view.solve(np.where(active, mult_try, 1.0), w)
        if tracer.enabled:
            tracer.add("surrogate.polish_solves")
        u = sol.util
        g = u - target
        unit_ok = active & (target <= 0.0) & (u <= TOLERANCE)
        sat_ok = active & (target >= RHO_CAP) & (u >= RHO_CAP)
        root_ok = (
            active
            & (target > 0.0)
            & (target < RHO_CAP)
            & (np.abs(g) <= EPS_RHO)
        )
        newly = unit_ok | sat_ok | root_ok
        if newly.any():
            out.ok |= newly
            out.mult = np.where(newly, mult_try, out.mult)
            out.rho = np.where(newly, target, out.rho)
            out.traffic = np.where(newly, sol.run_traffic, out.traffic)
            ipc = view.thread_ipc_sum(sol)
            out.ipc_sum = np.where(newly, ipc, out.ipc_sum)
            row_new = newly[view.local_run]
            out.x[row_new] = sol.x[row_new]
            out.held[row_new] = sol.held[row_new]
            active &= ~newly
        if not active.any():
            break
        # Secant step where two points exist, else the fixed-point step
        # rho <- u(rho); both clipped back into the bisection's bracket.
        denom = g - g_prev
        safe = have_prev & (np.abs(denom) > 1e-300)
        with np.errstate(divide="ignore", invalid="ignore"):
            secant = target - g * (target - rho_prev) / np.where(safe, denom, 1.0)
        prop = np.where(safe, secant, target + g)
        prop = np.clip(prop, 0.0, RHO_CAP)
        rho_prev = np.where(active, target, rho_prev)
        g_prev = np.where(active, g, g_prev)
        have_prev = have_prev | active
        target = np.where(active, prop, target)
    return out


def simulate_many_surrogate(
    specs: Sequence[RunSpec],
) -> Tuple[List[RunResult], List[bool]]:
    """Simulate runs through the surrogate fast path where it is confident.

    Returns ``(results, accepted)`` in input order; ``accepted[i]`` is
    True when run ``i`` was answered by the fast path (leverage in
    domain and every phase verified within :data:`EPS_RHO`), False when
    it fell back to the full table solver.  Fallback results are
    bit-identical to :func:`repro.sim.table.simulate_many_columnar`.
    """
    specs = list(specs)
    if not specs:
        return [], []
    results: List[Optional[RunResult]] = [None] * len(specs)
    accepted_out = [False] * len(specs)
    groups: Dict[Tuple[int, int], List[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault((id(spec.system.arch), spec.system.n_chips), []).append(i)
    tracer = get_tracer()
    with tracer.span(
        "surrogate.simulate_many", runs=len(specs), arch_groups=len(groups)
    ):
        for indices in groups.values():
            group = [specs[i] for i in indices]
            group_results, group_accepted = _simulate_group(group)
            for i, result, ok in zip(indices, group_results, group_accepted):
                results[i] = result
                accepted_out[i] = ok
    return results, accepted_out  # type: ignore[return-value]


def _simulate_group(specs: List[RunSpec]) -> Tuple[List[RunResult], List[bool]]:
    arch = specs[0].system.arch
    n_chips = specs[0].system.n_chips
    table = ScenarioTable(specs)
    model = get_surrogate(arch, n_chips)
    tracer = get_tracer()

    features = _features(table)
    leverage_ok = model.in_domain(features)
    if tracer.enabled and (~leverage_ok).any():
        tracer.add("surrogate.leverage_rejects", int((~leverage_ok).sum()))
    rho_hat = model.predict_rho(features)

    J = table.n_runs
    accepted = leverage_ok.copy()
    state = TableState(
        x_rows=np.zeros(table.n_rows),
        held_rows=np.zeros(table.n_rows),
        mult=np.zeros(J),
        run_traffic=np.zeros(J),
        spin_final=np.zeros(J),
        w_blend=np.zeros(J),
        useful_rate=np.zeros(J),
        base_mult=np.zeros(J),
        base_traffic=np.zeros(J),
        sync_free=np.zeros(J, dtype=bool),
        spin0=np.zeros(J),
        runnable=np.zeros(J),
        blocked=np.zeros(J),
        lock_cap=np.zeros(J),
    )

    cand = np.flatnonzero(accepted)
    if cand.size:
        view = table.view(cand)
        base = _polish_phase(view, np.zeros(len(view)), rho_hat[cand])
        accepted[cand[~base.ok]] = False
        if tracer.enabled and (~base.ok).any():
            tracer.add("surrogate.residual_rejects", int((~base.ok).sum()))

        ok_local = np.flatnonzero(base.ok)
        loop_local: List[int] = []
        for pos in ok_local:
            j = cand[pos]
            spec = table.specs[j]
            n = table.ns[j]
            holder_rate = (base.ipc_sum[pos] / table.run_n[j]) * table.freq
            lock_cap = spec.sync.lock_throughput_cap(float(holder_rate), n)
            spin0 = spec.sync.spin_fraction(n)
            state.spin0[j] = spin0
            state.runnable[j] = spec.sync.runnable_fraction(n)
            state.blocked[j] = spec.sync.blocked_fraction(n)
            state.lock_cap[j] = lock_cap
            state.base_mult[j] = base.mult[pos]
            state.base_traffic[j] = base.traffic[pos]
            if spin0 == 0.0 and np.isinf(lock_cap):
                state.sync_free[j] = True
                state.useful_rate[j] = base.ipc_sum[pos] * table.freq * state.runnable[j]
                state.mult[j] = base.mult[pos]
                state.run_traffic[j] = base.traffic[pos]
                state.spin_final[j] = spin0
                state.w_blend[j] = spin0
            else:
                loop_local.append(int(pos))
        rows_ok = base.ok[view.local_run]
        state.x_rows[view.rows[rows_ok]] = base.x[rows_ok]
        state.held_rows[view.rows[rows_ok]] = base.held[rows_ok]

        if loop_local:
            # Replay the engine's exact three-iteration spin recurrence,
            # warm-starting each phase's utilization from the previous
            # one; phases that miss the bound demote the run to fallback.
            loop_pos = np.asarray(loop_local, dtype=int)
            loop_idx = cand[loop_pos]
            lview = table.view(loop_idx)
            alive = np.ones(len(loop_idx), dtype=bool)
            spins = state.spin0[loop_idx]
            spin0 = state.spin0[loop_idx]
            runnable = state.runnable[loop_idx]
            lock_cap = state.lock_cap[loop_idx]
            rho_warm = base.rho[loop_pos]
            blend_w = spins
            phase = None
            for _ in range(SPIN_ITERATIONS):
                blend_w = np.where(alive, spins, blend_w)
                phase = _polish_phase(lview, blend_w, rho_warm)
                failed = alive & ~phase.ok
                if failed.any():
                    if tracer.enabled:
                        tracer.add("surrogate.residual_rejects", int(failed.sum()))
                    accepted[loop_idx[failed]] = False
                    alive &= phase.ok
                    if not alive.any():
                        break
                rho_warm = np.where(alive, phase.rho, rho_warm)
                raw_rate = phase.ipc_sum * table.freq
                available = raw_rate * runnable
                with np.errstate(divide="ignore", invalid="ignore"):
                    useful = np.minimum(available * (1.0 - spin0), lock_cap)
                    new_spins = np.minimum(MAX_SPIN, 1.0 - useful / available)
                spins = np.where(alive, new_spins, spins)
            if alive.any():
                idx = loop_idx[alive]
                rows_alive = alive[lview.local_run]
                state.x_rows[lview.rows[rows_alive]] = phase.x[rows_alive]
                state.held_rows[lview.rows[rows_alive]] = phase.held[rows_alive]
                state.mult[idx] = phase.mult[alive]
                state.run_traffic[idx] = phase.traffic[alive]
                state.spin_final[idx] = spins[alive]
                state.w_blend[idx] = blend_w[alive]
                state.useful_rate[idx] = useful[alive]

    hit_idx = np.flatnonzero(accepted)
    miss_idx = np.flatnonzero(~accepted)
    if tracer.enabled:
        tracer.add("surrogate.hits", int(hit_idx.size))
        tracer.add("surrogate.fallbacks", int(miss_idx.size))

    results: List[Optional[RunResult]] = [None] * len(specs)
    if hit_idx.size:
        for j, result in zip(hit_idx, table.finalize(state, hit_idx)):
            results[j] = result
    if miss_idx.size:
        fallback_state = table.drive(miss_idx)
        for j, result in zip(miss_idx, table.finalize(fallback_state, miss_idx)):
            results[j] = result
    return results, [bool(accepted[j]) for j in range(len(specs))]  # type: ignore[return-value]
