"""Issue-queue structures for the cycle engine.

The cycle engine models the paper's Fig. 3 dispatch/issue structure
literally: dispatch inserts decoded instructions into a queue with
per-thread entry limits (the SMT partition), issue removes them when
their dependences resolve and a port is free, and a full queue share is
exactly the "dispatcher held due to lack of resources" condition that
``PM_DISP_CLB_HELD_RES`` counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.arch.classes import InstrClass


@dataclass
class QueueEntry:
    """One in-flight instruction."""

    seq: int                 # per-thread program-order sequence number
    thread: int
    klass: InstrClass
    port: int                # issue port index it must use
    dep_seq: Optional[int]   # sequence number of the producer, or None
    extra_latency: float     # cache-miss penalty attached (loads)
    mispredict: bool         # branch that will mispredict
    issued: bool = False
    finish_cycle: float = field(default=float("inf"))


class IssueQueue:
    """A unified issue queue with per-thread occupancy limits."""

    def __init__(self, n_threads: int, entries_per_thread: float):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if entries_per_thread < 1:
            raise ValueError(
                f"entries_per_thread must be >= 1, got {entries_per_thread}"
            )
        self.limit = int(entries_per_thread)
        self._entries: List[QueueEntry] = []
        self._occupancy = [0] * n_threads

    def __len__(self) -> int:
        return len(self._entries)

    def occupancy(self, thread: int) -> int:
        return self._occupancy[thread]

    def has_room(self, thread: int) -> bool:
        return self._occupancy[thread] < self.limit

    def insert(self, entry: QueueEntry) -> None:
        if not self.has_room(entry.thread):
            raise RuntimeError(
                f"thread {entry.thread} queue share full ({self.limit} entries)"
            )
        self._entries.append(entry)
        self._occupancy[entry.thread] += 1

    def ready_for_port(
        self, port: int, completed: Dict[int, Dict[int, float]], now: float
    ) -> Iterator[QueueEntry]:
        """Unissued entries routed to ``port`` whose producer has finished.

        ``completed[thread][seq]`` maps finished sequence numbers to
        their finish cycles; a dependant becomes ready the cycle after
        its producer completes.  Yields in insertion (age) order.
        """
        for entry in self._entries:
            if entry.issued or entry.port != port:
                continue
            if entry.dep_seq is not None:
                finish = completed.get(entry.thread, {}).get(entry.dep_seq)
                if finish is None or finish > now - 1:
                    continue
            yield entry

    def has_long_latency_outstanding(self, thread: int, horizon: float, now: float) -> bool:
        """True if ``thread`` has an issued entry still executing whose
        attached latency is at least ``horizon`` (an L3-or-worse miss)."""
        for entry in self._entries:
            if (
                entry.thread == thread
                and entry.issued
                and entry.extra_latency >= horizon
                and entry.finish_cycle > now
            ):
                return True
        return False

    def retire_finished(self, now: float) -> List[QueueEntry]:
        """Remove issued entries whose execution finished by ``now``."""
        done = [e for e in self._entries if e.issued and e.finish_cycle <= now]
        if done:
            done_set = set(id(e) for e in done)
            self._entries = [e for e in self._entries if id(e) not in done_set]
            for entry in done:
                self._occupancy[entry.thread] -= 1
        return done
