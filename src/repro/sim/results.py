"""Run results: everything one simulated execution produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.arch.machine import Architecture
from repro.counters.pmu import CounterSample
from repro.simos.timebase import TimeAccounting


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one application run at one SMT level.

    ``events`` aggregates hardware counters across all contexts for the
    whole run; ``times`` carries the wall/CPU accounting.  Performance
    comparisons across SMT levels use :attr:`performance` (useful work
    per second — what the benchmark's own score measures), never raw
    IPC, which spin inflation can distort (paper §I's caveat about IPC
    as an indicator).
    """

    arch: Architecture
    smt_level: int
    n_threads: int
    n_chips: int
    useful_instructions: float
    times: TimeAccounting
    events: Mapping[str, float]
    spin_fraction: float
    blocked_fraction: float
    mem_latency_mult: float
    mem_utilization: float
    per_thread_ipc: Tuple[float, ...]
    dispatch_held_fraction: float

    def __post_init__(self):
        if self.useful_instructions <= 0:
            raise ValueError("useful_instructions must be > 0")
        if not (0 <= self.spin_fraction < 1):
            raise ValueError(f"spin_fraction out of range: {self.spin_fraction}")

    @property
    def wall_time_s(self) -> float:
        return self.times.wall_time_s

    @property
    def performance(self) -> float:
        """Useful instructions per second — the figure-of-merit."""
        return self.useful_instructions / self.times.wall_time_s

    @property
    def aggregate_ipc(self) -> float:
        """Raw executed IPC summed across threads (includes spin work)."""
        return float(np.sum(self.per_thread_ipc))

    def counter_sample(self) -> CounterSample:
        """The run's counters as the metric's input sample."""
        return CounterSample(
            arch=self.arch,
            smt_level=self.smt_level,
            events=dict(self.events),
            wall_time_s=self.times.wall_time_s,
            avg_thread_cpu_s=self.times.avg_thread_cpu_s,
            n_software_threads=self.n_threads,
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        return {
            "smt_level": float(self.smt_level),
            "n_threads": float(self.n_threads),
            "wall_time_s": self.times.wall_time_s,
            "performance": self.performance,
            "aggregate_ipc": self.aggregate_ipc,
            "dispatch_held": self.dispatch_held_fraction,
            "spin_fraction": self.spin_fraction,
            "blocked_fraction": self.blocked_fraction,
            "mem_utilization": self.mem_utilization,
            "scalability_ratio": self.times.scalability_ratio,
        }


def speedup(new: RunResult, baseline: RunResult) -> float:
    """Performance ratio new/baseline for the same amount of work.

    Matches the paper's figures: SMT4/SMT1 speedup > 1 means the higher
    SMT level (with proportionally more threads) completed the same
    work faster.
    """
    if abs(new.useful_instructions - baseline.useful_instructions) > 1e-6 * max(
        new.useful_instructions, baseline.useful_instructions
    ):
        raise ValueError(
            "speedup requires runs over the same work: "
            f"{new.useful_instructions} vs {baseline.useful_instructions}"
        )
    return new.performance / baseline.performance
