"""Columnar ScenarioTable engine: whole-sweep simulation without per-run loops.

The batched engine (:func:`repro.sim.engine.simulate_many`) already
vectorizes the *core solves*, but it still materializes every scenario
as per-run Python objects — a :class:`CoreInput` per occupancy class per
bisection step, a fresh :class:`~repro.arch.classes.Mix` per spin
iteration, and one ``Pmu`` with thousands of scalar ``add`` calls per
run.  This module lowers a whole batch of :class:`RunSpec`\\ s into one
struct-of-arrays **scenario table** instead:

* one *run row* per spec (memory-latency multiplier, spin fraction,
  lock cap, bandwidth capacity, noise, seed);
* one *core row* per (run, core-occupancy class) — breadth-first
  placement yields at most two occupancy classes per run, so the core
  table stays within ``2 x runs`` rows regardless of core counts.

Everything that does not depend on the bandwidth multiplier or the spin
blend — cache pressure, effective miss rates, branch sharing penalties,
issue capability, port routing — is precomputed once into column
arrays.  Each evaluation of the MVA interval core model, the bandwidth
bisection, and the spin/lock fixed point is then a handful of
whole-table numpy operations; converged runs are masked out rather than
re-dispatched.  The arithmetic mirrors the scalar engine operation for
operation, so results agree with :func:`repro.sim.engine.simulate_run`
to floating-point round-off (the differential pillar pins <= 1e-9
relative error).

The table also exposes its converged fixed-point *state*
(:class:`TableState`) so the calibrated surrogate
(:mod:`repro.sim.surrogate`) can train on solver outputs and re-enter
the shared finalization path when it answers a query directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.classes import N_CLASSES, SPIN_LOOP_MIX, InstrClass
from repro.counters.events import CLASS_COUNT_EVENTS, arch_event_names
from repro.obs import get_tracer
from repro.sim import engine as _engine
from repro.sim.branch import SHARING_PENALTY_PER_THREAD
from repro.sim.cache import MAX_PRESSURE_SCALE
from repro.sim.chip import BISECTION_STEPS, TOLERANCE
from repro.sim.engine import MAX_SPIN, SPIN_ITERATIONS, RunSpec
from repro.sim.fast_core import QUEUE_FILL_FACTOR, CoreInput, effective_smt_mode, solve_core_batch
from repro.sim.memory import MAX_LATENCY_MULT, RHO_CAP, numa_extra_latency
from repro.sim.results import RunResult
from repro.sim.stream import REF_L1_KB, REF_L2_KB, REF_L3_MB_PER_THREAD
from repro.simos.scheduler import place_threads
from repro.simos.timebase import TimeAccounting, account_run
from repro.util.rng import RngStream

__all__ = ["ScenarioTable", "TableState", "simulate_many_columnar"]

_SPIN_VEC = SPIN_LOOP_MIX.vector  # read-only (5,)
_BRANCH = int(InstrClass.BRANCH)


@dataclass
class TableState:
    """Converged fixed-point state of a :class:`ScenarioTable` drive.

    Per-core-row arrays hold the *reported* solution (the base solve for
    sync-free runs, the last spin iteration otherwise); per-run arrays
    hold the converged bandwidth multiplier, traffic, and spin state.
    ``base_mult``/``base_traffic`` record the sync-free base phase — the
    surrogate's training labels.
    """

    x_rows: np.ndarray            # (R,) per-thread IPC of the reported solution
    held_rows: np.ndarray         # (R,) dispatch-held fraction per core row
    mult: np.ndarray              # (J,) converged memory-latency multiplier
    run_traffic: np.ndarray       # (J,) offered DRAM traffic, GB/s
    spin_final: np.ndarray        # (J,) reported spin fraction (after last update)
    w_blend: np.ndarray           # (J,) blend weight of the reported solution
    useful_rate: np.ndarray       # (J,) useful instructions/s in the parallel phase
    base_mult: np.ndarray         # (J,) base-phase multiplier (unblended mix)
    base_traffic: np.ndarray      # (J,) base-phase traffic, GB/s
    sync_free: np.ndarray         # (J,) bool
    spin0: np.ndarray             # (J,) direct busy-wait fraction
    runnable: np.ndarray          # (J,)
    blocked: np.ndarray           # (J,)
    lock_cap: np.ndarray          # (J,)


class _Sol:
    """One whole-table kernel evaluation."""

    __slots__ = ("x", "lam", "held", "long_frac", "traffic_core", "run_traffic", "util")

    def __init__(self, x, lam, held, long_frac, traffic_core, run_traffic, util):
        self.x = x
        self.lam = lam
        self.held = held
        self.long_frac = long_frac
        self.traffic_core = traffic_core
        self.run_traffic = run_traffic
        self.util = util


def _latency_multiplier(traffic: np.ndarray, cap: np.ndarray) -> np.ndarray:
    """Vector mirror of :meth:`BandwidthModel.latency_multiplier`."""
    rho = np.minimum(traffic / cap, RHO_CAP)
    return np.minimum(1.0 / (1.0 - rho ** 3), MAX_LATENCY_MULT)


class _View:
    """Gathered column bundle for a subset of a table's runs.

    The bandwidth bisection and the spin fixed point both operate on run
    subsets (only non-converged / non-sync-free runs); a view gathers
    the relevant core rows once so every kernel evaluation works on
    compact contiguous arrays.
    """

    def __init__(self, table: "ScenarioTable", run_idx: np.ndarray):
        self.table = table
        self.run_idx = run_idx
        rows: List[np.ndarray] = []
        counts = []
        for j in run_idx:
            lo, hi = table.run_row_start[j], table.run_row_start[j + 1]
            rows.append(np.arange(lo, hi))
            counts.append(hi - lo)
        self.rows = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=int)
        )
        counts = np.asarray(counts, dtype=int)
        self.seg = np.concatenate(([0], np.cumsum(counts)))[:-1]
        r = self.rows
        # Gather the per-row constant columns once.
        self.occ = table.row_occ[r]
        self.n_cores = table.row_cores[r]
        self.base_mix = table.row_mix[r]
        self.mem_base = table.row_mem_base[r]
        self.mem_coef = table.row_mem_coef[r]
        self.long_base = table.row_long_base[r]
        self.br_rate = table.row_br_rate[r]
        self.inv_r = table.row_inv_r[r]
        self.disp_w = table.row_disp_w[r]
        self.traffic_bpi = table.row_traffic_bpi[r]
        self.cap = table.run_cap[run_idx]
        self.local_run = np.repeat(np.arange(len(run_idx)), counts)

    def __len__(self) -> int:
        return len(self.run_idx)

    def solve(self, mult: np.ndarray, w: np.ndarray) -> _Sol:
        """Evaluate the MVA core model for every row of the view.

        ``mult``/``w`` are per-run (view-local) memory-latency
        multipliers and spin-blend weights.  Mirrors
        :meth:`repro.sim.fast_core.CoreBatch.solve` specialized to
        homogeneous (SPMD) rows with uniform priorities.
        """
        t = self.table
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("table.solves")
        mult_r = mult[self.local_run]
        w_r = w[self.local_run]

        # Spin-polluted mix, renormalized exactly like Mix.blend does.
        bm = (1.0 - w_r)[:, None] * self.base_mix + w_r[:, None] * _SPIN_VEC[None, :]
        bm = np.clip(bm, 0.0, None)
        bm = bm / bm.sum(axis=1, keepdims=True)

        br_stall = bm[:, _BRANCH] * self.br_rate * t.branch_penalty
        stall = (self.mem_base + br_stall) + self.mem_coef * mult_r
        x_want = 1.0 / (self.inv_r + stall)

        # Structural limits: port saturation and the shared dispatch width.
        port_vec = bm @ t.routing_t                      # (r, P)
        demand = (self.occ * x_want)[:, None] * port_vec
        with np.errstate(divide="ignore"):
            ratios = np.where(
                demand > 0, t.port_caps[None, :] / np.maximum(demand, 1e-300), np.inf
            )
        lam_port = np.minimum(1.0, ratios.min(axis=1))
        sum_x = self.occ * x_want
        lam_fe = np.minimum(1.0, self.disp_w / np.maximum(sum_x, 1e-12))
        lam = np.minimum(lam_port, lam_fe)

        # Uniform-priority water-fill over identical threads: everyone
        # throttles by lambda unless the share pins at the cap.
        share = (lam * sum_x) / self.occ
        x_constrained = np.where(share >= x_want - 1e-15, x_want, share)
        x = np.where(lam < 1.0, x_constrained, x_want)
        x = np.minimum(x, x_want)

        long_frac = np.clip(x * (self.long_base + self.mem_coef * mult_r), 0.0, 1.0)
        held_queue = (self.occ * long_frac) / self.occ * QUEUE_FILL_FACTOR
        held = np.clip(1.0 - (1.0 - held_queue) * lam, 0.0, 1.0)
        traffic_core = self.occ * (x * self.traffic_bpi)

        run_traffic = np.add.reduceat(
            self.n_cores * (traffic_core * t.bytes_to_gbps), self.seg
        )
        util = run_traffic / self.cap
        return _Sol(x, lam, held, long_frac, traffic_core, run_traffic, util)

    def chip_phase(self, w: np.ndarray) -> Tuple[_Sol, np.ndarray]:
        """Bandwidth bisection for every run of the view, in lockstep.

        Mirrors :func:`repro.sim.chip._solve_chip_batch`: settle runs at
        unit latency, pin saturated runs at the cap, bisect the rest.
        All active brackets halve together, so the loop exits for every
        run at the same step (~14 of the nominal 40).
        """
        m = len(self)
        final_mult = np.ones(m)
        sol = self.solve(final_mult, w)
        undone = sol.util > TOLERANCE
        steps = 0
        if undone.any():
            hi_mult = _latency_multiplier(RHO_CAP * self.cap, self.cap)
            sol_hi = self.solve(np.where(undone, hi_mult, 1.0), w)
            saturated = undone & (sol_hi.util >= RHO_CAP)
            final_mult = np.where(saturated, hi_mult, final_mult)
            active = undone & ~saturated
            lo = np.zeros(m)
            hi = np.full(m, RHO_CAP)
            for _ in range(BISECTION_STEPS):
                if not active.any():
                    break
                steps += 1
                mid = (lo + hi) / 2.0
                step_mult = _latency_multiplier(mid * self.cap, self.cap)
                step_mult = np.where(active, step_mult, final_mult)
                utils = self.solve(step_mult, w).util
                above = utils > mid
                lo = np.where(active & above, mid, lo)
                hi = np.where(active & ~above, mid, hi)
                final_mult = np.where(active, step_mult, final_mult)
                active = active & ~((hi - lo) < TOLERANCE)
        sol = self.solve(final_mult, w)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("table.bisection_steps", steps)
        return sol, final_mult

    def thread_ipc_sum(self, sol: _Sol) -> np.ndarray:
        """Per-run sum of per-thread IPC (view-local order)."""
        return np.add.reduceat(self.n_cores * self.occ * sol.x, self.seg)


class ScenarioTable:
    """Struct-of-arrays over every scenario parameter of a spec batch.

    All specs must share one :class:`Architecture` *instance* (group by
    ``id(arch)`` first — :func:`simulate_many_columnar` does).  Build
    once, then :meth:`run` drives the full fixed point and finalization,
    or :meth:`run_with_state` additionally returns the converged
    :class:`TableState` for surrogate calibration.
    """

    def __init__(self, specs: Sequence[RunSpec]):
        specs = list(specs)
        if not specs:
            raise ValueError("ScenarioTable needs at least one RunSpec")
        arch = specs[0].system.arch
        for spec in specs:
            if spec.system.arch is not arch:
                raise ValueError(
                    "all specs in a ScenarioTable must share one Architecture instance"
                )
        self.specs = specs
        self.arch = arch
        self.freq = arch.cycles_per_second()
        self.bytes_to_gbps = self.freq / 1e9
        self.routing_t = np.ascontiguousarray(arch.topology.routing_matrix.T)
        self.port_caps = arch.topology.capacities
        self.branch_penalty = float(arch.branch_penalty)
        self.event_names = self._event_columns()
        self.n_events = len(self.event_names)

        J = len(specs)
        self.n_runs = J
        self.ns = [spec.resolved_threads() for spec in specs]
        self.placements = [
            place_threads(spec.system, spec.smt_level, n)
            for spec, n in zip(specs, self.ns)
        ]
        self.run_cap = np.array(
            [spec.system.mem_bandwidth_gbps() for spec in specs]
        )
        self.run_noise = np.array([spec.noise_rel for spec in specs])
        self.run_n = np.array(self.ns, dtype=float)

        # ---- core rows: one per (run, occupancy class) ---------------
        occ_l: List[int] = []
        cores_l: List[int] = []
        tpc_l: List[int] = []
        extra_l: List[float] = []
        mode_l: List[int] = []
        row_start = [0]
        core_rows: List[int] = []        # per occupied core, placement order
        core_occ: List[int] = []
        core_start = [0]
        ctx_rows: List[int] = []         # per hardware context, placement order
        ctx_start = [0]
        caches = arch.caches
        for j, (spec, placement) in enumerate(zip(specs, self.placements)):
            occupied = [t for t in placement.threads_per_core if t > 0]
            threads_per_chip = max(placement.threads_per_chip())
            extra_lat = numa_extra_latency(
                spec.system.n_chips,
                spec.stream.memory.data_sharing,
                caches.numa_extra_cycles,
            )
            occ_to_row: Dict[int, int] = {}
            for occ in set(occupied):
                occ_to_row[occ] = len(occ_l)
                occ_l.append(occ)
                cores_l.append(occupied.count(occ))
                tpc_l.append(max(threads_per_chip, occ))
                extra_l.append(extra_lat)
                mode_l.append(effective_smt_mode(arch, occ))
            row_start.append(len(occ_l))
            for occ in occupied:
                core_rows.append(occ_to_row[occ])
                core_occ.append(occ)
                ctx_rows.extend([occ_to_row[occ]] * occ)
            core_start.append(len(core_rows))
            ctx_start.append(len(ctx_rows))

        R = len(occ_l)
        self.n_rows = R
        self.run_row_start = np.asarray(row_start, dtype=int)
        self.core_row = np.asarray(core_rows, dtype=int)
        self.core_occ = np.asarray(core_occ, dtype=float)
        self.core_start = np.asarray(core_start, dtype=int)
        self.ctx_row = np.asarray(ctx_rows, dtype=int)
        self.ctx_start = np.asarray(ctx_start, dtype=int)
        self.row_run = np.repeat(
            np.arange(J), np.diff(self.run_row_start)
        )

        occ = np.asarray(occ_l, dtype=float)
        tpc = np.asarray(tpc_l, dtype=float)
        extra = np.asarray(extra_l, dtype=float)
        self.row_occ = occ
        self.row_cores = np.asarray(cores_l, dtype=float)

        # Per-row stream parameters (one stream per run: SPMD threads).
        ilp = np.empty(R)
        mlp = np.empty(R)
        br_base = np.empty(R)
        l1 = np.empty(R)
        l2 = np.empty(R)
        l3 = np.empty(R)
        alpha = np.empty(R)
        d = np.empty(R)
        wb = np.empty(R)
        mix = np.empty((R, N_CLASSES))
        ilp_scale = np.empty(R)
        disp_w = np.empty(R)
        resources_by_mode: Dict[int, Tuple[float, float]] = {}
        for r in range(R):
            spec = specs[self.row_run[r]]
            stream = spec.stream
            mem = stream.memory
            ilp[r] = stream.ilp
            mlp[r] = stream.mlp
            br_base[r] = stream.branch_mispredict_rate
            l1[r] = mem.l1_mpki
            l2[r] = mem.l2_mpki
            l3[r] = mem.l3_mpki
            alpha[r] = mem.locality_alpha
            d[r] = mem.data_sharing
            wb[r] = mem.writeback_factor
            mix[r] = stream.mix.vector
            mode = mode_l[r]
            cached = resources_by_mode.get(mode)
            if cached is None:
                cached = (
                    arch.partition.thread_resources(mode).ilp_scale,
                    arch.partition.core_dispatch_width(mode),
                )
                resources_by_mode[mode] = cached
            ilp_scale[r], disp_w[r] = cached
        self.row_mix = mix
        self.row_disp_w = disp_w

        # ---- mult-independent precompute (mirrors CoreBatch.__init__) -
        # Homogeneous rows: the clipped footprint-heat self-ratio is
        # exactly 1, so each of the occ co-runners contributes (1 - d);
        # the sequential accumulation replicates the padded-axis sum.
        one_minus_d = 1.0 - d
        contrib_sum = np.zeros(R)
        for i in range(int(occ.max())):
            contrib_sum = contrib_sum + np.where(occ > i, one_minus_d, 0.0)
        pressure = 1.0 + contrib_sum - one_minus_d

        inv_max = 1.0 / MAX_PRESSURE_SCALE
        scale_l1 = np.clip(
            (REF_L1_KB / (caches.l1d_kb / pressure)) ** alpha, inv_max, MAX_PRESSURE_SCALE
        )
        scale_l2 = np.clip(
            (REF_L2_KB / (caches.l2_kb / pressure)) ** alpha, inv_max, MAX_PRESSURE_SCALE
        )
        k_chip = 1.0 + (tpc - 1.0) * one_minus_d
        c_l3 = caches.l3_mb * 1024.0 / k_chip
        scale_l3 = np.clip(
            (REF_L3_MB_PER_THREAD * 1024.0 / c_l3) ** alpha, inv_max, MAX_PRESSURE_SCALE
        )
        l1e = l1 * scale_l1
        l2e = np.minimum(l2 * scale_l2, l1e)
        l3e = np.minimum(l3 * scale_l3, l2e)
        self.row_l1e, self.row_l2e, self.row_l3e = l1e, l2e, l3e

        l2hit = l1e - l2e
        l3hit = l2e - l3e
        inv_kmlp = 1.0 / (1000.0 * mlp)
        self.row_mem_coef = l3e * caches.lat_mem * inv_kmlp
        self.row_long_base = (l3hit * caches.lat_l3 + l3e * extra) * inv_kmlp
        self.row_mem_base = (
            l2hit * caches.lat_l2 + l3hit * caches.lat_l3 + l3e * extra
        ) * inv_kmlp

        self.row_br_rate = np.minimum(
            br_base * (1.0 + SHARING_PENALTY_PER_THREAD * (occ - 1.0)), 1.0
        )
        r_cap = np.minimum(ilp * ilp_scale, float(arch.partition.issue_width))
        self.row_inv_r = 1.0 / r_cap
        self.row_traffic_bpi = l3e / 1000.0 * caches.line_bytes * wb

        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("table.tables")
            tracer.add("table.runs", J)
            tracer.add("table.rows", R)

    # -- helpers -------------------------------------------------------

    @classmethod
    def from_specs(cls, specs: Sequence[RunSpec]) -> "ScenarioTable":
        """Build a table from a scenario list (alias of the constructor)."""
        return cls(specs)

    def __len__(self) -> int:
        return self.n_runs

    def _event_columns(self) -> List[str]:
        """Counter columns in the scalar engine's per-context draw order."""
        names = ["CYCLES", "INSTRUCTIONS", "DISP_HELD_RES"]
        names.extend(CLASS_COUNT_EVENTS)
        names.extend(f"PORT_ISSUE_{p}" for p in self.arch.topology.port_names)
        names.extend(["L1_DMISS", "L2_MISS", "L3_MISS", "BR_MISPRED"])
        assert set(names) == set(arch_event_names(self.arch))
        return names

    def view(self, run_idx: Optional[np.ndarray] = None) -> _View:
        if run_idx is None:
            run_idx = np.arange(self.n_runs)
        return _View(self, np.asarray(run_idx, dtype=int))

    def _warm_serial_rates(self, run_idx: np.ndarray) -> None:
        """Warm the engine's serial-rate memo for the selected runs."""
        arch = self.arch
        pending: Dict[Tuple[int, object], object] = {}
        for j in run_idx:
            stream = self.specs[j].stream
            key = (id(arch), stream)
            hit = _engine._SERIAL_RATE_CACHE.get(key)
            if (hit is None or hit[0] is not arch) and key not in pending:
                pending[key] = stream
        if pending:
            get_tracer().add("engine.serial_memo_misses", len(pending))
            solo = solve_core_batch(
                [
                    CoreInput(arch=arch, smt_level=1, streams=(s,), threads_per_chip=1)
                    for s in pending.values()
                ]
            )
            for key, out in zip(pending, solo):
                _engine._SERIAL_RATE_CACHE[key] = (arch, float(out.ipc[0]) * self.freq)

    # -- the fixed-point driver ----------------------------------------

    def drive(self, run_idx: Optional[np.ndarray] = None) -> TableState:
        """Run the full solver fixed point for the selected runs.

        Returns a :class:`TableState` whose per-row arrays are full-table
        sized (rows outside ``run_idx`` are zero) and whose per-run
        arrays are full-length (entries outside ``run_idx`` are zero).
        """
        if run_idx is None:
            run_idx = np.arange(self.n_runs)
        run_idx = np.asarray(run_idx, dtype=int)
        J = self.n_runs

        x_rows = np.zeros(self.n_rows)
        held_rows = np.zeros(self.n_rows)
        mult = np.zeros(J)
        run_traffic = np.zeros(J)
        spin_final = np.zeros(J)
        w_blend = np.zeros(J)
        useful_rate = np.zeros(J)
        base_mult = np.zeros(J)
        base_traffic = np.zeros(J)
        sync_free = np.zeros(J, dtype=bool)
        spin0_a = np.zeros(J)
        runnable_a = np.zeros(J)
        blocked_a = np.zeros(J)
        lock_cap_a = np.zeros(J)

        view = self.view(run_idx)
        base_sol, base_mults = view.chip_phase(np.zeros(len(view)))
        ipc_sum = view.thread_ipc_sum(base_sol)

        # Per-run sync profile evaluation (cheap Python: a few dataclass
        # method calls per run; everything heavy stays columnar).
        loop_local: List[int] = []
        for pos, j in enumerate(run_idx):
            spec = self.specs[j]
            n = self.ns[j]
            runnable = spec.sync.runnable_fraction(n)
            holder_rate = (ipc_sum[pos] / self.run_n[j]) * self.freq
            lock_cap = spec.sync.lock_throughput_cap(float(holder_rate), n)
            spin0 = spec.sync.spin_fraction(n)
            runnable_a[j] = runnable
            blocked_a[j] = spec.sync.blocked_fraction(n)
            lock_cap_a[j] = lock_cap
            spin0_a[j] = spin0
            base_mult[j] = base_mults[pos]
            base_traffic[j] = base_sol.run_traffic[pos]
            if spin0 == 0.0 and math.isinf(lock_cap):
                sync_free[j] = True
                useful_rate[j] = ipc_sum[pos] * self.freq * runnable
                mult[j] = base_mults[pos]
                run_traffic[j] = base_sol.run_traffic[pos]
                spin_final[j] = spin0
                w_blend[j] = spin0
            else:
                loop_local.append(pos)
                spin_final[j] = spin0

        # Scatter the base solution into the reported rows (overwritten
        # below for runs that enter the spin loop).
        x_rows[view.rows] = base_sol.x
        held_rows[view.rows] = base_sol.held

        tracer = get_tracer()
        if tracer.enabled:
            tracer.add("table.sync_free_runs", len(run_idx) - len(loop_local))
            if loop_local:
                tracer.add("table.spin_iterations", SPIN_ITERATIONS * len(loop_local))

        if loop_local:
            loop_idx = run_idx[np.asarray(loop_local, dtype=int)]
            lview = self.view(loop_idx)
            spins = spin0_a[loop_idx]
            spin0 = spin0_a[loop_idx]
            runnable = runnable_a[loop_idx]
            lock_cap = lock_cap_a[loop_idx]
            sol = None
            mults = None
            for _ in range(SPIN_ITERATIONS):
                blend_w = spins
                sol, mults = lview.chip_phase(blend_w)
                raw_rate = lview.thread_ipc_sum(sol) * self.freq
                available = raw_rate * runnable
                useful = np.minimum(available * (1.0 - spin0), lock_cap)
                spins = np.minimum(MAX_SPIN, 1.0 - useful / available)
            x_rows[lview.rows] = sol.x
            held_rows[lview.rows] = sol.held
            mult[loop_idx] = mults
            run_traffic[loop_idx] = sol.run_traffic
            spin_final[loop_idx] = spins
            w_blend[loop_idx] = blend_w
            useful_rate[loop_idx] = useful

        return TableState(
            x_rows=x_rows,
            held_rows=held_rows,
            mult=mult,
            run_traffic=run_traffic,
            spin_final=spin_final,
            w_blend=w_blend,
            useful_rate=useful_rate,
            base_mult=base_mult,
            base_traffic=base_traffic,
            sync_free=sync_free,
            spin0=spin0_a,
            runnable=runnable_a,
            blocked=blocked_a,
            lock_cap=lock_cap_a,
        )

    # -- finalization --------------------------------------------------

    def finalize(
        self, state: TableState, run_idx: Optional[np.ndarray] = None
    ) -> List[RunResult]:
        """Vectorized time accounting, jitter, and counters.

        Mirrors :func:`repro.sim.engine._finalize_run` for every run of
        ``run_idx`` at once: the only per-run Python work is the seeded
        RNG stream (one ``standard_normal`` block per run, replicating
        the scalar draw order bit-for-bit) and the result dataclasses.
        """
        if run_idx is None:
            run_idx = np.arange(self.n_runs)
        run_idx = np.asarray(run_idx, dtype=int)
        arch = self.arch
        freq = self.freq
        E = self.n_events
        self._warm_serial_rates(run_idx)

        m = len(run_idx)
        # Times + jitter (scalar arithmetic per run mirrors account_run /
        # _jitter_times exactly; the draws come from one block per run).
        times_list: List[TimeAccounting] = []
        z_blocks: List[Optional[np.ndarray]] = []
        for j in run_idx:
            spec = self.specs[j]
            n = self.ns[j]
            inflation = spec.sync.work_inflation(n)
            serial_rate = _engine._serial_rate(spec.system, spec.stream)
            times = account_run(
                useful_instructions=spec.useful_instructions * inflation,
                parallel_useful_rate=float(state.useful_rate[j]),
                serial_rate=serial_rate,
                sync=spec.sync,
                n_threads=n,
            )
            rng = RngStream(spec.seed, ("run", arch.name, spec.smt_level, n))
            if spec.noise_rel > 0:
                z = rng.gen.standard_normal(2 + n * E)
                wall_factor = max(0.5, 1.0 + spec.noise_rel * z[0])
                cpu_factor = max(0.5, 1.0 + (spec.noise_rel * 0.5) * z[1])
                total_cpu = min(
                    times.total_cpu_s * wall_factor * cpu_factor,
                    times.wall_time_s * wall_factor * times.n_threads,
                )
                times = TimeAccounting(
                    wall_time_s=times.wall_time_s * wall_factor,
                    serial_time_s=times.serial_time_s * wall_factor,
                    parallel_time_s=times.parallel_time_s * wall_factor,
                    total_cpu_s=total_cpu,
                    n_threads=times.n_threads,
                )
                z_blocks.append(z[2:])
            else:
                z_blocks.append(None)
            times_list.append(times)

        # Final blended mix (reported spin) and derived port fractions.
        spin = state.spin_final[run_idx]
        base_mix = np.stack([self.specs[j].stream.mix.vector for j in run_idx])
        bm = (1.0 - spin)[:, None] * base_mix + spin[:, None] * _SPIN_VEC[None, :]
        bm = np.clip(bm, 0.0, None)
        bm = bm / bm.sum(axis=1, keepdims=True)
        port_fracs = bm @ self.routing_t                      # (m, P)

        runnable = state.runnable[run_idx]
        par_cycles = (
            np.array([t.parallel_time_s for t in times_list]) * freq * runnable
        )

        # Flattened context axis over the selected runs.
        ctx_sel = np.concatenate(
            [np.arange(self.ctx_start[j], self.ctx_start[j + 1]) for j in run_idx]
        )
        ctx_counts = np.array(
            [self.ctx_start[j + 1] - self.ctx_start[j] for j in run_idx], dtype=int
        )
        ctx_seg = np.concatenate(([0], np.cumsum(ctx_counts)))[:-1]
        ctx_row = self.ctx_row[ctx_sel]
        ctx_run = np.repeat(np.arange(m), ctx_counts)         # view-local

        cyc = par_cycles[ctx_run]
        instr = state.x_rows[ctx_row] * cyc
        V = np.empty((len(ctx_sel), E))
        V[:, 0] = cyc
        V[:, 1] = instr
        V[:, 2] = state.held_rows[ctx_row] * cyc
        V[:, 3:8] = instr[:, None] * bm[ctx_run]
        n_ports = port_fracs.shape[1]
        V[:, 8:8 + n_ports] = instr[:, None] * port_fracs[ctx_run]
        base = 8 + n_ports
        V[:, base + 0] = instr * self.row_l1e[ctx_row] / 1000.0
        V[:, base + 1] = instr * self.row_l2e[ctx_row] / 1000.0
        V[:, base + 2] = instr * self.row_l3e[ctx_row] / 1000.0
        V[:, base + 3] = (instr * bm[ctx_run, _BRANCH]) * self.row_br_rate[ctx_row]

        # Counter jitter: one factor per (context, event), drawn in the
        # scalar per-context order; noise-free runs multiply by exactly 1.
        Z = np.zeros((len(ctx_sel), E))
        for pos in range(m):
            z = z_blocks[pos]
            if z is not None:
                lo, hi = ctx_seg[pos], ctx_seg[pos] + ctx_counts[pos]
                Z[lo:hi] = z.reshape(ctx_counts[pos], E)
        factors = np.maximum(0.05, 1.0 + self.run_noise[run_idx][ctx_run][:, None] * Z)
        V = V * factors
        sums = np.add.reduceat(V, ctx_seg, axis=0)            # (m, E)

        # Occupancy-weighted dispatch-held per run (mirrors np.average).
        core_sel = np.concatenate(
            [np.arange(self.core_start[j], self.core_start[j + 1]) for j in run_idx]
        )
        core_counts = np.array(
            [self.core_start[j + 1] - self.core_start[j] for j in run_idx], dtype=int
        )
        core_seg = np.concatenate(([0], np.cumsum(core_counts)))[:-1]
        held_core = state.held_rows[self.core_row[core_sel]]
        occ_core = self.core_occ[core_sel]
        mdh = (
            np.add.reduceat(held_core * occ_core, core_seg)
            / np.add.reduceat(occ_core, core_seg)
        )

        cap = self.run_cap[run_idx]
        traffic = state.run_traffic[run_idx]
        mem_util = np.minimum(traffic, cap) / cap

        thread_ipc = state.x_rows[ctx_row]
        names = self.event_names
        results: List[RunResult] = []
        for pos, j in enumerate(run_idx):
            spec = self.specs[j]
            lo, hi = ctx_seg[pos], ctx_seg[pos] + ctx_counts[pos]
            events = {name: float(sums[pos, e]) for e, name in enumerate(names)}
            results.append(
                RunResult(
                    arch=arch,
                    smt_level=spec.smt_level,
                    n_threads=self.ns[j],
                    n_chips=spec.system.n_chips,
                    useful_instructions=spec.useful_instructions,
                    times=times_list[pos],
                    events=events,
                    spin_fraction=float(state.spin_final[j]),
                    blocked_fraction=float(state.blocked[j]),
                    mem_latency_mult=float(state.mult[j]),
                    mem_utilization=float(mem_util[pos]),
                    per_thread_ipc=tuple(float(v) for v in thread_ipc[lo:hi]),
                    dispatch_held_fraction=float(mdh[pos]),
                )
            )
        return results

    def run(self, run_idx: Optional[np.ndarray] = None) -> List[RunResult]:
        """Drive the fixed point and finalize, columnar end to end."""
        state = self.drive(run_idx)
        return self.finalize(state, run_idx)

    def run_with_state(self) -> Tuple[List[RunResult], TableState]:
        """Like :meth:`run` over all runs, also returning the state."""
        state = self.drive()
        return self.finalize(state), state


def simulate_many_columnar(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Columnar equivalent of :func:`repro.sim.engine.simulate_many`.

    Groups specs by architecture instance, lowers each group into one
    :class:`ScenarioTable`, and returns results in input order.  Agrees
    with the serial reference to floating-point round-off (<= 1e-9
    relative, pinned by the ``columnar_vs_serial`` differential check).
    """
    specs = list(specs)
    if not specs:
        return []
    results: List[Optional[RunResult]] = [None] * len(specs)
    groups: Dict[int, List[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(id(spec.system.arch), []).append(i)
    with get_tracer().span(
        "table.simulate_many", runs=len(specs), arch_groups=len(groups)
    ):
        for indices in groups.values():
            table = ScenarioTable([specs[i] for i in indices])
            for i, result in zip(indices, table.run()):
                results[i] = result
    return results  # type: ignore[return-value]
