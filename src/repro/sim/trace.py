"""Pipeline tracing for the cycle engine.

A :class:`PipelineTracer` records dispatch/issue/complete events (plus
dispatch-held cycles) from a :class:`~repro.sim.cycle_core.CycleCore`
window and renders them as a compact per-instruction timeline — the
classic textbook pipeline diagram, useful for understanding *why* a
workload's dispatch is held or a port saturates.

::

    seq thread klass  port  D----I=======C
    0   T0     FX     FX    2    3       4
    ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.classes import InstrClass
from repro.sim.queues import QueueEntry
from repro.util.tables import format_table


@dataclass
class TracedInstruction:
    """Lifecycle of one instruction through the pipeline."""

    seq: int
    thread: int
    klass: InstrClass
    port: int
    dispatch_cycle: Optional[int] = None
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[float] = None

    @property
    def queue_latency(self) -> Optional[int]:
        """Cycles spent waiting in the issue queue."""
        if self.dispatch_cycle is None or self.issue_cycle is None:
            return None
        return self.issue_cycle - self.dispatch_cycle


class PipelineTracer:
    """Collects pipeline events; plug into ``CycleCore(tracer=...)``.

    ``max_instructions`` bounds memory: tracing is for short windows.
    """

    def __init__(self, max_instructions: int = 10_000):
        if max_instructions < 1:
            raise ValueError(f"max_instructions must be >= 1, got {max_instructions}")
        self.max_instructions = int(max_instructions)
        self._records: Dict[Tuple[int, int], TracedInstruction] = {}
        self.held_cycles: List[int] = []
        self.dropped = 0

    # -- hook points called by the cycle engine -------------------------
    def on_dispatch(self, entry: QueueEntry, cycle: int) -> None:
        key = (entry.thread, entry.seq)
        if len(self._records) >= self.max_instructions:
            self.dropped += 1
            return
        self._records[key] = TracedInstruction(
            seq=entry.seq, thread=entry.thread, klass=entry.klass,
            port=entry.port, dispatch_cycle=cycle,
        )

    def on_issue(self, entry: QueueEntry, cycle: int) -> None:
        record = self._records.get((entry.thread, entry.seq))
        if record is not None:
            record.issue_cycle = cycle

    def on_retire(self, entry: QueueEntry, cycle: int) -> None:
        record = self._records.get((entry.thread, entry.seq))
        if record is not None:
            record.complete_cycle = entry.finish_cycle

    def on_dispatch_held(self, cycle: int) -> None:
        self.held_cycles.append(cycle)

    # -- analysis --------------------------------------------------------
    def instructions(self) -> List[TracedInstruction]:
        return sorted(self._records.values(), key=lambda r: (r.dispatch_cycle, r.thread))

    def completed(self) -> List[TracedInstruction]:
        return [r for r in self.instructions() if r.complete_cycle is not None]

    def mean_queue_latency(self) -> float:
        waits = [r.queue_latency for r in self.instructions()
                 if r.queue_latency is not None]
        if not waits:
            raise ValueError("no issued instructions traced")
        return sum(waits) / len(waits)

    def render(self, port_names: Tuple[str, ...], *, limit: int = 40) -> str:
        """The trace as a table, newest-dispatch-first capped at ``limit``."""
        rows = []
        for r in self.instructions()[:limit]:
            rows.append([
                r.seq, f"T{r.thread}", r.klass.name, port_names[r.port],
                r.dispatch_cycle, r.issue_cycle,
                None if r.complete_cycle is None else round(r.complete_cycle, 1),
                r.queue_latency,
            ])
        return format_table(
            ["seq", "thread", "class", "port", "dispatch", "issue",
             "complete", "queue wait"],
            rows,
            title=f"pipeline trace ({len(self._records)} instructions, "
                  f"{len(self.held_cycles)} held cycles)",
        )
