"""Per-cycle SMT core pipeline engine (the "cycle engine").

A stylized but structurally faithful out-of-order SMT core: per-thread
fetch with branch-redirect stalls, round-robin dispatch into a unified
issue queue with partitioned per-thread entry limits, per-port oldest-
ready-first issue, and latency-accurate completion including cache-miss
penalties.  It exists to *validate* the fast engine's closed-form
steady state against an operational model (see
``benchmarks/test_ablation_engines.py``) and to give tests a ground
truth with real queue dynamics.

Pure Python and unashamedly slow (~10^5 instructions/second): use it
for windows of 10^4-10^5 cycles, not full-run sweeps — that is what the
fast engine is for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.classes import CLASS_ORDER, InstrClass
from repro.arch.machine import Architecture
from repro.sim.cache import CacheModel, EffectiveMissRates, SharingContext
from repro.sim.queues import IssueQueue, QueueEntry
from repro.sim.stream import StreamParams
from repro.util.rng import RngStream

#: Execution latencies per class (cycles), on top of any miss penalty.
EXEC_LATENCY = {
    InstrClass.LOAD: 2.0,
    InstrClass.STORE: 1.0,
    InstrClass.BRANCH: 1.0,
    InstrClass.FX: 1.0,
    InstrClass.VS: 4.0,
}

#: Decoded-instruction buffer per thread between fetch and dispatch.
FETCH_BUFFER_CAP = 16

#: SMT fetch policies: which thread owns the fetch stage each cycle.
#: ``round_robin`` rotates among unstalled threads (POWER-style);
#: ``icount`` picks the thread with the fewest instructions in flight
#: (Tullsen's ICOUNT heuristic — starves threads that clog the queue).
FETCH_POLICIES = ("round_robin", "icount")


class InstructionGenerator:
    """Draws a thread's dynamic instruction stream from its parameters.

    Dependence distances are geometric with mean ``ilp * mean_latency``
    where ``mean_latency`` is the mix-weighted producer latency: a chain
    whose producers finish after ``L`` cycles sustains ``distance / L``
    instructions per cycle, so this choice makes the generated stream's
    intrinsic ILP match the fast engine's interpretation of the same
    parameter.
    """

    def __init__(
        self,
        stream: StreamParams,
        rates: EffectiveMissRates,
        arch: Architecture,
        rng: RngStream,
        thread: int,
    ):
        self.stream = stream
        self.arch = arch
        self.rng = rng
        self.thread = thread
        self._seq = 0
        mix = stream.mix
        self._class_probs = mix.vector
        mem_frac = mix.memory_fraction
        # Per-memory-op miss probabilities from per-kilo-instruction rates.
        if mem_frac > 0:
            per_memop = 1.0 / (1000.0 * mem_frac)
            self.p_l1_miss = min(1.0, rates.l1_mpki * per_memop)
            self.p_l2_miss = min(self.p_l1_miss, rates.l2_mpki * per_memop)
            self.p_l3_miss = min(self.p_l2_miss, rates.l3_mpki * per_memop)
        else:
            self.p_l1_miss = self.p_l2_miss = self.p_l3_miss = 0.0
        mean_latency = float(
            sum(mix[klass] * EXEC_LATENCY[klass] for klass in CLASS_ORDER)
        )
        self._dep_p = min(1.0, 1.0 / max(1.0, stream.ilp * mean_latency))
        # Port choice per class follows the routing matrix.
        self._port_choices = []
        routing = arch.topology.routing_matrix
        for klass in CLASS_ORDER:
            col = routing[:, klass]
            ports = np.nonzero(col)[0]
            self._port_choices.append((ports, col[ports] / col[ports].sum()))

    def next_instruction(self, mem_latency_mult: float = 1.0) -> QueueEntry:
        klass = InstrClass(int(self.rng.choice(len(CLASS_ORDER), p=self._class_probs)))
        seq = self._seq
        self._seq += 1
        dep_distance = int(self.rng.geometric(self._dep_p))
        dep_seq: Optional[int] = seq - dep_distance if seq - dep_distance >= 0 else None

        extra = 0.0
        if klass.is_memory and klass is InstrClass.LOAD:
            draw = self.rng.random()
            caches = self.arch.caches
            if draw < self.p_l3_miss:
                extra = caches.lat_mem * mem_latency_mult
            elif draw < self.p_l2_miss:
                extra = caches.lat_l3
            elif draw < self.p_l1_miss:
                extra = caches.lat_l2
        mispredict = bool(
            klass is InstrClass.BRANCH
            and self.rng.random() < self.stream.branch_mispredict_rate
        )
        ports, probs = self._port_choices[klass]
        port = int(self.rng.choice(ports, p=probs))
        return QueueEntry(
            seq=seq,
            thread=self.thread,
            klass=klass,
            port=port,
            dep_seq=dep_seq,
            extra_latency=extra,
            mispredict=mispredict,
        )


@dataclass(frozen=True)
class CycleCoreResult:
    """Counters from a cycle-engine window."""

    cycles: int
    instructions: Tuple[float, ...]      # completed, per thread
    dispatch_held_cycles: int
    port_issues: Tuple[float, ...]       # per port
    mispredicts: Tuple[float, ...]       # per thread
    l1_misses: Tuple[float, ...]
    l3_misses: Tuple[float, ...]

    @property
    def core_ipc(self) -> float:
        return sum(self.instructions) / max(self.cycles, 1)

    @property
    def dispatch_held_fraction(self) -> float:
        return self.dispatch_held_cycles / max(self.cycles, 1)

    def per_thread_ipc(self) -> Tuple[float, ...]:
        return tuple(i / max(self.cycles, 1) for i in self.instructions)


class CycleCore:
    """One SMT core simulated cycle by cycle."""

    def __init__(
        self,
        arch: Architecture,
        smt_level: int,
        streams: Sequence[StreamParams],
        *,
        threads_per_chip: Optional[int] = None,
        mem_latency_mult: float = 1.0,
        seed: int = 0,
        tracer=None,
        fetch_policy: str = "round_robin",
    ):
        if fetch_policy not in FETCH_POLICIES:
            raise ValueError(
                f"fetch_policy must be one of {FETCH_POLICIES}, got {fetch_policy!r}"
            )
        arch.validate_smt_level(smt_level)
        if not streams:
            raise ValueError("need at least one stream")
        if len(streams) > smt_level:
            raise ValueError(f"{len(streams)} streams exceed SMT{smt_level}")
        self.arch = arch
        self.smt_level = smt_level
        self.streams = tuple(streams)
        self.k = len(streams)
        self.mem_latency_mult = float(mem_latency_mult)
        resources = arch.partition.thread_resources(smt_level)
        self.resources = resources
        cache = CacheModel(arch)
        sharing = SharingContext(
            threads_per_core=self.k,
            threads_per_chip=threads_per_chip or self.k,
        )
        rng = RngStream(seed, ("cycle_core",))
        self.generators = [
            InstructionGenerator(
                stream, cache.effective_rates(stream.memory, sharing), arch,
                rng.child("gen", t), t,
            )
            for t, stream in enumerate(self.streams)
        ]
        self.queue = IssueQueue(self.k, max(1.0, resources.queue_entries))
        self.fetch_buffers: List[List[QueueEntry]] = [[] for _ in range(self.k)]
        self.fetch_stall_until = [0.0] * self.k
        self.completed: Dict[int, Dict[int, float]] = {t: {} for t in range(self.k)}
        self.dispatch_width = int(arch.partition.core_dispatch_width(smt_level))
        self.port_caps = [int(round(c)) for c in arch.topology.capacities]

        # Counters.
        self.now = 0
        self.instr_done = [0.0] * self.k
        self.disp_held_cycles = 0
        self.port_issue_counts = [0.0] * arch.topology.n_ports
        self.mispredict_counts = [0.0] * self.k
        self.l1_miss_counts = [0.0] * self.k
        self.l3_miss_counts = [0.0] * self.k
        self._rr_offset = 0
        self._fetch_offset = 0
        self._ports_saturated = False
        self.tracer = tracer
        self.fetch_policy = fetch_policy

    # -- pipeline stages ------------------------------------------------
    def _retire(self) -> None:
        for entry in self.queue.retire_finished(self.now):
            t = entry.thread
            self.instr_done[t] += 1
            if self.tracer is not None:
                self.tracer.on_retire(entry, self.now)
            done = self.completed[t]
            done[entry.seq] = entry.finish_cycle
            # Bound the completion map: drop entries older than any
            # plausible dependence distance.
            if len(done) > 4096:
                horizon = entry.seq - 2048
                for seq in [s for s in done if s < horizon]:
                    del done[seq]
            if entry.mispredict:
                self.mispredict_counts[t] += 1
                self.fetch_stall_until[t] = max(
                    self.fetch_stall_until[t],
                    entry.finish_cycle + self.arch.branch_penalty,
                )

    def _issue(self) -> None:
        saturated_ports = 0
        active_ports = 0
        for port in range(self.arch.topology.n_ports):
            budget = self.port_caps[port]
            if budget <= 0:
                continue
            issued_here = 0
            for entry in self.queue.ready_for_port(port, self.completed, self.now):
                entry.issued = True
                latency = EXEC_LATENCY[entry.klass] + entry.extra_latency
                entry.finish_cycle = self.now + latency
                self.port_issue_counts[port] += 1
                issued_here += 1
                if self.tracer is not None:
                    self.tracer.on_issue(entry, self.now)
                if entry.klass is InstrClass.LOAD and entry.extra_latency > 0:
                    self.l1_miss_counts[entry.thread] += 1
                    if entry.extra_latency >= self.arch.caches.lat_mem:
                        self.l3_miss_counts[entry.thread] += 1
                if issued_here == budget:
                    break
            if issued_here > 0:
                active_ports += 1
                if issued_here == budget:
                    saturated_ports += 1
        # A cycle where every port that had work also hit its capacity is
        # a structurally saturated cycle.
        self._ports_saturated = active_ports > 0 and saturated_ports == active_ports

    def _long_latency_outstanding(self, thread: int) -> bool:
        """True if the thread has an issued L3-or-worse miss in flight."""
        return self.queue.has_long_latency_outstanding(
            thread, self.arch.caches.lat_l3, self.now
        )

    def _dispatch(self) -> None:
        slots = self.dispatch_width
        held_resource = False
        # Round-robin across threads, rotating the starting thread.
        for i in range(self.k):
            t = (self._rr_offset + i) % self.k
            buffer = self.fetch_buffers[t]
            while slots > 0 and buffer:
                if not self.queue.has_room(t):
                    # "Held due to lack of resources": the queue share is
                    # full *and* it is full for a structural reason — a
                    # long-latency miss backing it up or saturated issue
                    # ports — not merely because dispatch is burstier
                    # than a dependence-limited drain (paper §II: the
                    # factor captures ILP and cache-miss effects).
                    if self._ports_saturated or self._long_latency_outstanding(t):
                        held_resource = True
                    break
                entry = buffer.pop(0)
                self.queue.insert(entry)
                slots -= 1
                if self.tracer is not None:
                    self.tracer.on_dispatch(entry, self.now)
            if slots == 0:
                break
        self._rr_offset = (self._rr_offset + 1) % self.k
        if held_resource:
            self.disp_held_cycles += 1
            if self.tracer is not None:
                self.tracer.on_dispatch_held(self.now)

    def _in_flight(self, t: int) -> int:
        """Instructions of thread ``t`` between fetch and completion."""
        return len(self.fetch_buffers[t]) + self.queue.occupancy(t)

    def _pick_fetch_thread(self) -> Optional[int]:
        ready = [
            t for t in range(self.k)
            if self.now >= self.fetch_stall_until[t]
            and len(self.fetch_buffers[t]) < FETCH_BUFFER_CAP
        ]
        if not ready:
            return None
        if self.fetch_policy == "icount":
            return min(ready, key=lambda t: (self._in_flight(t), t))
        # Round-robin: the next ready thread after the last served one.
        for i in range(self.k):
            t = (self._fetch_offset + i) % self.k
            if t in ready:
                self._fetch_offset = (t + 1) % self.k
                return t
        return None  # pragma: no cover - ready is non-empty

    def _fetch(self) -> None:
        """One thread owns the fetch stage per cycle (width-whole)."""
        t = self._pick_fetch_thread()
        if t is None:
            return
        width = max(1, int(round(self.arch.partition.fetch_width)))
        buffer = self.fetch_buffers[t]
        for _ in range(width):
            if len(buffer) >= FETCH_BUFFER_CAP:
                break
            buffer.append(self.generators[t].next_instruction(self.mem_latency_mult))

    def step(self) -> None:
        """Advance one cycle."""
        self._retire()
        self._issue()
        self._dispatch()
        self._fetch()
        self.now += 1

    def run(self, cycles: int, *, warmup: int = 500) -> CycleCoreResult:
        """Run ``warmup`` + ``cycles`` cycles; counters cover the last part."""
        if cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {cycles}")
        for _ in range(warmup):
            self.step()
        self._reset_counters()
        start = self.now
        for _ in range(cycles):
            self.step()
        return CycleCoreResult(
            cycles=self.now - start,
            instructions=tuple(self.instr_done),
            dispatch_held_cycles=self.disp_held_cycles,
            port_issues=tuple(self.port_issue_counts),
            mispredicts=tuple(self.mispredict_counts),
            l1_misses=tuple(self.l1_miss_counts),
            l3_misses=tuple(self.l3_miss_counts),
        )

    def _reset_counters(self) -> None:
        self.instr_done = [0.0] * self.k
        self.disp_held_cycles = 0
        self.port_issue_counts = [0.0] * self.arch.topology.n_ports
        self.mispredict_counts = [0.0] * self.k
        self.l1_miss_counts = [0.0] * self.k
        self.l3_miss_counts = [0.0] * self.k
