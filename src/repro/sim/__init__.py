"""SMT chip-multiprocessor simulator.

Two engines share one semantic model of an out-of-order SMT core:

* :mod:`repro.sim.fast_core` — a vectorized mean-value-analysis engine
  that solves for steady-state per-thread throughput, port utilization
  and dispatch-held fraction in closed form.  Used for full experiment
  sweeps (hundreds of benchmark x SMT-level runs).
* :mod:`repro.sim.cycle_core` — a per-cycle pipeline engine with a real
  dispatch/issue-queue/ROB structure.  Used to validate the fast engine
  and for micro-experiments.

Chip-level composition (shared L3, DRAM bandwidth, NUMA) lives in
:mod:`repro.sim.chip`; the full-system run loop in
:mod:`repro.sim.engine`.  The batched sweep engine
(:class:`repro.sim.fast_core.CoreBatch`,
:func:`repro.sim.chip.solve_chip_batch`,
:func:`repro.sim.engine.simulate_many`) evaluates many independent
scenarios per vectorized step, and :mod:`repro.sim.runcache` persists
converged runs on disk across sessions.
"""

from repro.sim.stream import MemoryBehavior, StreamParams
from repro.sim.cache import CacheModel, EffectiveMissRates, SharingContext
from repro.sim.memory import BandwidthModel, numa_remote_fraction
from repro.sim.branch import BranchModel
from repro.sim.fast_core import (
    CoreBatch,
    CoreInput,
    CoreOutput,
    solve_core,
    solve_core_batch,
)
from repro.sim.chip import ChipSolution, solve_chip, solve_chip_batch
from repro.sim.results import RunResult
from repro.sim.engine import RunSpec, simulate_many, simulate_run
from repro.sim.runcache import RunCache, run_cache_key
from repro.sim.cycle_core import CycleCore, CycleCoreResult, InstructionGenerator

__all__ = [
    "MemoryBehavior",
    "StreamParams",
    "CacheModel",
    "EffectiveMissRates",
    "SharingContext",
    "BandwidthModel",
    "numa_remote_fraction",
    "BranchModel",
    "CoreBatch",
    "CoreInput",
    "CoreOutput",
    "solve_core",
    "solve_core_batch",
    "ChipSolution",
    "solve_chip",
    "solve_chip_batch",
    "RunResult",
    "RunSpec",
    "simulate_many",
    "simulate_run",
    "RunCache",
    "run_cache_key",
    "CycleCore",
    "CycleCoreResult",
    "InstructionGenerator",
]
