"""Steady-state SMT core throughput solver (the "fast engine").

A mean-value-analysis model of an out-of-order SMT core.  For each
hardware thread ``t`` running stream parameters ``S_t``:

1. *Issue capability*: with a window share from the SMT partition, the
   thread can issue ``r_t = min(ilp * ilp_scale, issue_width)``
   instructions per active cycle.
2. *Stalls*: each instruction charges, on average, memory-stall cycles
   (from the cache model, divided by MLP) and branch-mispredict refill
   cycles.  The thread's unconstrained throughput is
   ``x_t = 1 / (1 / r_t + stall_t)`` — the classic interval model.
3. *SMT overlap*: while one thread stalls, others issue; the core's
   unconstrained throughput is simply ``sum_t x_t``.
4. *Structural limits*: per-port capacities and the shared dispatch
   width cap aggregate issue at the structural ceiling ``lam * demand``;
   the contended capacity is divided among threads by hardware-thread
   priority weight (uniform priorities: everyone throttles by ``lam``).
5. *Dispatch held* (the SMTsm's second factor) combines the two causes
   the paper names: issue-queue back-pressure from long-latency misses
   and structural port saturation.

The solver is deliberately closed-form per evaluation: a full
benchmark-suite sweep is thousands of core evaluations, each a handful
of numpy operations (see the HPC guides' "vectorize, don't iterate").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.arch.machine import Architecture
from repro.sim.branch import BranchModel
from repro.sim.cache import (
    CacheModel,
    EffectiveMissRates,
    SharingContext,
    corunner_pressure,
)
from repro.sim.stream import StreamParams
from repro.arch.classes import InstrClass

# NOTE on the saturated regime: an earlier formulation charged an extra
# scheduling-conflict penalty growing with oversubscription depth
# (x = x_want * lambda ** 1.3).  The property suite caught that this
# makes core throughput *non-monotone* in per-thread demand by up to
# ~9% — slowing memory could raise IPC.  Any penalty that deepens with
# backlog has that defect, so the model now issues exactly the
# structural ceiling (lambda * demand, a demand-invariant quantity):
# a backlogged scheduler has more ready candidates, not fewer.
#: Probability that a long-latency stall backs the thread's issue-queue
#: share up to the dispatcher (short stalls drain before dispatch blocks).
QUEUE_FILL_FACTOR = 0.85


#: POWER-style hardware thread priorities: the neutral level, and the
#: per-step weight ratio of the decode/dispatch slot allocator.
NEUTRAL_PRIORITY = 4
PRIORITY_WEIGHT_BASE = 2.0
MIN_PRIORITY, MAX_PRIORITY = 0, 7


def priority_weight(priority: int) -> float:
    """Relative share of contended issue capacity at a priority level.

    POWER5+ cores allocate decode cycles between threads with a ratio
    that grows geometrically in the priority difference (paper §I:
    "dynamically managed levels of priority for hardware threads");
    weight = base ** (priority - neutral) reproduces that behaviour with
    equal shares at the neutral level.
    """
    if not (MIN_PRIORITY <= priority <= MAX_PRIORITY):
        raise ValueError(
            f"priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}], got {priority}"
        )
    return float(PRIORITY_WEIGHT_BASE ** (priority - NEUTRAL_PRIORITY))


@dataclass(frozen=True)
class CoreInput:
    """One core's workload at one instant."""

    arch: Architecture
    smt_level: int                       # hardware mode the core is in
    streams: Tuple[StreamParams, ...]    # one per *active* hardware thread
    threads_per_chip: int                # for L3 sharing
    mem_latency_mult: float = 1.0        # from the bandwidth fixed point
    extra_mem_latency: float = 0.0       # from the NUMA model
    priorities: Optional[Tuple[int, ...]] = None  # hw thread priorities (0-7)

    def __post_init__(self):
        self.arch.validate_smt_level(self.smt_level)
        if not self.streams:
            raise ValueError("a core needs at least one active stream")
        if len(self.streams) > self.smt_level:
            raise ValueError(
                f"{len(self.streams)} streams exceed SMT{self.smt_level} contexts"
            )
        if self.mem_latency_mult < 1.0:
            raise ValueError(f"mem_latency_mult must be >= 1, got {self.mem_latency_mult}")
        if self.extra_mem_latency < 0:
            raise ValueError(f"extra_mem_latency must be >= 0, got {self.extra_mem_latency}")
        if self.threads_per_chip < len(self.streams):
            raise ValueError("threads_per_chip cannot be below the core's own threads")
        if self.priorities is not None:
            if len(self.priorities) != len(self.streams):
                raise ValueError(
                    f"{len(self.priorities)} priorities for {len(self.streams)} streams"
                )
            for p in self.priorities:
                priority_weight(p)  # validates the range

    def weights(self) -> np.ndarray:
        if self.priorities is None:
            return np.ones(len(self.streams))
        return np.array([priority_weight(p) for p in self.priorities])


@dataclass(frozen=True)
class CoreOutput:
    """Steady-state solution for one core."""

    ipc: np.ndarray                    # per-thread committed IPC
    port_utilization: np.ndarray       # per-port fraction of capacity used
    port_scale: float                  # structural throttle lambda (1 = no saturation)
    dispatch_held_fraction: float      # of core cycles
    stall_fraction: np.ndarray         # per-thread fraction of cycles stalled (all causes)
    long_stall_fraction: np.ndarray    # per-thread fraction stalled on L3/memory
    miss_rates: Tuple[EffectiveMissRates, ...]
    branch_rate: np.ndarray            # effective mispredicts per branch, per thread
    traffic_bytes_per_cycle: float     # core DRAM traffic

    @property
    def core_ipc(self) -> float:
        return float(self.ipc.sum())


def _water_fill(caps: np.ndarray, weights: np.ndarray, budget: float) -> np.ndarray:
    """Weight-proportional allocation of ``budget``, capped per thread.

    Threads whose weighted share exceeds their unconstrained rate are
    pinned at that rate; the surplus is redistributed among the rest.
    """
    x = np.zeros_like(caps)
    active = np.ones(len(caps), dtype=bool)
    remaining = float(budget)
    for _ in range(len(caps)):
        if not active.any() or remaining <= 0:
            break
        share = remaining * weights[active] / weights[active].sum()
        capped = share >= caps[active] - 1e-15
        idx = np.flatnonzero(active)
        if not capped.any():
            x[idx] = share
            break
        pinned = idx[capped]
        x[pinned] = caps[pinned]
        remaining -= float(caps[pinned].sum())
        active[pinned] = False
    return np.minimum(x, caps)


def solve_core(inp: CoreInput) -> CoreOutput:
    """Solve the steady state of one SMT core."""
    arch = inp.arch
    k = len(inp.streams)
    resources = arch.partition.thread_resources(inp.smt_level)
    cache = CacheModel(arch)
    branch = BranchModel(arch)

    n = len(inp.streams)
    r = np.empty(n)
    stall = np.empty(n)
    long_stall = np.empty(n)
    br_rate = np.empty(n)
    traffic_bpi = np.empty(n)
    rates_list = []

    for t, stream in enumerate(inp.streams):
        # Private-cache pressure is partner-aware: who shares the core
        # matters, not just how many (reduces to the count law for
        # homogeneous SPMD threads).
        others = [s.memory for u, s in enumerate(inp.streams) if u != t]
        sharing = SharingContext(
            threads_per_core=k,
            threads_per_chip=inp.threads_per_chip,
            core_pressure=corunner_pressure(stream.memory, others),
        )
        rates = cache.effective_rates(stream.memory, sharing)
        rates_list.append(rates)
        mem_stall = cache.memory_stall_per_instruction(
            rates, stream, inp.mem_latency_mult, inp.extra_mem_latency
        )
        long_stall[t] = cache.long_stall_per_instruction(
            rates, stream, inp.mem_latency_mult, inp.extra_mem_latency
        )
        br_rate[t] = branch.effective_rate(stream.branch_mispredict_rate, k)
        br_stall = branch.stall_per_instruction(stream.mix, br_rate[t])
        r[t] = min(
            stream.ilp * resources.ilp_scale,
            float(arch.partition.issue_width),
        )
        stall[t] = mem_stall + br_stall
        traffic_bpi[t] = cache.traffic_bytes_per_instruction(rates, stream.memory)

    # Interval model: unconstrained per-thread throughput.
    x_want = 1.0 / (1.0 / r + stall)

    # Structural limits: ports and the shared dispatch width.
    routing = arch.topology.routing_matrix
    demand = np.zeros(arch.topology.n_ports)
    for t, stream in enumerate(inp.streams):
        demand += x_want[t] * (routing @ stream.mix.vector)
    lam_port = arch.topology.saturation_scale(demand)
    lam_fe = min(1.0, arch.partition.core_dispatch_width(inp.smt_level) / max(x_want.sum(), 1e-12))
    lam = min(lam_port, lam_fe)

    if lam >= 1.0:
        x = x_want.copy()
    else:
        # The structural ceiling (lambda * aggregate demand — invariant
        # to uniform demand scaling) is divided among the hardware
        # threads by priority weight, water-filling with each thread
        # capped at its unconstrained rate.  Uniform weights reduce to
        # scaling everyone by lambda.
        x = _water_fill(x_want, inp.weights(), lam * float(x_want.sum()))
    port_util = np.zeros(arch.topology.n_ports)
    for t, stream in enumerate(inp.streams):
        port_util += x[t] * (routing @ stream.mix.vector)
    port_util = port_util / arch.topology.capacities

    # Dispatch-held: queue back-pressure from long stalls, plus the
    # structural component.  Both are per-cycle core-level fractions.
    long_frac = np.clip(x * long_stall, 0.0, 1.0)
    held_queue = float(np.mean(long_frac) * QUEUE_FILL_FACTOR)
    held_port = 1.0 - lam
    dispatch_held = 1.0 - (1.0 - held_queue) * (1.0 - held_port)

    stall_frac = np.clip(x * stall, 0.0, 1.0)
    traffic = float(np.sum(x * traffic_bpi))

    return CoreOutput(
        ipc=x,
        port_utilization=port_util,
        port_scale=float(lam),
        dispatch_held_fraction=float(np.clip(dispatch_held, 0.0, 1.0)),
        stall_fraction=stall_frac,
        long_stall_fraction=long_frac,
        miss_rates=tuple(rates_list),
        branch_rate=br_rate,
        traffic_bytes_per_cycle=traffic,
    )


def effective_smt_mode(arch: Architecture, threads_on_core: int) -> int:
    """Hardware mode a core adopts for a given occupancy.

    Thin wrapper over :meth:`Architecture.effective_smt_mode`, kept here
    because the simulator is where the concept is consumed.
    """
    return arch.effective_smt_mode(threads_on_core)
